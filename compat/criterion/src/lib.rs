//! Offline stand-in for the subset of `criterion` that `mpvar`'s
//! benches use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small, honest benchmark harness with criterion's surface
//! syntax: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], the `criterion_group!` / `criterion_main!`
//! macros, and [`Throughput`] annotations.
//!
//! Measurement model (simpler than the real crate, but real timing):
//! each target is warmed up once, then timed for `sample_size` samples
//! (default 20) of adaptively-batched iterations; the harness reports
//! the minimum, mean, and maximum per-iteration time, plus derived
//! throughput when a [`Throughput`] was set. There is no statistical
//! regression analysis and no HTML report.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function to defeat constant folding.
///
/// Re-exported so `use criterion::black_box` keeps working; prefer
/// `std::hint::black_box` in new code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the measured closure; drives the timing loop.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<Measurement>,
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing aggregate per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim for ~25ms per sample,
        // clamped to [1, 1024] iterations.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 1024) as u32;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed() / batch;
            min = min.min(per_iter);
            max = max.max(per_iter);
            total += per_iter;
        }
        *self.result = Some(Measurement {
            min,
            mean: total / self.samples as u32,
            max,
        });
    }
}

fn report(name: &str, m: &Measurement, throughput: Option<Throughput>) {
    let human = |d: Duration| -> String {
        let ns = d.as_nanos();
        if ns >= 1_000_000_000 {
            format!("{:.4} s", d.as_secs_f64())
        } else if ns >= 1_000_000 {
            format!("{:.4} ms", d.as_secs_f64() * 1e3)
        } else if ns >= 1_000 {
            format!("{:.4} µs", d.as_secs_f64() * 1e6)
        } else {
            format!("{ns} ns")
        }
    };
    println!(
        "{name:<40} time: [{} {} {}]",
        human(m.min),
        human(m.mean),
        human(m.max)
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / m.mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                println!("{:<40} thrpt: {:.1} elem/s", "", per_sec(n));
            }
            Throughput::Bytes(n) => {
                println!("{:<40} thrpt: {:.1} B/s", "", per_sec(n));
            }
        }
    }
}

/// The benchmark manager handed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        f(&mut Bencher {
            samples: self.sample_size,
            result: &mut result,
        });
        if let Some(m) = result {
            report(name, &m, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        f(&mut Bencher {
            samples: self.sample_size,
            result: &mut result,
        });
        if let Some(m) = result {
            report(
                &format!("{}/{}", self.name, id.into_id()),
                &m,
                self.throughput,
            );
        }
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>, &P),
    {
        let mut result = None;
        f(
            &mut Bencher {
                samples: self.sample_size,
                result: &mut result,
            },
            input,
        );
        if let Some(m) = result {
            report(
                &format!("{}/{}", self.name, id.into_id()),
                &m,
                self.throughput,
            );
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // simple harness has no options to parse.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
