//! Offline stand-in for the subset of `proptest` that `mpvar`'s
//! property tests use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a deterministic mini property-testing harness with the same
//! surface syntax: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop_map`,
//! `prop::sample::select` and `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * case generation is a fixed deterministic sequence per (test name,
//!   case index) — every run explores the same inputs;
//! * there is no shrinking: a failing case panics with the offending
//!   values via the standard assertion message;
//! * strategies are evaluated eagerly per case.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Config and runner
// ---------------------------------------------------------------------------

/// Number of cases to run per property (subset of the real config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; the offline harness
    /// favors test-suite latency).
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the source from a test name and case index.
    pub fn new(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A value generator (subset of the real `Strategy` trait).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (the real crate's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    /// Inclusive range: the endpoints themselves are emitted with
    /// boosted probability (1/16 each) so boundary cases like `q = 1.0`
    /// are actually explored, not just approached.
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        match rng.index(16) {
            0 => start,
            1 => end,
            _ => start + rng.next_f64() * (end - start),
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                debug_assert!(span > 0, "empty strategy range");
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (subset of the real
/// `Arbitrary` trait, used by `arg: Type` parameters and [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (no NaN/inf — the real
    /// crate also defaults to finite values).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.next_f64() * 60.0) - 30.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.next_f64() * mag.exp2()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The whole-domain strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy generating any value of `T` (the real crate's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (sample / collection helpers).
pub mod prop {
    /// Strategies choosing among explicit values.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// A strategy drawing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        /// Draws uniformly from `values` (must be non-empty).
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select() needs at least one value");
            Select { values }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.values[rng.index(self.values.len())].clone()
            }
        }
    }

    /// Strategies for collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s with sizes drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vectors of `element`-generated values with a size in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + rng.index(span.max(1));
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests (subset-compatible with the real macro).
///
/// Supported grammar:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(N))]
///     #[test]
///     fn name(arg in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                    $crate::__proptest_bindings!{ __rng; $($args)* }
                    $body
                }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: expands the argument list
/// (`name in strategy` or `name: Type`) into `let` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident; $(,)?) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; mut $arg:ident in $strat:expr) => {
        let mut $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
}

/// Asserts a condition inside a property body (panics on failure; the
/// offline harness does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new("ranges", 0);
        for _ in 0..1000 {
            let x = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::new("det", 3);
        let mut b = crate::TestRng::new("det", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0i64..10, 0i64..10).prop_map(|(a, b)| a + b);
        let mut rng = crate::TestRng::new("compose", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0..19).contains(&v));
        }
    }

    #[test]
    fn select_and_vec() {
        let sel = prop::sample::select(vec![2u32, 4, 8]);
        let v = prop::collection::vec(0f64..1.0, 2..6);
        let mut rng = crate::TestRng::new("selvec", 0);
        for _ in 0..100 {
            assert!([2, 4, 8].contains(&sel.generate(&mut rng)));
            let xs = v.generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(a in 1i64..100, x in 0.0f64..1.0) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((0.0..1.0).contains(&x), "x = {x}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
