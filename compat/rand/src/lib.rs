//! Offline stand-in for the subset of the `rand` crate API that `mpvar`
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny trait surface it needs: [`RngCore`], [`SeedableRng`]
//! and [`Error`]. The definitions are signature-compatible with
//! `rand 0.8`, so swapping the real crate back in is a one-line
//! manifest change.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// Error type returned by fallible RNG operations.
///
/// Mirrors `rand::Error`: an opaque wrapper around a boxed error.
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync + 'static>,
}

impl Error {
    /// Wraps an arbitrary error value.
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync + 'static>>,
    {
        Self { inner: err.into() }
    }

    /// A reference to the wrapped error.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        self.inner.as_ref()
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error {{ inner: {:?} }}", self.inner)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.inner, f)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.inner.as_ref())
    }
}

/// The core of a random number generator: uniform bit output.
///
/// Signature-compatible with `rand::RngCore` (0.8).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an error.
    ///
    /// # Errors
    ///
    /// Implementations backed by fallible entropy sources may fail; the
    /// deterministic generators in this workspace never do.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
///
/// Signature-compatible with the subset of `rand::SeedableRng` (0.8)
/// that `mpvar` exercises.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, mixed through SplitMix64 as in
    /// the real `rand` crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }

    #[test]
    fn rng_core_by_mut_ref() {
        fn draw(mut rng: impl RngCore) -> u64 {
            rng.next_u64()
        }
        let mut c = Counter(0);
        assert_eq!(draw(&mut c), 1);
        assert_eq!(c.next_u64(), 2);
    }

    #[test]
    fn error_wraps_and_displays() {
        let e = Error::new("entropy source vanished");
        assert!(format!("{e}").contains("entropy"));
        assert!(format!("{e:?}").contains("inner"));
    }
}
