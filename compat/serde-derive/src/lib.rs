//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline `serde` stub only needs the derive *names* to exist so
//! that `#[derive(Serialize, Deserialize)]` annotations across the
//! workspace keep compiling. No serialization code is generated; the
//! workspace never serializes through serde (its on-disk formats are
//! the hand-rolled `.tech` text format and CSV).

use proc_macro::TokenStream;

/// Expands to nothing: the annotated type gains no serialization impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the annotated type gains no deserialization impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
