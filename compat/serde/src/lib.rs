//! Offline stand-in for the `serde` names that `mpvar` imports.
//!
//! The build environment has no crates.io access. The workspace derives
//! `Serialize`/`Deserialize` on its geometry and technology types as
//! forward-looking API surface but never serializes through serde (the
//! on-disk formats are the `.tech` text format and CSV), so a no-op
//! stub keeps every annotation compiling without pulling in the real
//! dependency. Swapping the real `serde` back in is a one-line
//! manifest change.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
