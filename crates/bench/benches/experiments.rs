//! Criterion benches: one target per table and figure of the paper.
//!
//! Each bench measures the end-to-end regeneration of one artefact.
//! Contexts are down-scaled (quick DOE, reduced Monte-Carlo trials) so a
//! full `cargo bench` stays in the minutes range; the `repro` binary is
//! the place for the full paper-scale run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpvar_core::experiments::{
    ablation_bl_width, ablation_delay_models, ablation_sadp_anticorrelation, fig4, fig5, table1,
    table2, table3, table4, ExperimentContext,
};
use mpvar_core::montecarlo::McConfig;

fn bench_ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick().expect("context builds");
    ctx.sizes = vec![16, 64];
    ctx.mc = McConfig::builder().trials(2_000).seed(2015).build();
    ctx
}

fn table1_worst_case(c: &mut Criterion) {
    let ctx = bench_ctx();
    c.bench_function("table1_worst_case", |b| {
        b.iter(|| table1(black_box(&ctx)).expect("table1 runs"))
    });
}

fn fig4_worst_case_td(c: &mut Criterion) {
    let ctx = bench_ctx();
    let t1 = table1(&ctx).expect("table1 runs");
    let mut group = c.benchmark_group("fig4_worst_case_td");
    group.sample_size(10);
    group.bench_function("sim_16_64", |b| {
        b.iter(|| fig4(black_box(&ctx), black_box(&t1)).expect("fig4 runs"))
    });
    group.finish();
}

fn table2_formula_vs_sim(c: &mut Criterion) {
    let ctx = bench_ctx();
    let t1 = table1(&ctx).expect("table1 runs");
    let f4 = fig4(&ctx, &t1).expect("fig4 runs");
    c.bench_function("table2_formula_vs_sim", |b| {
        b.iter(|| table2(black_box(&ctx), black_box(&f4)).expect("table2 runs"))
    });
}

fn table3_tdp(c: &mut Criterion) {
    let ctx = bench_ctx();
    let t1 = table1(&ctx).expect("table1 runs");
    let f4 = fig4(&ctx, &t1).expect("fig4 runs");
    c.bench_function("table3_tdp", |b| {
        b.iter(|| table3(black_box(&ctx), black_box(&t1), black_box(&f4)).expect("table3 runs"))
    });
}

fn fig5_mc_histogram(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("fig5_mc_histogram");
    group.sample_size(10);
    group.bench_function("mc_2000x3", |b| {
        b.iter(|| fig5(black_box(&ctx)).expect("fig5 runs"))
    });
    group.finish();
}

fn table4_sigma(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("table4_sigma");
    group.sample_size(10);
    group.bench_function("ol_sweep", |b| {
        b.iter(|| table4(black_box(&ctx)).expect("table4 runs"))
    });
    group.finish();
}

fn ablation_benches(c: &mut Criterion) {
    let ctx = bench_ctx();
    let t1 = table1(&ctx).expect("table1 runs");
    let f4 = fig4(&ctx, &t1).expect("fig4 runs");
    c.bench_function("ablation_delay_models", |b| {
        b.iter(|| ablation_delay_models(black_box(&ctx), black_box(&f4)).expect("a1 runs"))
    });
    c.bench_function("ablation_bl_width", |b| {
        b.iter(|| ablation_bl_width(black_box(&ctx)).expect("a2 runs"))
    });
    let mut group = c.benchmark_group("ablation_sadp_vss");
    group.sample_size(10);
    group.bench_function("anticorrelation", |b| {
        b.iter(|| ablation_sadp_anticorrelation(black_box(&ctx)).expect("a3 runs"))
    });
    group.finish();
}

criterion_group!(
    experiments,
    table1_worst_case,
    fig4_worst_case_td,
    table2_formula_vs_sim,
    table3_tdp,
    fig5_mc_histogram,
    table4_sigma,
    ablation_benches
);
criterion_main!(experiments);
