//! Substrate micro-benchmarks: the building blocks every experiment
//! leans on (sparse solves, transient steps, device evaluation, litho +
//! extraction per Monte-Carlo trial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpvar_extract::{extract_track, RelativeVariation};
use mpvar_litho::{apply_draw, sample_draw, Draw};
use mpvar_spice::{MosfetModel, Netlist, SparseMatrix, Transient};
use mpvar_sram::{simulate_read, BitcellGeometry, ReadConfig};
use mpvar_stats::RngStream;
use mpvar_tech::{preset::n10, PatterningOption, VariationBudget};

fn sparse_ladder_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_ladder_solve");
    for n in [256usize, 1024, 4096] {
        let mut m = SparseMatrix::new(n);
        for i in 0..n {
            m.add(i, i, 2.5);
            if i > 0 {
                m.add(i, i - 1, -1.0);
                m.add(i - 1, i, -1.0);
            }
        }
        let b = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("factor_solve", n), &n, |bench, _| {
            bench.iter(|| m.factor().expect("nonsingular").solve(black_box(&b)))
        });
        let factors = m.factor().expect("nonsingular");
        group.bench_with_input(BenchmarkId::new("resolve_only", n), &n, |bench, _| {
            bench.iter(|| factors.solve(black_box(&b)))
        });
    }
    group.finish();
}

fn mosfet_eval(c: &mut Criterion) {
    let tech = n10();
    let m = MosfetModel::new(*tech.nmos());
    c.bench_function("mosfet_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..100 {
                let vgs = 0.2 + (k as f64) * 0.005;
                acc += m.evaluate(black_box(vgs), black_box(0.35)).id;
            }
            acc
        })
    });
}

fn rc_transient(c: &mut Criterion) {
    // 64-segment linear RC line, 1000 fixed steps: the linear fast path.
    let mut net = Netlist::new();
    let mut prev = net.node("n0");
    for k in 1..=64 {
        let node = net.node(&format!("n{k}"));
        net.add_resistor(&format!("R{k}"), prev, node, 50.0)
            .expect("valid R");
        net.add_capacitor(&format!("C{k}"), node, Netlist::GROUND, 1e-16)
            .expect("valid C");
        prev = node;
    }
    let first = net.find_node("n0").expect("node exists");
    c.bench_function("rc_transient_64seg_1000steps", |b| {
        b.iter(|| {
            let mut tran = Transient::new(black_box(&net)).expect("valid netlist");
            tran.set_initial_voltage(first, 0.7);
            tran.run(1e-12, 1e-9).expect("converges")
        })
    });
}

fn litho_extract_trial(c: &mut Criterion) {
    // One full Monte-Carlo trial body: sample, print, extract, ratio.
    let tech = n10();
    let cell = BitcellGeometry::n10_hd(&tech).expect("cell builds");
    let m1 = tech.metal(1).expect("metal1");
    let stack = cell.column_stack(10, 5, 1).expect("stack builds");
    let nominal_printed =
        apply_draw(&stack, &Draw::nominal(PatterningOption::Le3)).expect("prints");
    let bl = nominal_printed.index_of_net("BL").expect("bl present");
    let nominal = extract_track(&nominal_printed, bl, m1).expect("extracts");
    let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).expect("budget");
    c.bench_function("litho_extract_mc_trial", |b| {
        let mut rng = RngStream::from_seed(1);
        b.iter(|| {
            let draw = sample_draw(PatterningOption::Le3, &budget, &mut rng).expect("samples");
            let printed = match apply_draw(&stack, &draw) {
                Ok(p) => p,
                Err(_) => return 0.0,
            };
            let w = extract_track(&printed, bl, m1).expect("extracts");
            RelativeVariation::between(&nominal, &w).c_var
        })
    });
}

fn read_simulation(c: &mut Criterion) {
    let tech = n10();
    let cell = BitcellGeometry::n10_hd(&tech).expect("cell builds");
    let cfg = ReadConfig::default();
    let mut group = c.benchmark_group("read_simulation");
    group.sample_size(10);
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                simulate_read(
                    black_box(&tech),
                    black_box(&cell),
                    &cfg,
                    n,
                    &Draw::nominal(PatterningOption::Euv),
                )
                .expect("read simulates")
            })
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    sparse_ladder_solve,
    mosfet_eval,
    rc_transient,
    litho_extract_trial,
    read_simulation
);
criterion_main!(micro);
