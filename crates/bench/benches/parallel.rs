//! Monte-Carlo trial throughput versus thread count.
//!
//! Benchmarks `tdp_distribution_with` at 1, 2, and all-cores workers
//! against one cached nominal window, reporting elements/sec so the
//! parallel speedup is directly visible. The sample vectors are
//! bit-identical across thread counts (see `tests/determinism.rs`);
//! only the wall clock changes. A `traced` variant repeats the
//! all-cores configuration with an `mpvar-trace` collector installed,
//! making the instrumentation overhead (budgeted at <2% on this hot
//! path) directly comparable.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpvar_core::prelude::*;
use mpvar_sram::BitcellGeometry;
use mpvar_tech::{preset::n10, PatterningOption, VariationBudget};
use mpvar_trace::{Collector, NullSink};

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2];
    let max = ExecConfig::default().effective_threads();
    if !counts.contains(&max) {
        counts.push(max);
    }
    counts
}

fn bench_parallel_mc(c: &mut Criterion) {
    let tech = n10();
    let cell = BitcellGeometry::n10_hd(&tech).expect("cell builds");
    let option = PatterningOption::Le3;
    let budget = VariationBudget::paper_default(option, 8.0).expect("budget");
    let window = NominalWindow::build(&tech, &cell, option).expect("window builds");
    let trials = 2_000usize;

    let mut group = c.benchmark_group("mc_trials");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trials as u64));
    for threads in thread_counts() {
        let mc = McConfig::builder()
            .trials(trials)
            .seed(2015)
            .threads(threads)
            .build();
        group.bench_with_input(
            BenchmarkId::new("tdp_distribution", threads),
            &mc,
            |b, mc| {
                b.iter(|| {
                    tdp_distribution_with(&window, &budget, 64, mc)
                        .expect("mc runs")
                        .sigma_percent()
                })
            },
        );
    }
    // Same workload, all cores, with the trace machinery live: the
    // delta against the untraced entry above is the instrumentation
    // overhead on the Monte-Carlo hot path.
    let threads = ExecConfig::default().effective_threads();
    let mc = McConfig::builder()
        .trials(trials)
        .seed(2015)
        .threads(threads)
        .build();
    group.bench_with_input(
        BenchmarkId::new("tdp_distribution_traced", threads),
        &mc,
        |b, mc| {
            let collector = Collector::new(vec![Arc::new(NullSink)]);
            let _session = collector.install();
            b.iter(|| {
                tdp_distribution_with(&window, &budget, 64, mc)
                    .expect("mc runs")
                    .sigma_percent()
            })
        },
    );
    group.finish();
}

fn bench_parallel_corner_search(c: &mut Criterion) {
    let tech = n10();
    let cell = BitcellGeometry::n10_hd(&tech).expect("cell builds");
    let option = PatterningOption::Le3;
    let budget = VariationBudget::paper_default(option, 8.0).expect("budget");
    let window = NominalWindow::build(&tech, &cell, option).expect("window builds");

    let mut group = c.benchmark_group("corner_search");
    group.sample_size(10);
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("find_worst_case", threads),
            &ExecConfig::with_threads(threads),
            |b, &exec| {
                b.iter(|| {
                    find_worst_case_with(&window, &budget, exec)
                        .expect("search runs")
                        .infeasible_corners
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_mc, bench_parallel_corner_search);
criterion_main!(benches);
