//! Compiled sparse-LU kernel versus the legacy row-map kernel.
//!
//! Benchmarks the `h = 1024` fixed-step-equivalent transient workload
//! (a 16-segment RC bit line with the 6T discharge FETs at the far
//! end) on both [`SolverKernel`] variants. The compiled kernel's
//! symbolic analysis is computed once per netlist structure and reused
//! across every Newton iteration and timestep — the speedup reported
//! here is recorded into `BENCH_parallel.json` by `repro
//! bench-parallel` with a 3x acceptance floor.
//!
//! Set `MPVAR_BENCH_QUICK=1` for the CI smoke configuration (minimum
//! sample count, same workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpvar_bench::{solver_workload_once, SOLVER_BENCH_STEPS};
use mpvar_spice::SolverKernel;

fn bench_solver_kernels(c: &mut Criterion) {
    let quick = std::env::var("MPVAR_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut group = c.benchmark_group("solver_kernel");
    group.sample_size(if quick { 10 } else { 30 });
    for (label, kernel) in [
        ("legacy", SolverKernel::Legacy),
        ("compiled", SolverKernel::Compiled),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, SOLVER_BENCH_STEPS),
            &kernel,
            |b, &kernel| b.iter(|| solver_workload_once(kernel)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver_kernels);
criterion_main!(benches);
