//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] [--trace FILE] [--metrics] [--timings] <experiment | all>
//! repro check [--fast] [--golden DIR] [--oracle-cases N] [--trace FILE] [--metrics] [--timings]
//! repro validate-trace FILE
//! repro profile [--folded OUT] FILE
//! repro perf-check [--baseline FILE] FILE
//! repro serve [--addr HOST:PORT] [--store DIR]
//! repro client [--addr HOST:PORT] [--quick] <artifact>... | --stats | --shutdown
//! repro validate-serve FILE
//! repro serve-smoke [--store DIR]
//! ```
//!
//! Experiments: table1 fig4 table2 table3 fig5 table4 ablation-delay
//! ablation-bl-width ablation-sadp-vss. `--quick` uses the down-scaled
//! context (small arrays, fewer Monte-Carlo trials); the default is the
//! paper's full design of experiments. CSV artefacts land in `--out`
//! (default `results/`). The extra `bench-parallel` target measures
//! Monte-Carlo throughput per thread count and writes the
//! `BENCH_parallel.json` snapshot tracked across PRs;
//! `bench-batch-smoke` times the batched SoA trial solver against the
//! per-trial scalar path on a reduced SPICE-backed workload and fails
//! unless the batched path holds a 2x floor (CI runs it traced and
//! then validates the `spice.batch_*` counters from the trace);
//! `bench-yield-smoke` runs the adaptive importance-sampling yield
//! engine on the planted `P_fail = 1e-6` problem and fails unless the
//! run converges with a truth-covering CI, holds the 50x
//! brute-force-equivalent floor, and is bit-identical across worker
//! counts (CI runs it traced and requires the `yield.rounds` counter).
//!
//! Every evaluation runs through a [`Study`] session and every layer of
//! the pipeline is instrumented with `mpvar-trace` spans and metrics:
//!
//! * `--trace FILE` writes the full run telemetry — spans from the
//!   parallel executor, the Monte-Carlo engine, the SPICE solver, and
//!   the study graph, plus the final metrics — as machine-readable
//!   JSONL (schema `mpvar-trace/v1`);
//! * `--metrics` prints the metrics snapshot (MC trials/sec, solver
//!   iterations, cache hits/misses, …) to stderr after the run;
//! * `--timings` prints the aggregated span tree — producer runs,
//!   cache hits, wall-clock per stage — to stderr after the run;
//! * `validate-trace FILE` parses a JSONL trace and checks it against
//!   the schema (CI runs this on every traced pipeline run);
//!   `--require-counter NAME` (repeatable) additionally fails unless
//!   the trace recorded a nonzero final value for that counter — the
//!   CI solver smoke uses it to prove the compiled kernel actually
//!   reused its symbolic analysis (`spice.lu_symbolic_reuses`) —
//!   and `--require-span NAME` (repeatable) fails unless the trace
//!   contains at least one completed span of that name;
//! * `profile FILE` runs the `mpvar-obs` trace analytics over a
//!   captured trace: per-span-name aggregates (count, total/self
//!   time, latency quantiles), the critical path through the dominant
//!   root, and — with `--folded OUT` — the folded-stack flamegraph
//!   export (`stack;frames self_ns`, one line per distinct stack,
//!   ready for `flamegraph.pl` or speedscope);
//! * `perf-check FILE` evaluates the trace against the committed
//!   relative perf baseline (`--baseline`, default
//!   `results/perf_baseline.json`) and exits non-zero when any named
//!   check regresses — the observability analogue of `repro check`.
//!
//! The serving quartet fronts the same study graph over a socket
//! (`mpvar-serve/v1`, newline-delimited JSON): `serve` runs the job
//! server against a persistent on-disk artifact store (warm restarts
//! replay cached analyses without touching a solver), `client` submits
//! one request and streams its progress (`client --stats` instead
//! renders the server's live telemetry: dispatch counters, cache
//! hit-rate and dedupe-ratio gauges, per-outcome latency quantiles,
//! and the recent snapshot windows), `validate-serve FILE` checks
//! a protocol transcript against the schema, and `serve-smoke` is the
//! CI gate — it proves request dedupe (3 identical concurrent
//! requests + 1 distinct = exactly 2 materializations, counter-
//! asserted) and the zero-solver warm restart.
//!
//! `check` re-runs the matrix and verdicts it: committed goldens are
//! compared value-wise under per-column tolerances, the paper's shape
//! claims are asserted as named invariants, and the three delay paths
//! (formula, Elmore, SPICE) are cross-validated on randomized arrays.
//! Exit status is non-zero when any named check fails. `--fast` runs
//! the reduced profile (heights {16, 64}, 5 000 trials, statistical
//! bands on Monte-Carlo columns).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mpvar_bench::check::{check_context, run_check_in, CheckOptions};
use mpvar_bench::{
    parallel_bench_snapshot, spice_batch_bench, yield_bench, yield_threads_identical,
    EXPERIMENT_IDS,
};
use mpvar_core::experiments::ExperimentContext;
use mpvar_obs::{
    check as run_perf_check, folded_stacks, profile as profile_trace, render_profile,
    render_report, PerfBaseline, SpanForest,
};
use mpvar_serve::protocol::{AnalysisRequest, ContextSpec, Preset};
use mpvar_serve::{
    validate_serve_jsonl, Client, ClientMessage, Dispatcher, ProgressRouter, RenderedArtifact,
    Server, ServerMessage,
};
use mpvar_study::{ArtifactId, DiskStore, Study};
use mpvar_trace::sink::{render_metrics, render_tree, TraceSink};
use mpvar_trace::{
    names, validate_jsonl, Collector, CollectorGuard, JsonlSink, RecordingSink, SpanRecord,
};

/// Streams one progress line per evaluated study node to stderr.
struct ProgressLines;

impl TraceSink for ProgressLines {
    fn on_span(&self, span: &SpanRecord) {
        if span.name != names::SPAN_STUDY_NODE {
            return;
        }
        let artifact = span.str_field("artifact").unwrap_or("?");
        match span.str_field("outcome") {
            Some("cache_hit") => eprintln!("[study] {artifact}: cache hit"),
            _ => eprintln!(
                "[study] {artifact}: computed in {:.3} s",
                span.dur_ns as f64 / 1e9
            ),
        }
    }
}

/// The run's trace pipeline: which sinks are installed and where the
/// telemetry goes when the run finishes.
struct Telemetry {
    collector: Arc<Collector>,
    session: CollectorGuard,
    recording: Option<Arc<RecordingSink>>,
    jsonl: Option<(Arc<JsonlSink>, PathBuf)>,
    metrics: bool,
}

impl Telemetry {
    /// Installs the collector: progress lines always, a recording sink
    /// when `--timings` wants the span tree, a JSONL sink for `--trace`.
    fn install(trace: Option<PathBuf>, metrics: bool, timings: bool) -> Self {
        let mut sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::new(ProgressLines)];
        let recording = timings.then(|| {
            let sink = Arc::new(RecordingSink::new());
            sinks.push(sink.clone());
            sink
        });
        let jsonl = trace.map(|path| {
            let sink = Arc::new(JsonlSink::new());
            sinks.push(sink.clone());
            (sink, path)
        });
        let collector = Collector::new(sinks);
        let session = collector.install();
        Telemetry {
            collector,
            session,
            recording,
            jsonl,
            metrics,
        }
    }

    /// Flushes and renders: uninstalls the collector (writing the final
    /// metrics lines into the JSONL sink), writes `--trace`, prints the
    /// `--timings` tree and `--metrics` report to stderr.
    fn finish(self) -> Result<(), String> {
        let snapshot = self.collector.metrics_snapshot();
        drop(self.session);
        if let Some((sink, path)) = &self.jsonl {
            sink.write_to(path)
                .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        if let Some(recording) = &self.recording {
            eprint!("{}", render_tree(&recording.spans()));
        }
        if self.metrics {
            eprint!("{}", render_metrics(&snapshot));
        }
        Ok(())
    }
}

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--out DIR] [--trace FILE] [--metrics] [--timings] \
         <experiment | all | bench-parallel | bench-batch-smoke | bench-yield-smoke>\n\
         \x20      repro check [--fast] [--golden DIR] [--oracle-cases N] [--trace FILE] \
         [--metrics] [--timings]\n\
         \x20      repro validate-trace [--require-counter NAME]... [--require-span NAME]... FILE\n\
         \x20      repro profile [--folded OUT] FILE\n\
         \x20      repro perf-check [--baseline FILE] FILE\n\
         \x20      repro serve [--addr HOST:PORT] [--store DIR]\n\
         \x20      repro client [--addr HOST:PORT] [--quick] <artifact>... | --stats | --shutdown\n\
         \x20      repro validate-serve FILE\n\
         \x20      repro serve-smoke [--store DIR]\n\
         experiments: {}",
        EXPERIMENT_IDS.join(" ")
    )
}

/// The CI serving gate, in two phases against one on-disk store.
///
/// Phase 1 (cold): three identical concurrent requests plus one
/// distinct must cost exactly two materializations — two of the
/// identical ones dedupe onto the first one's in-flight wave
/// (deterministically: they are sent only after the wave's first
/// progress event proves it is still running) — asserted from the
/// server's own `serve.*` counters.
///
/// Phase 2 (warm): a fresh server over the same store answers the
/// same request bit-identically without opening a single solver span,
/// proved by a recording trace sink and the store's disk-hit counter.
fn serve_smoke(root: &Path) -> Result<(), String> {
    let spec = ContextSpec {
        preset: Preset::Quick,
        sizes: Some(vec![8]),
        trials: Some(120),
        seed: Some(11),
        threads: Some(2),
    };
    let request = |id: &str, artifacts: Vec<ArtifactId>, progress: bool| AnalysisRequest {
        id: id.to_string(),
        artifacts,
        context: spec.clone(),
        progress,
    };
    let start = |root: &Path| -> Result<(Server, Arc<RecordingSink>, CollectorGuard), String> {
        let sink = Arc::new(RecordingSink::new());
        let router = Arc::new(ProgressRouter::new());
        let store = Arc::new(DiskStore::open(root).map_err(|e| format!("cannot open store: {e}"))?);
        let dispatcher = Arc::new(Dispatcher::new(store, Arc::clone(&router)));
        let sinks: Vec<Arc<dyn TraceSink>> = vec![router, Arc::clone(&sink) as Arc<dyn TraceSink>];
        let guard = Collector::new(sinks).install();
        let server = Server::start("127.0.0.1:0", dispatcher)
            .map_err(|e| format!("cannot bind server: {e}"))?;
        Ok((server, sink, guard))
    };

    // ----------------------------------------------------------- cold
    let (server, cold_sink, cold_guard) = start(root)?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("cannot connect: {e}"))?;
    client
        .send(&ClientMessage::Request(request(
            "r1",
            vec![ArtifactId::Table3],
            true,
        )))
        .map_err(|e| format!("send r1: {e}"))?;

    // Gate: once table1 finishes inside r1's wave, fig4 and table3 are
    // still to come, so the next requests provably arrive in flight.
    loop {
        match client.recv().map_err(|e| format!("recv: {e}"))? {
            ServerMessage::Ack { .. } => {}
            ServerMessage::Progress { artifact, .. } => {
                eprintln!("[smoke] r1 progress: {artifact}");
                if artifact == "table1" {
                    break;
                }
            }
            other => return Err(format!("unexpected message before gate: {other:?}")),
        }
    }
    for id in ["r2", "r3"] {
        client
            .send(&ClientMessage::Request(request(
                id,
                vec![ArtifactId::Table3],
                false,
            )))
            .map_err(|e| format!("send {id}: {e}"))?;
    }
    client
        .send(&ClientMessage::Request(request(
            "r4",
            vec![ArtifactId::Fig5],
            false,
        )))
        .map_err(|e| format!("send r4: {e}"))?;

    let mut results: BTreeMap<String, Vec<RenderedArtifact>> = BTreeMap::new();
    while results.len() < 4 {
        match client.recv().map_err(|e| format!("recv: {e}"))? {
            ServerMessage::Result { id, artifacts } => {
                eprintln!("[smoke] {id} answered");
                results.insert(id, artifacts);
            }
            ServerMessage::Ack { .. } | ServerMessage::Progress { .. } => {}
            other => return Err(format!("unexpected message: {other:?}")),
        }
    }
    if results["r1"] != results["r2"] || results["r1"] != results["r3"] {
        return Err("deduped requests answered differently".into());
    }
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let expect = |name: &str, want: u64| -> Result<(), String> {
        match stats.get(name) {
            Some(&got) if got == want => {
                eprintln!("[smoke] {name} = {got}");
                Ok(())
            }
            got => Err(format!("{name}: want {want}, got {got:?}")),
        }
    };
    expect(names::SERVE_REQUESTS, 4)?;
    expect(names::SERVE_DEDUPED, 2)?;
    expect(names::SERVE_MATERIALIZATIONS, 2)?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    if !server.join(Duration::from_secs(300)) {
        return Err("cold server waves did not drain".into());
    }
    drop(cold_guard);
    if !cold_sink
        .spans()
        .iter()
        .any(|s| s.name == names::SPAN_SPICE_TRANSIENT)
    {
        return Err("cold run never reached the solver — smoke is not probing anything".into());
    }

    // ----------------------------------------------------------- warm
    let (server, warm_sink, warm_guard) = start(root)?;
    let mut client =
        Client::connect(server.addr()).map_err(|e| format!("cannot connect warm: {e}"))?;
    let warm = client
        .request(request("w1", vec![ArtifactId::Table3], true), |_| {})
        .map_err(|e| format!("warm request: {e}"))?;
    if warm != results["r1"] {
        return Err("warm replay differs from the cold answer".into());
    }
    let disk = server.dispatcher().store().stats();
    if disk.disk_hits < 3 {
        return Err(format!(
            "expected >= 3 disk hits on warm replay, got {disk:?}"
        ));
    }
    client
        .shutdown()
        .map_err(|e| format!("shutdown warm: {e}"))?;
    if !server.join(Duration::from_secs(300)) {
        return Err("warm server waves did not drain".into());
    }
    drop(warm_guard);
    for span in [
        names::SPAN_SPICE_TRANSIENT,
        names::SPAN_SPICE_BATCH,
        names::SPAN_MC_WAVE,
        names::SPAN_MC_DISTRIBUTION,
        names::SPAN_CORNER_SEARCH,
    ] {
        if warm_sink.spans().iter().any(|s| s.name == span) {
            return Err(format!("warm replay opened solver span `{span}`"));
        }
    }
    eprintln!(
        "[smoke] warm replay: bit-identical, {} disk hits, zero solver spans",
        disk.disk_hits
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut fast = false;
    let mut timings = false;
    let mut metrics = false;
    let mut trace: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("results");
    let mut golden_dir = PathBuf::from("results");
    let mut oracle_cases = 128usize;
    let mut target: Option<String> = None;
    let mut trace_to_validate: Option<PathBuf> = None;
    let mut required_counters: Vec<String> = Vec::new();
    let mut required_spans: Vec<String> = Vec::new();
    let mut folded_out: Option<PathBuf> = None;
    let mut baseline_path = PathBuf::from("results/perf_baseline.json");
    let mut addr = String::from("127.0.0.1:7878");
    let mut store_dir: Option<PathBuf> = None;
    let mut client_artifacts: Vec<String> = Vec::new();
    let mut shutdown_server = false;
    let mut client_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--fast" => fast = true,
            "--timings" => timings = true,
            "--metrics" => metrics = true,
            "--trace" => match args.next() {
                Some(path) => trace = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--golden" => match args.next() {
                Some(dir) => golden_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--golden needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--require-counter" => match args.next() {
                Some(name) if !name.is_empty() => required_counters.push(name),
                _ => {
                    eprintln!("--require-counter needs a counter name\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--require-span" => match args.next() {
                Some(name) if !name.is_empty() => required_spans.push(name),
                _ => {
                    eprintln!("--require-span needs a span name\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--folded" => match args.next() {
                Some(path) => folded_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--folded needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = PathBuf::from(path),
                None => {
                    eprintln!("--baseline needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--stats" => client_stats = true,
            "--shutdown" => shutdown_server = true,
            "--addr" => match args.next() {
                Some(a) if !a.is_empty() => addr = a,
                _ => {
                    eprintln!("--addr needs HOST:PORT\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match args.next() {
                Some(dir) => store_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--store needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--oracle-cases" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => oracle_cases = n,
                _ => {
                    eprintln!("--oracle-cases needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other
                if matches!(
                    target.as_deref(),
                    Some("validate-trace")
                        | Some("validate-serve")
                        | Some("profile")
                        | Some("perf-check")
                ) && trace_to_validate.is_none()
                    && !other.starts_with('-') =>
            {
                trace_to_validate = Some(PathBuf::from(other));
            }
            other if target.as_deref() == Some("client") && !other.starts_with('-') => {
                client_artifacts.push(other.to_string());
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(target) = target else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    if target == "validate-trace" {
        let Some(path) = trace_to_validate else {
            eprintln!("validate-trace needs a JSONL file\n{}", usage());
            return ExitCode::FAILURE;
        };
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_jsonl(&raw) {
            Ok(log) => {
                println!(
                    "{}: valid {} trace — {} spans ({} distinct names), {} counters, \
                     {} gauges, {} histograms",
                    path.display(),
                    log.schema,
                    log.spans.len(),
                    log.span_names().len(),
                    log.counters.len(),
                    log.gauges.len(),
                    log.histograms.len()
                );
                let mut ok = true;
                for name in &required_counters {
                    match log.counters.get(name) {
                        Some(&v) if v > 0 => println!("  counter `{name}` = {v}"),
                        Some(_) => {
                            eprintln!("{}: counter `{name}` is zero", path.display());
                            ok = false;
                        }
                        None => {
                            eprintln!("{}: counter `{name}` missing", path.display());
                            ok = false;
                        }
                    }
                }
                for name in &required_spans {
                    let hits = log.spans.iter().filter(|s| &s.name == name).count();
                    if hits > 0 {
                        println!("  span `{name}` x{hits}");
                    } else {
                        eprintln!("{}: span `{name}` missing", path.display());
                        ok = false;
                    }
                }
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{}: invalid trace: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if target == "profile" {
        let Some(path) = trace_to_validate else {
            eprintln!("profile needs a JSONL trace file\n{}", usage());
            return ExitCode::FAILURE;
        };
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let log = match validate_jsonl(&raw) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("{}: invalid trace: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let prof = match profile_trace(&log) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: cannot profile: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        print!("{}", render_profile(&prof));
        if let Some(out) = folded_out {
            let forest = match SpanForest::build(log.spans.clone()) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{}: cannot rebuild span forest: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&out, folded_stacks(&forest)) {
                eprintln!("cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", out.display());
        }
        return ExitCode::SUCCESS;
    }

    if target == "perf-check" {
        let Some(path) = trace_to_validate else {
            eprintln!("perf-check needs a JSONL trace file\n{}", usage());
            return ExitCode::FAILURE;
        };
        let baseline_raw = match std::fs::read_to_string(&baseline_path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline = match PerfBaseline::parse(&baseline_raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let log = match validate_jsonl(&raw) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("{}: invalid trace: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "perf-check: {} against baseline {} ({} checks, workload `{}`)",
            path.display(),
            baseline_path.display(),
            baseline.checks.len(),
            baseline.workload
        );
        let report = match run_perf_check(&baseline, &log) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf-check failed to evaluate: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", render_report(&report));
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "perf regression gate failed: {}",
                report.failed_names().join(", ")
            );
            ExitCode::FAILURE
        };
    }

    if target == "validate-serve" {
        let Some(path) = trace_to_validate else {
            eprintln!("validate-serve needs a JSONL transcript\n{}", usage());
            return ExitCode::FAILURE;
        };
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_serve_jsonl(&raw) {
            Ok(log) => {
                println!(
                    "{}: valid mpvar-serve/v1 transcript — {} messages \
                     ({} requests, {} results, {} progress, {} errors)",
                    path.display(),
                    log.messages.len(),
                    log.requests(),
                    log.results(),
                    log.progress_events(),
                    log.errors()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}: invalid transcript: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if target == "serve" {
        let root = store_dir.unwrap_or_else(|| PathBuf::from("artifact-store"));
        let store = match DiskStore::open(&root) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot open artifact store {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        let router = Arc::new(ProgressRouter::new());
        let dispatcher = Arc::new(Dispatcher::new(store, Arc::clone(&router)));
        // Progress lines to stderr for the operator; the router feeds
        // the per-request progress streams.
        let sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::new(ProgressLines), router];
        let session = Collector::new(sinks).install();
        let server = match Server::start(addr.as_str(), dispatcher) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "mpvar-serve listening on {} (store: {}); send a shutdown message to stop",
            server.addr(),
            root.display()
        );
        let drained = server.join(Duration::from_secs(3600));
        drop(session);
        return if drained {
            ExitCode::SUCCESS
        } else {
            eprintln!("shutdown timed out waiting for running waves");
            ExitCode::FAILURE
        };
    }

    if target == "client" {
        if client_stats {
            let mut client = match Client::connect(addr.as_str()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot connect to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            return match client.stats_full() {
                Ok(stats) => {
                    print!("{}", stats.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot fetch stats from {addr}: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        if shutdown_server {
            return match Client::connect(addr.as_str()).and_then(Client::shutdown) {
                Ok(()) => {
                    eprintln!("sent shutdown to {addr}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot shut down {addr}: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        if client_artifacts.is_empty() {
            eprintln!("client needs at least one artifact name\n{}", usage());
            return ExitCode::FAILURE;
        }
        let mut artifacts = Vec::with_capacity(client_artifacts.len());
        for name in &client_artifacts {
            match ArtifactId::try_parse(name) {
                Ok(id) => artifacts.push(id),
                Err(_) => {
                    eprintln!("unknown artifact `{name}`\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut client = match Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let request = AnalysisRequest {
            id: format!("cli-{}", std::process::id()),
            artifacts,
            context: ContextSpec {
                preset: if quick { Preset::Quick } else { Preset::Paper },
                ..ContextSpec::default()
            },
            progress: true,
        };
        let answer = client.request(request, |event| match event {
            ServerMessage::Ack { fingerprint, .. } => {
                eprintln!("[serve] accepted (fingerprint {fingerprint})");
            }
            ServerMessage::Progress {
                artifact,
                outcome,
                dur_ns,
                ..
            } => {
                if outcome == "cache_hit" {
                    eprintln!("[serve] {artifact}: cache hit");
                } else {
                    eprintln!(
                        "[serve] {artifact}: computed in {:.3} s",
                        *dur_ns as f64 / 1e9
                    );
                }
            }
            _ => {}
        });
        let artifacts = match answer {
            Ok(a) => a,
            Err(e) => {
                eprintln!("request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("cannot create output directory {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        for artifact in &artifacts {
            println!("{}", artifact.text);
            if !artifact.csv.is_empty() {
                let path = out_dir.join(format!("{}.csv", artifact.id));
                if let Err(e) = std::fs::write(&path, &artifact.csv) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
        }
        return ExitCode::SUCCESS;
    }

    if target == "serve-smoke" {
        let default_root = store_dir.is_none();
        let root = store_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("mpvar-serve-smoke-{}", std::process::id()))
        });
        let _ = std::fs::remove_dir_all(&root);
        let verdict = serve_smoke(&root);
        if default_root {
            let _ = std::fs::remove_dir_all(&root);
        }
        return match verdict {
            Ok(()) => {
                println!("serve smoke: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if target == "check" {
        let opts = CheckOptions {
            fast,
            golden_dir,
            oracle_cases,
            ..CheckOptions::new(fast)
        };
        eprintln!(
            "repro check ({} profile, goldens from {}, {} oracle cases)",
            if fast { "fast" } else { "full" },
            opts.golden_dir.display(),
            opts.oracle_cases
        );
        let ctx = match check_context(&opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("failed to build check context: {e}");
                return ExitCode::FAILURE;
            }
        };
        let telemetry = Telemetry::install(trace, metrics, timings);
        let study = Study::new(ctx);
        let report = match run_check_in(&opts, &study) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("check could not regenerate the matrix: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.render());
        if let Err(e) = telemetry.finish() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if fast || oracle_cases != 128 {
        eprintln!(
            "--fast/--oracle-cases are only valid with `check`\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if !required_counters.is_empty() || !required_spans.is_empty() {
        eprintln!(
            "--require-counter/--require-span are only valid with `validate-trace`\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }

    let ctx = match if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::paper()
    } {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to build experiment context: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running `{target}` ({} context: sizes {:?}, {} MC trials)",
        if quick { "quick" } else { "paper" },
        ctx.sizes,
        ctx.mc.trials
    );

    if target == "bench-parallel" {
        // No collector here: the bench measures traced vs untraced
        // Monte-Carlo throughput itself, so the baseline must run with
        // tracing genuinely disabled.
        let json = match parallel_bench_snapshot(&ctx) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{json}");
        let path = PathBuf::from("BENCH_parallel.json");
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    if target == "bench-batch-smoke" {
        // CI floor for the batched SoA trial solver: the reduced
        // workload must hold at least 2x over the per-trial scalar
        // path (the snapshot tracks the full workload against 3x).
        // Telemetry is allowed here — it loads both paths equally and
        // lets CI validate the spice.batch_* counters from the trace.
        let telemetry = Telemetry::install(trace, metrics, timings);
        let bench = match spice_batch_bench(&ctx, 64) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("batch bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "batch smoke: n = {}, {} trials, width {}: scalar {:.1} trials/s, \
             batched {:.1} trials/s, speedup {:.2}x",
            bench.n_cells,
            bench.trials,
            bench.batch_width,
            bench.scalar_tps(),
            bench.batched_tps(),
            bench.speedup()
        );
        if let Err(e) = telemetry.finish() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        if bench.speedup() < 2.0 {
            eprintln!(
                "batched trial solver below the 2x smoke floor ({:.2}x)",
                bench.speedup()
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if target == "bench-yield-smoke" {
        // CI floor for the rare-event yield engine: the planted 1e-6
        // problem must converge with a truth-covering CI at >= 50x the
        // brute-force-equivalent trial count, bit-identically across
        // worker counts. Telemetry is allowed (and CI-required): the
        // traced run must record the yield.rounds counter.
        let telemetry = Telemetry::install(trace, metrics, timings);
        let yb = match yield_bench() {
            Ok(y) => y,
            Err(e) => {
                eprintln!("yield bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let identical = match yield_threads_identical() {
            Ok(i) => i,
            Err(e) => {
                eprintln!("yield thread-identity probe failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "yield smoke: planted P_fail = {:.0e}: p = {:.3e} (rel_hw {:.3}, converged {}), \
             {} trials vs {:.0} brute-equivalent ({:.0}x), CI covers truth: {}, \
             thread-identical: {identical}",
            yb.p_true,
            yb.p_fail,
            yb.rel_half_width,
            yb.converged,
            yb.trials,
            yb.brute_equivalent_trials,
            yb.speedup(),
            yb.ci_covers_truth
        );
        if let Err(e) = telemetry.finish() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let mut ok = true;
        if !yb.converged || !yb.ci_covers_truth {
            eprintln!("yield smoke: run must converge with a truth-covering CI");
            ok = false;
        }
        if yb.speedup() < 50.0 {
            eprintln!(
                "yield smoke: speedup {:.1}x below the 50x floor",
                yb.speedup()
            );
            ok = false;
        }
        if !identical {
            eprintln!("yield smoke: runs diverged across worker counts");
            ok = false;
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let telemetry = Telemetry::install(trace, metrics, timings);
    let study = Study::new(ctx);
    let artifacts = match study.run_named(&target) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for artifact in &artifacts {
        println!("{}", artifact.text);
        if !artifact.csv.is_empty() {
            let path = out_dir.join(format!("{}.csv", artifact.id));
            if let Err(e) = std::fs::write(&path, &artifact.csv) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    if let Err(e) = telemetry.finish() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
