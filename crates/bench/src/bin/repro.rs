//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] <experiment | all>
//! ```
//!
//! Experiments: table1 fig4 table2 table3 fig5 table4 ablation-delay
//! ablation-bl-width ablation-sadp-vss. `--quick` uses the down-scaled
//! context (small arrays, fewer Monte-Carlo trials); the default is the
//! paper's full design of experiments. CSV artefacts land in `--out`
//! (default `results/`). The extra `bench-parallel` target measures
//! Monte-Carlo throughput per thread count and writes the
//! `BENCH_parallel.json` snapshot tracked across PRs.

use std::path::PathBuf;
use std::process::ExitCode;

use mpvar_bench::{parallel_bench_snapshot, run, EXPERIMENT_IDS};
use mpvar_core::experiments::ExperimentContext;

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--out DIR] <experiment | all | bench-parallel>\n\
         experiments: {}",
        EXPERIMENT_IDS.join(" ")
    )
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut target: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(target) = target else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let ctx = match if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::paper()
    } {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to build experiment context: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running `{target}` ({} context: sizes {:?}, {} MC trials)",
        if quick { "quick" } else { "paper" },
        ctx.sizes,
        ctx.mc.trials
    );

    if target == "bench-parallel" {
        let json = match parallel_bench_snapshot(&ctx) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{json}");
        let path = PathBuf::from("BENCH_parallel.json");
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let artifacts = match run(&target, &ctx) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for artifact in &artifacts {
        println!("{}", artifact.text);
        if !artifact.csv.is_empty() {
            let path = out_dir.join(format!("{}.csv", artifact.id));
            if let Err(e) = std::fs::write(&path, &artifact.csv) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
