//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] [--timings] <experiment | all>
//! repro check [--fast] [--golden DIR] [--oracle-cases N] [--timings]
//! ```
//!
//! Experiments: table1 fig4 table2 table3 fig5 table4 ablation-delay
//! ablation-bl-width ablation-sadp-vss. `--quick` uses the down-scaled
//! context (small arrays, fewer Monte-Carlo trials); the default is the
//! paper's full design of experiments. CSV artefacts land in `--out`
//! (default `results/`). The extra `bench-parallel` target measures
//! Monte-Carlo throughput per thread count and writes the
//! `BENCH_parallel.json` snapshot tracked across PRs.
//!
//! Every evaluation runs through a [`Study`] session: the artifact
//! graph computes each shared stage (the Table I corner search, the
//! Fig. 4 simulations) exactly once and serves every downstream
//! consumer from the content-keyed cache. `--timings` prints the
//! per-node report — producer runs, cache hits, wall-clock — after the
//! run.
//!
//! `check` re-runs the matrix and verdicts it: committed goldens are
//! compared value-wise under per-column tolerances, the paper's shape
//! claims are asserted as named invariants, and the three delay paths
//! (formula, Elmore, SPICE) are cross-validated on randomized arrays.
//! Exit status is non-zero when any named check fails. `--fast` runs
//! the reduced profile (heights {16, 64}, 5 000 trials, statistical
//! bands on Monte-Carlo columns).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use mpvar_bench::check::{check_context, run_check_in, CheckOptions};
use mpvar_bench::{parallel_bench_snapshot, EXPERIMENT_IDS};
use mpvar_core::experiments::ExperimentContext;
use mpvar_study::{ArtifactId, NodeOutcome, Study, StudyObserver};

/// Streams one progress line per evaluated node to stderr.
struct ProgressLines;

impl StudyObserver for ProgressLines {
    fn on_node_done(&self, id: ArtifactId, outcome: NodeOutcome) {
        match outcome {
            NodeOutcome::Computed(wall) => {
                eprintln!("[study] {id}: computed in {:.3} s", wall.as_secs_f64());
            }
            NodeOutcome::CacheHit => eprintln!("[study] {id}: cache hit"),
        }
    }
}

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--out DIR] [--timings] <experiment | all | bench-parallel>\n\
         \x20      repro check [--fast] [--golden DIR] [--oracle-cases N] [--timings]\n\
         experiments: {}",
        EXPERIMENT_IDS.join(" ")
    )
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut fast = false;
    let mut timings = false;
    let mut out_dir = PathBuf::from("results");
    let mut golden_dir = PathBuf::from("results");
    let mut oracle_cases = 128usize;
    let mut target: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--fast" => fast = true,
            "--timings" => timings = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--golden" => match args.next() {
                Some(dir) => golden_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--golden needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--oracle-cases" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => oracle_cases = n,
                _ => {
                    eprintln!("--oracle-cases needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(target) = target else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    if target == "check" {
        let opts = CheckOptions {
            fast,
            golden_dir,
            oracle_cases,
            ..CheckOptions::new(fast)
        };
        eprintln!(
            "repro check ({} profile, goldens from {}, {} oracle cases)",
            if fast { "fast" } else { "full" },
            opts.golden_dir.display(),
            opts.oracle_cases
        );
        let ctx = match check_context(&opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("failed to build check context: {e}");
                return ExitCode::FAILURE;
            }
        };
        let study = Study::new(ctx).with_observer(Arc::new(ProgressLines));
        let report = match run_check_in(&opts, &study) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("check could not regenerate the matrix: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.render());
        if timings {
            eprint!("{}", study.timings_report());
        }
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if fast || oracle_cases != 128 {
        eprintln!(
            "--fast/--oracle-cases are only valid with `check`\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }

    let ctx = match if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::paper()
    } {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to build experiment context: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running `{target}` ({} context: sizes {:?}, {} MC trials)",
        if quick { "quick" } else { "paper" },
        ctx.sizes,
        ctx.mc.trials
    );

    if target == "bench-parallel" {
        let json = match parallel_bench_snapshot(&ctx) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{json}");
        let path = PathBuf::from("BENCH_parallel.json");
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let study = Study::new(ctx).with_observer(Arc::new(ProgressLines));
    let artifacts = match study.run_named(&target) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for artifact in &artifacts {
        println!("{}", artifact.text);
        if !artifact.csv.is_empty() {
            let path = out_dir.join(format!("{}.csv", artifact.id));
            if let Err(e) = std::fs::write(&path, &artifact.csv) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    if timings {
        eprint!("{}", study.timings_report());
    }
    ExitCode::SUCCESS
}
