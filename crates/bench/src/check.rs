//! The `repro -- check` verdict engine: golden gate + invariants +
//! differential oracles in one pass.
//!
//! [`run_check`] regenerates the experiment matrix once (sharing the
//! expensive corner-search and simulation stages exactly like
//! [`crate::run_all`]), then renders three families of named
//! [`CheckItem`]s:
//!
//! 1. **Golden gate** (`golden.<id>`): each freshly rendered CSV is
//!    compared against the committed `results/<id>.csv` under a
//!    per-column tolerance policy. Deterministic corner-search columns
//!    are held to formatting noise; Monte-Carlo sigma columns re-run
//!    under the reduced `--fast` profile get statistical bands sized
//!    from the sampling error of the smaller trial count.
//! 2. **Shape invariants** (`<artefact>.<claim>`): the paper's
//!    qualitative claims, checked on the structured experiment outputs
//!    (see `mpvar_testkit::invariants`).
//! 3. **Differential oracles** (`oracle.<bound>`): formula, Elmore,
//!    and SPICE delays cross-validated on randomized small arrays.
//!
//! The whole pass is deterministic for a fixed profile: seeds are
//! fixed, and every Monte-Carlo stage is thread-count invariant, so a
//! `check` report is byte-identical across machines and worker counts.

use std::path::PathBuf;

use mpvar_core::experiments::{
    AblationBlWidth, AblationDelayModels, AblationSadpAnticorrelation, ExperimentContext,
    ExtensionLe2, ExtensionLer, ExtensionScaling, Fig4, Fig5, Table1, Table2, Table3, Table4,
};
use mpvar_core::rareevent::YieldTable;
use mpvar_core::writeexp::{SenseMargin, WlDelay, WriteMargin, WriteTime, WriteYieldTable};
use mpvar_core::{CoreError, ExecConfig};
use mpvar_sram::WriteConfig;
use mpvar_study::{SensitivityMatrix, Study};
use mpvar_testkit::compare::{compare_tables, Policy, TableSpec};
use mpvar_testkit::csv::CsvTable;
use mpvar_testkit::invariants;
use mpvar_testkit::oracle::{run_delay_oracles, OracleConfig};
use mpvar_testkit::write_oracle::{run_write_oracles, WriteOracleConfig};
use mpvar_testkit::{CheckItem, CheckReport};

/// Maximum simulation-vs-formula tdp gap (percentage points) asserted
/// by the Table III methods-agree invariant. The golden gap peaks at
/// 6.3pp (10x16, LELELE); the paper itself reports the formula as an
/// upper bound that loosens with height (Table II ratio 0.95 → 0.73).
const TABLE3_MAX_GAP_PP: f64 = 13.0;

/// Relative tolerance for Monte-Carlo sigma columns under `--fast`:
/// the 5 000-trial estimate shares its draws with the 20 000-trial
/// golden (same seed, substream-per-trial), so the deviation is the
/// sampling error of the withheld 15 000 draws — about 1–2% for a
/// standard deviation. 8% keeps a 4× guard band without masking a
/// real change (the smallest inter-option sigma gap is ~35%).
const FAST_SIGMA_REL: f64 = 0.08;

/// Configuration of one `check` pass.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Reduced profile: array heights {16, 64} and 5 000 Monte-Carlo
    /// trials instead of the paper's {16, 64, 256, 1024} × 20 000.
    /// Deterministic artefacts still gate exactly; statistical columns
    /// widen to the fast-profile sigma band (`FAST_SIGMA_REL`).
    pub fast: bool,
    /// Directory holding the committed golden CSVs.
    pub golden_dir: PathBuf,
    /// Randomized arrays for the differential delay oracles.
    pub oracle_cases: usize,
    /// Worker-thread configuration for the experiment stages.
    pub exec: ExecConfig,
    /// Test hook: override the profile's Monte-Carlo trial count.
    /// Statistical golden comparisons are only calibrated for the
    /// profile defaults, so tests using this should assert report
    /// *determinism*, not passing verdicts.
    pub trials: Option<usize>,
}

impl CheckOptions {
    /// Defaults: goldens from `results/`, 128 oracle cases, all cores.
    pub fn new(fast: bool) -> Self {
        Self {
            fast,
            golden_dir: PathBuf::from("results"),
            oracle_cases: 128,
            exec: ExecConfig::default(),
            trials: None,
        }
    }
}

/// The experiment context a `check` profile runs under.
///
/// The full profile is exactly [`ExperimentContext::paper`] — the
/// matrix that regenerated the committed goldens byte-for-byte. The
/// fast profile keeps the paper's seed and corner searches but drops
/// the two largest array heights and reduces trials to 5 000; heights
/// 16 and 64 are retained because every n-pinned artefact (Fig. 5,
/// Table IV, sensitivity, LE2, scaling) measures at n = 64.
///
/// # Errors
///
/// Propagates context-construction failures.
pub fn check_context(opts: &CheckOptions) -> Result<ExperimentContext, CoreError> {
    let mut ctx = ExperimentContext::paper()?;
    ctx.exec = opts.exec;
    ctx.mc.exec = opts.exec;
    if opts.fast {
        ctx.sizes = vec![16, 64];
        ctx.mc.trials = 5_000;
    }
    if let Some(trials) = opts.trials {
        ctx.mc.trials = trials;
    }
    Ok(ctx)
}

/// The golden-gate contracts, one per committed CSV.
///
/// `fast` widens Monte-Carlo sigma columns and lets the fresh rows be
/// a subset of the golden design of experiments for the
/// height-swept artefacts; everything else stays exact. Table IV's
/// bootstrap-CI column is skipped under `fast` (its width is a
/// function of the trial count), and `extension-ler` /
/// `ablation-sadp-vss` stay exact in both profiles because their
/// runners clamp trials at or below the fast profile's 5 000.
pub fn table_specs(fast: bool) -> Vec<TableSpec> {
    let all_rows = !fast;
    let strict = Policy::strict;
    let mc = |rel: f64| {
        if fast {
            Policy::statistical(rel)
        } else {
            Policy::strict()
        }
    };
    vec![
        TableSpec::new(
            "table1",
            &["option"],
            &[
                ("worst corner", Policy::Text),
                ("C_bl impact", strict()),
                ("R_bl impact", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "fig4",
            &["array"],
            &[
                ("td nominal", strict()),
                ("tdp LELELE", strict()),
                ("tdp SADP", strict()),
                ("tdp EUV", strict()),
            ],
            all_rows,
        ),
        TableSpec::new(
            "table2",
            &["array"],
            &[
                ("simulation", strict()),
                ("formula", strict()),
                ("ratio sim/formula", strict()),
            ],
            all_rows,
        ),
        TableSpec::new(
            "table3",
            &["method", "array"],
            &[("LELELE", strict()), ("SADP", strict()), ("EUV", strict())],
            all_rows,
        ),
        TableSpec::new(
            "table4",
            &["patterning option"],
            &[
                ("std deviation (% tdp)", mc(FAST_SIGMA_REL)),
                (
                    "95% bootstrap CI",
                    if fast {
                        Policy::Ignore
                    } else {
                        Policy::strict()
                    },
                ),
            ],
            true,
        ),
        TableSpec::new(
            "ablation-delay",
            &["array"],
            &[
                ("simulation", strict()),
                ("lumped formula", strict()),
                ("elmore", strict()),
            ],
            all_rows,
        ),
        TableSpec::new(
            "ablation-bl-width",
            &["bl width"],
            &[
                ("LELELE dC", strict()),
                ("SADP dC", strict()),
                ("EUV dC", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "ablation-sadp-vss",
            &["metric"],
            &[("value", strict())],
            true,
        ),
        TableSpec::new(
            "extension-le2",
            &["option"],
            &[
                ("worst dC_bl", strict()),
                ("worst dR_bl", strict()),
                ("tdp sigma (%)", mc(FAST_SIGMA_REL)),
            ],
            true,
        ),
        TableSpec::new(
            "extension-ler",
            &["option"],
            &[
                ("tdp sigma, MP only", strict()),
                ("tdp sigma, MP+LER", strict()),
                ("mean R_var, LER only", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "extension-sensitivity",
            &["option", "parameter"],
            &[
                ("slope_pp_per_nm", strict()),
                ("curvature_pp_per_nm2", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "extension-scaling",
            &["node", "option"],
            &[
                ("worst dC_bl", strict()),
                ("tdp sigma (%)", mc(FAST_SIGMA_REL)),
            ],
            true,
        ),
        // The yield experiment fixes its own seed and budgets (see
        // `YieldSettings`), so the artefact is profile-independent and
        // gates exactly in BOTH profiles — including the fast one.
        TableSpec::new(
            "yield_6sigma",
            &["option", "estimator", "margin"],
            &[
                ("p_fail", strict()),
                ("ci_lo", strict()),
                ("ci_hi", strict()),
                ("rel_hw", Policy::Text),
                ("trials", strict()),
                ("converged", Policy::Text),
                ("mean_w", strict()),
                ("gauss_fit", strict()),
            ],
            true,
        ),
        // The write-family artefacts fix their own sizes, trials, and
        // seeds (see `WriteStudySettings`), so like `yield_6sigma` they
        // are profile-independent and gate exactly in BOTH profiles.
        TableSpec::new(
            "write_time",
            &["array"],
            &[
                ("t_write sim", strict()),
                ("t_write formula", strict()),
                ("twp LELELE", strict()),
                ("twp SADP", strict()),
                ("twp EUV", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "write_margin",
            &["option"],
            &[
                ("sigma (% twp)", strict()),
                ("mean", strict()),
                ("min", strict()),
                ("max", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "sense_margin",
            &["option"],
            &[
                ("failure fraction", strict()),
                ("mean margin", strict()),
                ("sigma margin", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "wl_delay",
            &["option"],
            &[
                ("near (worst)", strict()),
                ("far (worst)", strict()),
                ("far penalty", strict()),
            ],
            true,
        ),
        TableSpec::new(
            "write_yield",
            &["option", "margin"],
            &[
                ("write p_fail", strict()),
                ("ci_lo", strict()),
                ("ci_hi", strict()),
                ("trials", strict()),
                ("converged", Policy::Text),
                ("read p_fail", strict()),
            ],
            true,
        ),
    ]
}

/// Compares one freshly rendered CSV against its committed golden.
fn golden_gate_item(spec: &TableSpec, golden_dir: &std::path::Path, fresh_csv: &str) -> CheckItem {
    let name = format!("golden.{}", spec.id);
    let path = golden_dir.join(format!("{}.csv", spec.id));
    let golden_text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return CheckItem::fail(&name, format!("cannot read golden {}: {e}", path.display()))
        }
    };
    let golden = match CsvTable::parse(&golden_text) {
        Ok(t) => t,
        Err(e) => return CheckItem::fail(&name, format!("golden {}: {e}", path.display())),
    };
    let fresh = match CsvTable::parse(fresh_csv) {
        Ok(t) => t,
        Err(e) => return CheckItem::fail(&name, format!("fresh {} artefact: {e}", spec.id)),
    };
    let violations = compare_tables(spec, &golden, &fresh);
    CheckItem::from_violations(
        &name,
        &format!(
            "{} fresh rows match {} within tolerance",
            fresh.rows.len(),
            path.display()
        ),
        &violations,
    )
}

/// Runs the full verdict pass and collects every named check.
///
/// Hard failures of the experiment runners themselves (the matrix
/// cannot even be regenerated) propagate as errors; everything
/// downstream — golden drift, broken shape claims, oracle
/// disagreement — lands as a failed [`CheckItem`] in the report.
///
/// # Errors
///
/// Propagates experiment-runner failures.
pub fn run_check(opts: &CheckOptions) -> Result<CheckReport, CoreError> {
    let study = Study::new(check_context(opts)?);
    run_check_in(opts, &study)
}

/// Runs the verdict pass against an existing [`Study`] session.
///
/// The session's memoized cache makes the reuse explicit: the Table I
/// corner search and Fig. 4 simulations are computed once and every
/// downstream artefact (Tables II/III, ablation A1) fetches them as
/// cache hits — visible in the session's `timings()` counters and, with
/// a trace collector installed, as zero-duration `study_node` spans.
///
/// # Errors
///
/// Propagates experiment-runner failures.
pub fn run_check_in(opts: &CheckOptions, study: &Study) -> Result<CheckReport, CoreError> {
    let ctx = study.context().clone();
    let mut report = CheckReport::new();

    // Regenerate the matrix once; the artifact graph shares the
    // expensive stages through the content-keyed cache.
    let t1 = study.get::<Table1>()?;
    let f4 = study.get::<Fig4>()?;
    let t2 = study.get::<Table2>()?;
    let t3 = study.get::<Table3>()?;
    let f5 = study.get::<Fig5>()?;
    let t4 = study.get::<Table4>()?;
    let a1 = study.get::<AblationDelayModels>()?;
    let a2 = study.get::<AblationBlWidth>()?;
    let a3 = study.get::<AblationSadpAnticorrelation>()?;
    let e1 = study.get::<ExtensionLe2>()?;
    let e2 = study.get::<ExtensionLer>()?;
    let e3 = study.get::<ExtensionScaling>()?;
    let sensitivity = study.get::<SensitivityMatrix>()?;
    let yt = study.get::<YieldTable>()?;
    let wt = study.get::<WriteTime>()?;
    let wm = study.get::<WriteMargin>()?;
    let sm = study.get::<SenseMargin>()?;
    let wl = study.get::<WlDelay>()?;
    let wy = study.get::<WriteYieldTable>()?;

    // Golden gate: fresh CSV vs committed artefact, value-wise.
    let fresh: Vec<(&str, String)> = vec![
        ("table1", t1.report().to_csv()),
        ("fig4", f4.report().to_csv()),
        ("table2", t2.report().to_csv()),
        ("table3", t3.report().to_csv()),
        ("table4", t4.report().to_csv()),
        ("ablation-delay", a1.report().to_csv()),
        ("ablation-bl-width", a2.report().to_csv()),
        ("ablation-sadp-vss", a3.report().to_csv()),
        ("extension-le2", e1.report().to_csv()),
        ("extension-ler", e2.report().to_csv()),
        ("extension-sensitivity", sensitivity.to_csv()),
        ("extension-scaling", e3.report().to_csv()),
        ("yield_6sigma", yt.report().to_csv()),
        ("write_time", wt.report().to_csv()),
        ("write_margin", wm.report().to_csv()),
        ("sense_margin", sm.report().to_csv()),
        ("wl_delay", wl.report().to_csv()),
        ("write_yield", wy.report().to_csv()),
    ];
    for spec in table_specs(opts.fast) {
        let csv = fresh
            .iter()
            .find(|(id, _)| *id == spec.id)
            .map(|(_, csv)| csv.as_str())
            .expect("every spec id has a fresh artefact");
        report.push(golden_gate_item(&spec, &opts.golden_dir, csv));
    }

    // Shape invariants on the structured outputs.
    report.extend(invariants::table1_invariants(&t1));
    report.extend(invariants::fig4_invariants(&f4));
    report.extend(invariants::table2_invariants(&t2));
    report.extend(invariants::table3_invariants(&t3, TABLE3_MAX_GAP_PP));
    report.extend(invariants::fig5_invariants(&f5));
    report.extend(invariants::table4_invariants(
        &t4,
        ctx.le3_overlay_sweep_nm.len(),
    ));
    report.extend(invariants::sadp_anticorrelation_invariants(&a3));
    report.extend(invariants::le2_invariants(&e1));
    report.extend(invariants::ler_invariants(&e2));
    report.extend(invariants::scaling_invariants(&e3));
    report.extend(invariants::yield_invariants(&yt));
    report.extend(invariants::write_time_invariants(&wt));
    report.extend(invariants::write_margin_invariants(&wm));
    report.extend(invariants::sense_margin_invariants(&sm));
    report.extend(invariants::wl_delay_invariants(&wl));
    report.extend(invariants::write_yield_invariants(&wy));

    // Differential delay oracles on randomized arrays.
    let oracle_cfg = OracleConfig {
        cases: opts.oracle_cases,
        ..OracleConfig::default()
    };
    match run_delay_oracles(&ctx.tech, &ctx.cell, &ctx.read_config, &oracle_cfg) {
        Ok(oracle_report) => report.extend(oracle_report.items()),
        Err(e) => report.push(CheckItem::fail("oracle.run", e.to_string())),
    }

    // The write-side mirror: formula vs scalar vs batched write
    // transients, including the batch bit-identity contract.
    let write_cfg = WriteOracleConfig {
        cases: (opts.oracle_cases * 3 / 4).max(1),
        ..WriteOracleConfig::default()
    };
    match run_write_oracles(&ctx.tech, &ctx.cell, &WriteConfig::default(), &write_cfg) {
        Ok(write_report) => report.extend(write_report.items()),
        Err(e) => report.push(CheckItem::fail("write_oracle.run", e.to_string())),
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_id_is_a_known_experiment() {
        for fast in [false, true] {
            for spec in table_specs(fast) {
                assert!(
                    crate::EXPERIMENT_IDS.contains(&spec.id.as_str()),
                    "spec id `{}` is not an experiment id",
                    spec.id
                );
                assert!(!spec.key.is_empty());
                assert!(!spec.columns.is_empty());
            }
        }
    }

    #[test]
    fn fast_profile_keeps_the_pinned_height() {
        let opts = CheckOptions::new(true);
        let ctx = check_context(&opts).unwrap();
        assert_eq!(ctx.sizes, vec![16, 64]);
        assert_eq!(ctx.mc.trials, 5_000);
        assert_eq!(ctx.mc.seed, ExperimentContext::paper().unwrap().mc.seed);
    }

    #[test]
    fn full_profile_is_the_paper_matrix() {
        let opts = CheckOptions::new(false);
        let ctx = check_context(&opts).unwrap();
        let paper = ExperimentContext::paper().unwrap();
        assert_eq!(ctx.sizes, paper.sizes);
        assert_eq!(ctx.mc.trials, paper.mc.trials);
    }

    #[test]
    fn fast_specs_widen_only_mc_columns() {
        let fast = table_specs(true);
        let full = table_specs(false);
        assert_eq!(fast.len(), full.len());
        // Fast must never be stricter than full, and Table I stays
        // exact in both.
        let t1_fast = fast.iter().find(|s| s.id == "table1").unwrap();
        let t1_full = full.iter().find(|s| s.id == "table1").unwrap();
        assert_eq!(t1_fast, t1_full);
        let t4_fast = fast.iter().find(|s| s.id == "table4").unwrap();
        assert!(t4_fast
            .columns
            .iter()
            .any(|c| matches!(c.policy, Policy::Numeric { rel, .. } if rel >= 0.01)));
    }

    #[test]
    fn missing_golden_fails_with_named_item() {
        let spec = TableSpec::new("table1", &["option"], &[("x", Policy::Text)], true);
        let item = golden_gate_item(&spec, std::path::Path::new("/nonexistent"), "a,b\n1,2\n");
        assert!(!item.passed);
        assert_eq!(item.name, "golden.table1");
        assert!(item.detail.contains("cannot read golden"));
    }
}
