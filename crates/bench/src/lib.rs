//! Reproduction harness for every table and figure of the paper.
//!
//! The [`run`] entry point maps experiment ids to the runners in
//! `mpvar-core::experiments` and renders text + CSV artefacts. The
//! `repro` binary and the Criterion benches are thin wrappers over this
//! module, so "what regenerates Table III" has exactly one answer.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;

use std::fmt::Write as _;

use mpvar_core::experiments::{
    ablation_bl_width, ablation_delay_models, ablation_sadp_anticorrelation, extension_le2,
    extension_ler, extension_scaling, fig4, fig5, table1, table2, table3, table4,
    ExperimentContext,
};
use mpvar_core::sensitivity::sensitivity_profile;
use mpvar_core::{tdp_distribution_with, CoreError, ExecConfig, McConfig, NominalWindow};
use mpvar_tech::PatterningOption;

/// Identifiers of every reproducible artefact.
pub const EXPERIMENT_IDS: [&str; 13] = [
    "table1",
    "fig4",
    "table2",
    "table3",
    "fig5",
    "table4",
    "ablation-delay",
    "ablation-bl-width",
    "ablation-sadp-vss",
    "extension-le2",
    "extension-ler",
    "extension-sensitivity",
    "extension-scaling",
];

/// One rendered artefact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Experiment id (e.g. `table1`).
    pub id: String,
    /// Human-readable report text.
    pub text: String,
    /// CSV rendering where tabular (empty for figure-style artefacts).
    pub csv: String,
}

/// Runs one experiment (or `"all"`) and returns the artefacts.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for an unknown id;
/// * propagated experiment failures.
pub fn run(id: &str, ctx: &ExperimentContext) -> Result<Vec<Artifact>, CoreError> {
    if id == "all" {
        return run_all(ctx);
    }
    if !EXPERIMENT_IDS.contains(&id) {
        return Err(CoreError::InvalidParameter {
            name: "experiment id",
            value: f64::NAN,
            constraint: "must be one of the known experiment ids (or `all`)",
        });
    }
    // Worst-case-derived artefacts share the Table I search and the
    // Fig. 4 simulations; compute lazily.
    match id {
        "table1" => {
            let t1 = table1(ctx)?;
            let table = t1.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: table.render(),
                csv: table.to_csv(),
            }])
        }
        "fig4" | "table2" | "table3" | "ablation-delay" => {
            let t1 = table1(ctx)?;
            let f4 = fig4(ctx, &t1)?;
            let (text, csv) = match id {
                "fig4" => {
                    let t = f4.report();
                    (t.render(), t.to_csv())
                }
                "table2" => {
                    let t = table2(ctx, &f4)?.report();
                    (t.render(), t.to_csv())
                }
                "table3" => {
                    let t = table3(ctx, &t1, &f4)?.report();
                    (t.render(), t.to_csv())
                }
                _ => {
                    let t = ablation_delay_models(ctx, &f4)?.report();
                    (t.render(), t.to_csv())
                }
            };
            Ok(vec![Artifact {
                id: id.to_string(),
                text,
                csv,
            }])
        }
        "fig5" => {
            let f5 = fig5(ctx)?;
            let mut csv = String::from("option,tdp_percent\n");
            for d in &f5.distributions {
                for &s in d.samples_percent() {
                    let _ = writeln!(csv, "{},{s}", d.option());
                }
            }
            Ok(vec![Artifact {
                id: id.to_string(),
                text: f5.report(),
                csv,
            }])
        }
        "table4" => {
            let t = table4(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        "ablation-bl-width" => {
            let t = ablation_bl_width(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        "ablation-sadp-vss" => {
            let t = ablation_sadp_anticorrelation(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        "extension-le2" => {
            let t = extension_le2(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        "extension-ler" => {
            let t = extension_ler(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        "extension-sensitivity" => Ok(vec![sensitivity_artifact(ctx)?]),
        "extension-scaling" => {
            let t = extension_scaling(ctx)?.report();
            Ok(vec![Artifact {
                id: id.to_string(),
                text: t.render(),
                csv: t.to_csv(),
            }])
        }
        _ => unreachable!("id validated above"),
    }
}

/// Runs every experiment, sharing the expensive common stages.
///
/// # Errors
///
/// Propagates the first experiment failure.
pub fn run_all(ctx: &ExperimentContext) -> Result<Vec<Artifact>, CoreError> {
    let mut out = Vec::new();
    let t1 = table1(ctx)?;
    let t1_report = t1.report();
    out.push(Artifact {
        id: "table1".into(),
        text: t1_report.render(),
        csv: t1_report.to_csv(),
    });
    let f4 = fig4(ctx, &t1)?;
    let f4_report = f4.report();
    out.push(Artifact {
        id: "fig4".into(),
        text: f4_report.render(),
        csv: f4_report.to_csv(),
    });
    let t2 = table2(ctx, &f4)?.report();
    out.push(Artifact {
        id: "table2".into(),
        text: t2.render(),
        csv: t2.to_csv(),
    });
    let t3 = table3(ctx, &t1, &f4)?.report();
    out.push(Artifact {
        id: "table3".into(),
        text: t3.render(),
        csv: t3.to_csv(),
    });
    let f5 = fig5(ctx)?;
    let mut f5_csv = String::from("option,tdp_percent\n");
    for d in &f5.distributions {
        for &s in d.samples_percent() {
            let _ = writeln!(f5_csv, "{},{s}", d.option());
        }
    }
    out.push(Artifact {
        id: "fig5".into(),
        text: f5.report(),
        csv: f5_csv,
    });
    let t4 = table4(ctx)?.report();
    out.push(Artifact {
        id: "table4".into(),
        text: t4.render(),
        csv: t4.to_csv(),
    });
    let a1 = ablation_delay_models(ctx, &f4)?.report();
    out.push(Artifact {
        id: "ablation-delay".into(),
        text: a1.render(),
        csv: a1.to_csv(),
    });
    let a2 = ablation_bl_width(ctx)?.report();
    out.push(Artifact {
        id: "ablation-bl-width".into(),
        text: a2.render(),
        csv: a2.to_csv(),
    });
    let a3 = ablation_sadp_anticorrelation(ctx)?.report();
    out.push(Artifact {
        id: "ablation-sadp-vss".into(),
        text: a3.render(),
        csv: a3.to_csv(),
    });
    let e1 = extension_le2(ctx)?.report();
    out.push(Artifact {
        id: "extension-le2".into(),
        text: e1.render(),
        csv: e1.to_csv(),
    });
    let e2 = extension_ler(ctx)?.report();
    out.push(Artifact {
        id: "extension-ler".into(),
        text: e2.render(),
        csv: e2.to_csv(),
    });
    out.push(sensitivity_artifact(ctx)?);
    let e3 = extension_scaling(ctx)?.report();
    out.push(Artifact {
        id: "extension-scaling".into(),
        text: e3.render(),
        csv: e3.to_csv(),
    });
    Ok(out)
}

/// Measures Monte-Carlo trial throughput at 1, 2, and all-cores worker
/// threads and renders the `BENCH_parallel.json` snapshot the `repro`
/// binary emits, so the perf trajectory is tracked across PRs.
///
/// Each thread count runs the same seed against one cached nominal
/// window; the best of three repetitions is reported (wall-clock
/// minimum is the standard noise-robust choice for throughput
/// tracking). Sample vectors are bit-identical across the sweep, so
/// the numbers measure scheduling only.
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn parallel_bench_snapshot(ctx: &ExperimentContext) -> Result<String, CoreError> {
    use std::fmt::Write as _;
    use std::time::Instant;

    let option = PatterningOption::Le3;
    let budget = ctx.budget(option)?;
    let window = NominalWindow::build(&ctx.tech, &ctx.cell, option)?;
    let trials = ctx.mc.trials.clamp(500, 4_000);

    let max_threads = ExecConfig::default().effective_threads();
    let mut counts = vec![1usize, 2, max_threads];
    counts.sort_unstable();
    counts.dedup();

    // Warm-up so allocator/cache state doesn't bias the first entry.
    let warm = McConfig {
        trials,
        seed: ctx.mc.seed,
        exec: ExecConfig::SERIAL,
    };
    let _ = tdp_distribution_with(&window, &budget, 64, &warm)?;

    let mut entries = Vec::with_capacity(counts.len());
    for &threads in &counts {
        let mc = McConfig {
            trials,
            seed: ctx.mc.seed,
            exec: ExecConfig::with_threads(threads),
        };
        let mut best_s = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let d = tdp_distribution_with(&window, &budget, 64, &mc)?;
            let dt = t0.elapsed().as_secs_f64();
            debug_assert_eq!(d.samples_percent().len(), trials);
            best_s = best_s.min(dt);
        }
        entries.push((threads, best_s, trials as f64 / best_s));
    }

    let t1 = entries
        .iter()
        .find(|&&(t, _, _)| t == 1)
        .map(|&(_, s, _)| s)
        .unwrap_or(f64::NAN);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel_mc\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"tdp_distribution LELELE 8nm OL, n = 64\","
    );
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"seed\": {},", ctx.mc.seed);
    let _ = writeln!(json, "  \"available_parallelism\": {max_threads},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, &(threads, seconds, tps)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {threads}, \"seconds\": {seconds:.6}, \
             \"trials_per_sec\": {tps:.1}, \"speedup\": {:.3} }}{comma}",
            t1 / seconds
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    json.push('\n');
    Ok(json)
}

/// Builds the combined per-option sensitivity artefact.
fn sensitivity_artifact(ctx: &ExperimentContext) -> Result<Artifact, CoreError> {
    let n = if ctx.sizes.contains(&64) {
        64
    } else {
        *ctx.sizes.last().expect("context has sizes")
    };
    let mut text = String::new();
    let mut csv = String::from("option,parameter,slope_pp_per_nm,curvature_pp_per_nm2\n");
    for option in PatterningOption::ALL_WITH_EXTENSIONS {
        let profile = sensitivity_profile(&ctx.tech, &ctx.cell, option, n, 0.25)?;
        text.push_str(&profile.report().render());
        text.push('\n');
        for p in &profile.parameters {
            let _ = writeln!(
                csv,
                "{},{},{},{}",
                option, p.name, p.slope_pp_per_nm, p.curvature_pp_per_nm2
            );
        }
    }
    Ok(Artifact {
        id: "extension-sensitivity".into(),
        text,
        csv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_rejected() {
        let ctx = ExperimentContext::quick().unwrap();
        assert!(run("tableX", &ctx).is_err());
    }

    #[test]
    fn table1_artifact() {
        let ctx = ExperimentContext::quick().unwrap();
        let arts = run("table1", &ctx).unwrap();
        assert_eq!(arts.len(), 1);
        assert!(arts[0].text.contains("LELELE"));
        assert!(arts[0].csv.starts_with("option,"));
    }

    #[test]
    fn cheap_experiments_run_quick() {
        let mut ctx = ExperimentContext::quick().unwrap();
        ctx.mc.trials = 300;
        for id in ["table4", "ablation-bl-width", "ablation-sadp-vss"] {
            let arts = run(id, &ctx).unwrap();
            assert_eq!(arts[0].id, id);
            assert!(!arts[0].text.is_empty());
        }
    }
}
