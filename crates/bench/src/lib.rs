//! Reproduction harness for every table and figure of the paper.
//!
//! Since the `Study` redesign, the artifact-graph engine in
//! [`mpvar_study`] is the single entry point for evaluating
//! experiments: the `repro` binary, the `check` verdict pass, and the
//! Criterion benches all drive a [`Study`] session, which memoizes
//! shared prework (the Table I corner search, the Fig. 4 simulations)
//! in a content-keyed cache and reports per-node timings. The free
//! functions here ([`run`], [`run_all`]) remain as thin deprecated
//! shims so older callers keep compiling.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;

use mpvar_core::experiments::ExperimentContext;
use mpvar_core::{
    tdp_distribution_spice, tdp_distribution_with, CoreError, ExecConfig, McConfig, NominalWindow,
    SpiceMcOptions,
};
use mpvar_spice::{MosfetModel, Netlist, NodeId, SolverKernel, Transient, Waveform};
use mpvar_study::Study;
use mpvar_tech::PatterningOption;

pub use mpvar_study::Artifact;

/// Fixed trapezoidal step count of the solver-kernel workload: the
/// `h = 1024` fixed-step-equivalent transient the compiled-kernel
/// speedup is measured on.
pub const SOLVER_BENCH_STEPS: usize = 1024;

/// Simulated window of the solver-kernel workload, seconds.
pub const SOLVER_BENCH_WINDOW_S: f64 = 200e-12;

/// Builds the solver-kernel benchmark circuit: a 16-segment RC bit
/// line with the 6T read discharge path (pass-gate + pull-down NMOS)
/// at the far end. Returns the netlist, the UIC node/voltage pairs,
/// and the near-end probe node. The FETs make every timestep a Newton
/// iteration, so the workload exercises assembly + factorization —
/// exactly what the compiled kernel accelerates.
fn solver_bench_circuit() -> (Netlist, Vec<(NodeId, f64)>, NodeId) {
    let tech = mpvar_tech::preset::n10();
    let vdd_v = 0.7;
    let segments = 16usize;
    let mut net = Netlist::new();
    let mut uic = Vec::new();

    let near = net.node("bl0");
    uic.push((near, vdd_v));
    let mut prev = near;
    for k in 1..=segments {
        let node = net.node(&format!("bl{k}"));
        net.add_resistor(&format!("Rbl{k}"), prev, node, 150.0)
            .expect("valid R");
        net.add_capacitor(&format!("Cbl{k}"), node, Netlist::GROUND, 2e-15)
            .expect("valid C");
        uic.push((node, vdd_v));
        prev = node;
    }
    let far = prev;

    let wl = net.node("wl");
    let vdd = net.node("vdd");
    let q = net.node("q");
    net.add_vsource(
        "VWL",
        wl,
        Netlist::GROUND,
        Waveform::pulse(0.0, vdd_v, 20e-12, 10e-12, 10e-12, 1.0, 0.0).expect("pulse"),
    )
    .expect("V");
    net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(vdd_v))
        .expect("V");
    net.add_mosfet("Mpass", far, wl, q, MosfetModel::new(*tech.nmos()))
        .expect("M");
    net.add_mosfet(
        "Mpd",
        q,
        vdd,
        Netlist::GROUND,
        MosfetModel::new(*tech.nmos()),
    )
    .expect("M");
    net.add_capacitor("Cq", q, Netlist::GROUND, 0.2e-15)
        .expect("C");
    uic.push((vdd, vdd_v));
    uic.push((q, 0.0));
    (net, uic, near)
}

/// Runs the `h = 1024` fixed-step solver workload once with `kernel`,
/// returning the final near-end bit-line voltage (consume it so the
/// run cannot be optimized away).
pub fn solver_workload_once(kernel: SolverKernel) -> f64 {
    let (net, uic, probe) = solver_bench_circuit();
    let mut tran = Transient::new(&net).expect("workload builds");
    tran.set_kernel(kernel);
    for &(node, v) in &uic {
        tran.set_initial_voltage(node, v);
    }
    let dt = SOLVER_BENCH_WINDOW_S / SOLVER_BENCH_STEPS as f64;
    let result = tran.run(dt, SOLVER_BENCH_WINDOW_S).expect("workload runs");
    result
        .sample(probe, SOLVER_BENCH_WINDOW_S)
        .expect("in window")
}

/// One measured configuration of the SPICE-backed Monte-Carlo
/// workload: scalar (per-trial compiled kernel) versus the batched SoA
/// trial solver on the same seed.
#[derive(Debug, Clone, Copy)]
pub struct SpiceBatchBench {
    /// Monte-Carlo trials per measured run.
    pub trials: usize,
    /// Array height (cells on the bit line) of the read deck.
    pub n_cells: usize,
    /// Lanes per batch in the batched configuration.
    pub batch_width: usize,
    /// Best-of-three wall-clock of the scalar path, seconds.
    pub scalar_seconds: f64,
    /// Best-of-three wall-clock of the batched path, seconds.
    pub batched_seconds: f64,
}

impl SpiceBatchBench {
    /// Scalar-path throughput, trials per second.
    #[must_use]
    pub fn scalar_tps(&self) -> f64 {
        self.trials as f64 / self.scalar_seconds
    }

    /// Batched-path throughput, trials per second.
    #[must_use]
    pub fn batched_tps(&self) -> f64 {
        self.trials as f64 / self.batched_seconds
    }

    /// Batched-over-scalar speedup (wall-clock ratio).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.scalar_seconds / self.batched_seconds
    }
}

/// Measures the batched SoA trial solver against the per-trial scalar
/// path on the SPICE-backed Fig. 5 Monte-Carlo workload (full 6T read
/// transients at the paper's 64-cell array height regardless of
/// profile, single thread so the number isolates the batching win
/// from scheduling and stays comparable across quick/paper runs).
///
/// Both paths run the same seed; the sample vectors are asserted
/// bit-identical before timing, so the speedup compares genuinely
/// equivalent work. Best of three repetitions per path.
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn spice_batch_bench(
    ctx: &ExperimentContext,
    trials: usize,
) -> Result<SpiceBatchBench, CoreError> {
    use std::time::Instant;

    let option = PatterningOption::Le3;
    let budget = ctx.budget(option)?;
    // Pinned to the paper's Fig. 5 array height so the recorded metric
    // is the paper-faithful workload in every profile.
    let n_cells = 64;
    let batch_width = SpiceMcOptions::default().batch_width;
    let mc = McConfig::builder()
        .trials(trials)
        .seed(ctx.mc.seed)
        .exec(ExecConfig::SERIAL)
        .build();
    let run = |width: usize| {
        tdp_distribution_spice(
            &ctx.tech,
            &ctx.cell,
            option,
            &budget,
            n_cells,
            &mc,
            &SpiceMcOptions {
                batch_width: width,
                ..SpiceMcOptions::default()
            },
        )
    };

    // Warm-up both paths and prove bit-identity before the clock runs.
    let scalar_samples = run(0)?;
    let batched_samples = run(batch_width)?;
    assert_eq!(
        scalar_samples
            .samples_percent()
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        batched_samples
            .samples_percent()
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        "batched SPICE MC diverged from scalar"
    );

    let mut scalar_seconds = f64::INFINITY;
    let mut batched_seconds = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let d = run(0)?;
        scalar_seconds = scalar_seconds.min(t0.elapsed().as_secs_f64());
        debug_assert_eq!(d.samples_percent().len(), trials);
        let t0 = Instant::now();
        let d = run(batch_width)?;
        batched_seconds = batched_seconds.min(t0.elapsed().as_secs_f64());
        debug_assert_eq!(d.samples_percent().len(), trials);
    }
    Ok(SpiceBatchBench {
        trials,
        n_cells,
        batch_width,
        scalar_seconds,
        batched_seconds,
    })
}

/// Deterministic metrics of the adaptive importance-sampling yield
/// engine on the analytic planted problem — the snapshot's `yield`
/// section. No wall clock involved: trial counts and estimates are a
/// pure function of the seed, so the recorded speedup is exactly
/// reproducible.
#[derive(Debug, Clone, Copy)]
pub struct YieldBench {
    /// Planted true failure probability.
    pub p_true: f64,
    /// Trials the adaptive controller consumed to converge.
    pub trials: u64,
    /// The converged estimate.
    pub p_fail: f64,
    /// Relative CI half-width at stop.
    pub rel_half_width: f64,
    /// Whether the stopping rule (not the budget) ended the run.
    pub converged: bool,
    /// Whether the 95% CI covers the planted truth.
    pub ci_covers_truth: bool,
    /// Brute-force trials needed for the same CI half-width.
    pub brute_equivalent_trials: f64,
}

impl YieldBench {
    /// Brute-force-equivalent speedup (trial-count ratio). The
    /// acceptance floor at `p_true = 1e-6` is 50x.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.brute_equivalent_trials / self.trials as f64
    }
}

/// Runs the scaled-sigma controller on the planted `P_fail = 1e-6`
/// problem (the same configuration the `mpvar-yield` acceptance test
/// pins: one dimension, scale 3, seed 42, target relative half-width
/// 0.3) and derives its brute-force-equivalent speedup.
///
/// # Errors
///
/// Propagates yield-engine failures.
pub fn yield_bench() -> Result<YieldBench, CoreError> {
    use mpvar_yield::{
        brute_force_trials_for, run_yield, PlantedThreshold, Proposal, YieldConfig, ZDomain,
    };

    let p_true = 1e-6;
    let target_rel_half_width = 0.3;
    let problem = PlantedThreshold::for_failure_probability(1, p_true)
        .map_err(mpvar_yield::YieldError::from)?;
    let domain = ZDomain::unbounded(1).map_err(mpvar_yield::YieldError::from)?;
    let cfg = YieldConfig::new(domain, Proposal::ScaledSigma { scale: 3.0 })
        .seed(42)
        .target_rel_half_width(target_rel_half_width);
    let run = run_yield(&problem, &cfg)?;
    let est = run.estimate(0.95)?;
    // Denominator: brute trials for the *target* precision — the same
    // basis the engine's own acceptance test pins the 50x floor on.
    let brute = brute_force_trials_for(p_true, target_rel_half_width, 0.95)
        .map_err(mpvar_yield::YieldError::from)?;
    Ok(YieldBench {
        p_true,
        trials: run.consumed(),
        p_fail: est.p_fail,
        rel_half_width: est.rel_half_width(),
        converged: run.converged(),
        ci_covers_truth: est.contains(p_true),
        brute_equivalent_trials: brute,
    })
}

/// Bit-identity probe of the yield engine across worker counts: the
/// planted problem run at 1, 4, and 8 threads must produce identical
/// rounds and estimates. Returns `true` when every run agrees with the
/// single-threaded reference — the determinism half of the CI yield
/// smoke.
///
/// # Errors
///
/// Propagates yield-engine failures.
pub fn yield_threads_identical() -> Result<bool, CoreError> {
    use mpvar_yield::{run_yield, PlantedThreshold, Proposal, YieldConfig, ZDomain};

    let problem = PlantedThreshold::for_failure_probability(3, 1e-5)
        .map_err(mpvar_yield::YieldError::from)?;
    let domain = ZDomain::unbounded(3).map_err(mpvar_yield::YieldError::from)?;
    let cfg = YieldConfig::new(domain, Proposal::ScaledSigma { scale: 3.0 }).seed(42);
    let mut runs = Vec::new();
    for threads in [1usize, 4, 8] {
        runs.push(run_yield(&problem, &cfg.clone().threads(threads))?);
    }
    Ok(runs.windows(2).all(|w| w[0] == w[1]))
}

/// Identifiers of every reproducible artefact, in canonical report
/// order (mirrors [`mpvar_study::ArtifactId::ALL`]).
pub const EXPERIMENT_IDS: [&str; 19] = [
    "table1",
    "fig4",
    "table2",
    "table3",
    "fig5",
    "table4",
    "ablation-delay",
    "ablation-bl-width",
    "ablation-sadp-vss",
    "extension-le2",
    "extension-ler",
    "extension-sensitivity",
    "extension-scaling",
    "yield_6sigma",
    "write_time",
    "write_margin",
    "sense_margin",
    "wl_delay",
    "write_yield",
];

/// Runs one experiment (or `"all"`) and returns the artefacts.
///
/// Thin shim over a fresh [`Study`] session; prefer driving a `Study`
/// directly so repeated requests share the memoized artifact cache.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for an unknown id;
/// * propagated experiment failures.
#[deprecated(note = "drive a `mpvar_study::Study` session instead")]
pub fn run(id: &str, ctx: &ExperimentContext) -> Result<Vec<Artifact>, CoreError> {
    Study::new(ctx.clone()).run_named(id)
}

/// Runs every experiment, sharing the expensive common stages.
///
/// Thin shim over a fresh [`Study`] session; prefer driving a `Study`
/// directly so repeated requests share the memoized artifact cache.
///
/// # Errors
///
/// Propagates the first experiment failure.
#[deprecated(note = "drive a `mpvar_study::Study` session instead")]
pub fn run_all(ctx: &ExperimentContext) -> Result<Vec<Artifact>, CoreError> {
    Study::new(ctx.clone()).run_all()
}

/// Measures Monte-Carlo trial throughput at 1, 2, and all-cores worker
/// threads and renders the `BENCH_parallel.json` snapshot the `repro`
/// binary emits, so the perf trajectory is tracked across PRs.
///
/// Each thread count runs the same seed against one cached nominal
/// window; the best of three repetitions is reported (wall-clock
/// minimum is the standard noise-robust choice for throughput
/// tracking). Sample vectors are bit-identical across the sweep, so
/// the numbers measure scheduling only.
///
/// The snapshot also measures **instrumentation overhead**: the
/// all-cores configuration is repeated with an `mpvar-trace` collector
/// installed (a [`mpvar_trace::NullSink`], so only the span/metric
/// machinery itself is on the clock) and the traced-versus-untraced
/// delta is reported as `overhead_percent` — the number the `<2%`
/// hot-path budget is tracked against.
///
/// A `solver` section records the compiled-LU-kernel speedup over the
/// legacy row-map kernel on the `h = 1024` fixed-step workload (see
/// [`solver_workload_once`]); the compiled kernel's acceptance floor
/// is 3x. A `batch` section records the batched SoA trial solver's
/// speedup over the per-trial scalar path on the SPICE-backed Fig. 5
/// Monte-Carlo workload (see [`spice_batch_bench`]); its acceptance
/// floor is 3x, and CI smoke-tests a 2x floor on the reduced workload.
/// A `yield` section records the adaptive importance-sampling
/// controller's trials-to-converge on the planted `P_fail = 1e-6`
/// problem and its brute-force-equivalent speedup (floor 50x); unlike
/// the wall-clock sections it is exactly reproducible (see
/// [`yield_bench`]).
///
/// An `obs` section profiles one traced repetition of the same
/// Monte-Carlo workload through `mpvar-obs`: span/name counts, the
/// dominant span by self time and its share, and the fraction of the
/// wall clock the critical path explains — a standing smoke test that
/// the trace-analytics pipeline digests a real production trace.
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn parallel_bench_snapshot(ctx: &ExperimentContext) -> Result<String, CoreError> {
    use std::fmt::Write as _;
    use std::sync::Arc;
    use std::time::Instant;

    let option = PatterningOption::Le3;
    let budget = ctx.budget(option)?;
    let window = NominalWindow::build(&ctx.tech, &ctx.cell, option)?;
    let trials = ctx.mc.trials.clamp(500, 4_000);

    // Only benchmark thread counts the host can actually run in
    // parallel: oversubscribing a small machine measures scheduler
    // thrash, not scaling, and has produced misleading sub-1.0
    // "speedups" in past snapshots.
    let max_threads = ExecConfig::default().effective_threads();
    let mut counts = vec![1usize, 2, max_threads];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&t| t <= max_threads);

    // Warm-up so allocator/cache state doesn't bias the first entry.
    let warm = McConfig::builder()
        .trials(trials)
        .seed(ctx.mc.seed)
        .exec(ExecConfig::SERIAL)
        .build();
    let _ = tdp_distribution_with(&window, &budget, 64, &warm)?;

    let mut entries = Vec::with_capacity(counts.len());
    for &threads in &counts {
        let mc = McConfig::builder()
            .trials(trials)
            .seed(ctx.mc.seed)
            .threads(threads)
            .build();
        let mut best_s = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let d = tdp_distribution_with(&window, &budget, 64, &mc)?;
            let dt = t0.elapsed().as_secs_f64();
            debug_assert_eq!(d.samples_percent().len(), trials);
            best_s = best_s.min(dt);
        }
        entries.push((threads, best_s, trials as f64 / best_s));
    }

    // Instrumentation overhead: same workload at all cores with a
    // collector installed (NullSink — only the trace machinery runs).
    let traced_threads = *counts.last().expect("at least one thread count");
    let untraced_s = entries
        .iter()
        .find(|&&(t, _, _)| t == traced_threads)
        .map(|&(_, s, _)| s)
        .unwrap_or(f64::NAN);
    let traced_s = {
        let collector = mpvar_trace::Collector::new(vec![Arc::new(mpvar_trace::NullSink)]);
        let _session = collector.install();
        let mc = McConfig::builder()
            .trials(trials)
            .seed(ctx.mc.seed)
            .threads(traced_threads)
            .build();
        let mut best_s = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let d = tdp_distribution_with(&window, &budget, 64, &mc)?;
            let dt = t0.elapsed().as_secs_f64();
            debug_assert_eq!(d.samples_percent().len(), trials);
            best_s = best_s.min(dt);
        }
        best_s
    };
    let overhead_percent = (traced_s / untraced_s - 1.0) * 100.0;

    // Solver-kernel speedup: legacy row-map LU vs the compiled
    // symbolic-reuse kernel on the same single-thread workload.
    let _ = solver_workload_once(SolverKernel::Compiled); // warm-up
    let mut legacy_s = f64::INFINITY;
    let mut compiled_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let v_legacy = solver_workload_once(SolverKernel::Legacy);
        legacy_s = legacy_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let v_compiled = solver_workload_once(SolverKernel::Compiled);
        compiled_s = compiled_s.min(t0.elapsed().as_secs_f64());
        debug_assert!((v_legacy - v_compiled).abs() < 1e-9);
    }
    let solver_speedup = legacy_s / compiled_s;

    // Batched SoA trial solver: scalar vs batched SPICE-backed MC,
    // single thread, bit-identity asserted inside the bench. SPICE
    // trials are ~100x the cost of formula trials, so the count is
    // fixed at 64 — the same 64-cell, 64-trial deck the smoke target
    // and the docs quote, and a whole number of 16-lane batches so the
    // headline is not diluted by one ragged final batch.
    let batch = spice_batch_bench(ctx, 64)?;

    // Adaptive IS yield engine on the planted 1e-6 problem: trial
    // counts, not wall clock, so the section is exactly reproducible.
    let yb = yield_bench()?;

    // Observability smoke: one traced rep of the same MC workload,
    // captured as `mpvar-trace/v1` JSONL and profiled with mpvar-obs.
    // A trace this process just emitted always validates and always
    // forms a forest, so failures here are bugs, not inputs.
    let obs = {
        let sink = Arc::new(mpvar_trace::JsonlSink::new());
        let collector =
            mpvar_trace::Collector::new(vec![Arc::clone(&sink) as Arc<dyn mpvar_trace::TraceSink>]);
        let session = collector.install();
        let mc = McConfig::builder()
            .trials(trials)
            .seed(ctx.mc.seed)
            .threads(traced_threads)
            .build();
        let d = tdp_distribution_with(&window, &budget, 64, &mc)?;
        debug_assert_eq!(d.samples_percent().len(), trials);
        drop(session);
        let log = mpvar_trace::schema::validate_jsonl(&sink.contents())
            .expect("self-emitted trace validates");
        let profile = mpvar_obs::profile(&log).expect("self-emitted trace profiles");
        let dominant = profile
            .aggregates
            .first()
            .expect("traced run emits spans")
            .clone();
        let coverage_percent = if profile.wall_ns == 0 {
            0.0
        } else {
            profile.critical_path_ns() as f64 / profile.wall_ns as f64 * 100.0
        };
        (
            log.spans.len(),
            profile.aggregates.len(),
            dominant,
            profile.critical_path.len(),
            coverage_percent,
        )
    };

    let t1 = entries
        .iter()
        .find(|&&(t, _, _)| t == 1)
        .map(|&(_, s, _)| s)
        .unwrap_or(f64::NAN);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel_mc\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"tdp_distribution LELELE 8nm OL, n = 64\","
    );
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"seed\": {},", ctx.mc.seed);
    let _ = writeln!(json, "  \"available_parallelism\": {max_threads},");
    let _ = writeln!(
        json,
        "  \"instrumentation\": {{ \"threads\": {traced_threads}, \
         \"untraced_seconds\": {untraced_s:.6}, \"traced_seconds\": {traced_s:.6}, \
         \"overhead_percent\": {overhead_percent:.2} }},"
    );
    let _ = writeln!(
        json,
        "  \"solver\": {{ \"workload\": \"6T read discharge, 16-seg bit line, \
         {SOLVER_BENCH_STEPS} trapezoidal steps\", \"legacy_seconds\": {legacy_s:.6}, \
         \"compiled_seconds\": {compiled_s:.6}, \"speedup\": {solver_speedup:.2} }},"
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{ \"workload\": \"SPICE-backed Fig. 5 MC read, n = {}\", \
         \"trials\": {}, \"batch_width\": {}, \"scalar_seconds\": {:.6}, \
         \"batched_seconds\": {:.6}, \"scalar_trials_per_sec\": {:.1}, \
         \"batched_trials_per_sec\": {:.1}, \"speedup\": {:.2} }},",
        batch.n_cells,
        batch.trials,
        batch.batch_width,
        batch.scalar_seconds,
        batch.batched_seconds,
        batch.scalar_tps(),
        batch.batched_tps(),
        batch.speedup()
    );
    let _ = writeln!(
        json,
        "  \"yield\": {{ \"workload\": \"planted P_fail = 1e-6, scaled-sigma IS, \
         target rel half-width 0.3\", \"trials_to_converge\": {}, \"p_fail\": {:.6e}, \
         \"rel_half_width\": {:.4}, \"converged\": {}, \"ci_covers_truth\": {}, \
         \"brute_equivalent_trials\": {:.0}, \"speedup\": {:.1} }},",
        yb.trials,
        yb.p_fail,
        yb.rel_half_width,
        yb.converged,
        yb.ci_covers_truth,
        yb.brute_equivalent_trials,
        yb.speedup()
    );
    {
        let (spans, names, dominant, path_len, coverage) = &obs;
        let mut dominant_name = String::new();
        mpvar_trace::json::push_json_str(&mut dominant_name, &dominant.name);
        let _ = writeln!(
            json,
            "  \"obs\": {{ \"workload\": \"traced tdp_distribution rep, {traced_threads} \
             threads\", \"spans\": {spans}, \"distinct_names\": {names}, \
             \"dominant_span\": {dominant_name}, \"dominant_share\": {:.4}, \
             \"critical_path_nodes\": {path_len}, \
             \"critical_path_coverage_percent\": {coverage:.1} }},",
            dominant.share
        );
    }
    let _ = writeln!(json, "  \"entries\": [");
    for (i, &(threads, seconds, tps)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {threads}, \"seconds\": {seconds:.6}, \
             \"trials_per_sec\": {tps:.1}, \"speedup\": {:.3} }}{comma}",
            t1 / seconds
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    json.push('\n');
    Ok(json)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims themselves are under test

    use super::*;
    use mpvar_study::ArtifactId;

    #[test]
    fn experiment_ids_mirror_the_artifact_graph() {
        assert_eq!(EXPERIMENT_IDS.len(), ArtifactId::ALL.len());
        for (name, id) in EXPERIMENT_IDS.iter().zip(ArtifactId::ALL) {
            assert_eq!(*name, id.name());
        }
    }

    #[test]
    fn yield_bench_meets_the_speedup_floor() {
        let yb = yield_bench().unwrap();
        assert!(yb.converged, "planted 1e-6 run must converge");
        assert!(yb.ci_covers_truth, "CI must cover the planted truth");
        assert!(
            yb.speedup() >= 50.0,
            "speedup {:.1} below 50x",
            yb.speedup()
        );
    }

    #[test]
    fn unknown_id_rejected() {
        let ctx = ExperimentContext::quick().unwrap();
        assert!(run("tableX", &ctx).is_err());
    }

    #[test]
    fn table1_artifact() {
        let ctx = ExperimentContext::quick().unwrap();
        let arts = run("table1", &ctx).unwrap();
        assert_eq!(arts.len(), 1);
        assert!(arts[0].text.contains("LELELE"));
        assert!(arts[0].csv.starts_with("option,"));
    }

    #[test]
    fn cheap_experiments_run_quick() {
        let mut ctx = ExperimentContext::quick().unwrap();
        ctx.mc.trials = 300;
        for id in ["table4", "ablation-bl-width", "ablation-sadp-vss"] {
            let arts = run(id, &ctx).unwrap();
            assert_eq!(arts[0].id, id);
            assert!(!arts[0].text.is_empty());
        }
    }
}
