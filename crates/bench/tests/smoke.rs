//! End-to-end smoke test of the reproduction harness: `run_all` on a
//! tiny context must produce every artefact with sane content.

#![allow(deprecated)] // the compatibility shims are part of the surface under test

use mpvar_bench::{run, run_all, EXPERIMENT_IDS};
use mpvar_core::experiments::ExperimentContext;
use mpvar_core::montecarlo::McConfig;

fn tiny_ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick().expect("context builds");
    ctx.sizes = vec![8];
    ctx.mc = McConfig::builder().trials(250).seed(1).build();
    ctx
}

#[test]
fn run_all_produces_every_artifact() {
    let ctx = tiny_ctx();
    let artifacts = run_all(&ctx).expect("harness runs");
    assert_eq!(artifacts.len(), EXPERIMENT_IDS.len());
    for (artifact, &id) in artifacts.iter().zip(EXPERIMENT_IDS.iter()) {
        assert_eq!(artifact.id, id);
        assert!(!artifact.text.is_empty(), "{id} text");
        assert!(!artifact.csv.is_empty(), "{id} csv");
        // CSV has a header and at least one data row.
        assert!(artifact.csv.lines().count() >= 2, "{id} csv rows");
    }
}

#[test]
fn individual_runs_match_run_all_ids() {
    let ctx = tiny_ctx();
    // Spot-check the cheapest single-artefact paths.
    for id in ["table1", "table4", "extension-le2"] {
        let arts = run(id, &ctx).expect("single run works");
        assert_eq!(arts.len(), 1);
        assert_eq!(arts[0].id, id);
    }
}

#[test]
fn headline_numbers_visible_in_reports() {
    let ctx = tiny_ctx();
    let artifacts = run_all(&ctx).expect("harness runs");
    let by_id = |id: &str| -> &str {
        &artifacts
            .iter()
            .find(|a| a.id == id)
            .expect("artifact present")
            .text
    };
    // Table I names all the paper's options.
    let t1 = by_id("table1");
    for label in ["LELELE", "SADP", "EUV"] {
        assert!(t1.contains(label), "{label} in table1");
    }
    // Fig. 4 reports per-size rows.
    assert!(by_id("fig4").contains("10x8"));
    // The sigma table includes the overlay sweep.
    assert!(by_id("table4").contains("3nm OL"));
    // The scaling extension compares both nodes.
    let e3 = by_id("extension-scaling");
    assert!(e3.contains("n10") && e3.contains("n7"));
}
