//! Elmore-delay refinement of the analytical model.
//!
//! The paper notes (§III.A) that the deviation between its lumped
//! formula and simulation "is expected since the formula is based on the
//! lumped RC equation, though bl is a distributed line which can be
//! better approximated with the Elmore delay". This module implements
//! that refinement.
//!
//! The read discharge drives the bit line from the *far* end (the
//! accessed cell) while the sense amp watches the *near* end. For a
//! uniform ladder of `n` segments with per-cell `R_bl`/`C_bl + C_FE`,
//! driver resistance `R_FE` and the precharge load `C_pre(n)` at the
//! near end, the Elmore time constant seen from the driver is
//!
//! ```text
//! tau = R_FE · (C_wire_total + C_pre)
//!     + R_bl_total · (C_wire_total / 2 + C_pre)
//! ```
//!
//! — every distributed capacitor discharges through `R_FE` plus, on
//! average, half the wire; the lumped near-end load sees the whole wire.

use mpvar_sram::FormulaParams;

use crate::error::CoreError;
use crate::formula::AnalyticalModel;

/// The Elmore-refined analytical `td` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElmoreModel {
    params: FormulaParams,
    a: f64,
}

impl ElmoreModel {
    /// Creates a model for the given parameters and discharge level.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a discharge level outside
    /// `(0, 1)`.
    pub fn new(params: FormulaParams, discharge_level: f64) -> Result<Self, CoreError> {
        // Reuse the lumped model's validation for the level constant.
        let lumped = AnalyticalModel::new(params, discharge_level)?;
        Ok(Self {
            params,
            a: lumped.a(),
        })
    }

    /// The per-cell parameters.
    pub fn params(&self) -> &FormulaParams {
        &self.params
    }

    /// Elmore `td` in seconds for an `n`-cell column with variation
    /// multipliers.
    pub fn td_s(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        let p = &self.params;
        let nf = n as f64;
        let c_wire = nf * (p.cbl_f * c_var + p.cfe_f);
        let c_pre = p.cpre_f(n);
        let r_wire = nf * p.rbl_ohm * r_var;
        let tau = p.rfe_ohm * (c_wire + c_pre) + r_wire * (c_wire / 2.0 + c_pre);
        self.a * tau
    }

    /// Nominal Elmore `td`.
    pub fn td_nominal_s(&self, n: usize) -> f64 {
        self.td_s(n, 1.0, 1.0)
    }

    /// Read-time penalty ratio under the Elmore model.
    pub fn tdp(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        self.td_s(n, r_var, c_var) / self.td_nominal_s(n) - 1.0
    }

    /// Read-time penalty in percent.
    pub fn tdp_percent(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        self.tdp(n, r_var, c_var) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_sram::BitcellGeometry;
    use mpvar_tech::preset::n10;

    fn models() -> (AnalyticalModel, ElmoreModel) {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        let params = FormulaParams::derive(&tech, &cell, 0.7).unwrap();
        (
            AnalyticalModel::new(params, 0.10).unwrap(),
            ElmoreModel::new(params, 0.10).unwrap(),
        )
    }

    #[test]
    fn elmore_is_faster_than_lumped() {
        // Distributed wire halves the wire-R x wire-C product: Elmore td
        // must be below the lumped td, more so for long arrays.
        let (lumped, elmore) = models();
        for n in [16usize, 64, 256, 1024] {
            assert!(elmore.td_nominal_s(n) < lumped.td_nominal_s(n), "n = {n}");
        }
        let gap16 = 1.0 - elmore.td_nominal_s(16) / lumped.td_nominal_s(16);
        let gap1024 = 1.0 - elmore.td_nominal_s(1024) / lumped.td_nominal_s(1024);
        assert!(gap1024 > gap16);
    }

    #[test]
    fn agrees_with_lumped_when_wire_r_is_negligible() {
        // With r_var -> 0 the two models coincide (all R is the FET).
        let (lumped, elmore) = models();
        let l = lumped.td_s(256, 1e-9, 1.0);
        let e = elmore.td_s(256, 1e-9, 1.0);
        assert!(((l - e) / l).abs() < 1e-6);
    }

    #[test]
    fn tdp_nominal_is_zero() {
        let (_, elmore) = models();
        assert!(elmore.tdp(64, 1.0, 1.0).abs() < 1e-12);
        assert!(elmore.tdp_percent(64, 1.0, 1.2) > 0.0);
    }

    #[test]
    fn validation_propagates() {
        let p = *models().1.params();
        assert!(ElmoreModel::new(p, 1.5).is_err());
    }

    #[test]
    fn monotone_in_n() {
        let (_, elmore) = models();
        let mut last = 0.0;
        for n in [1usize, 4, 16, 64, 256, 1024] {
            let td = elmore.td_nominal_s(n);
            assert!(td > last);
            last = td;
        }
    }
}
