//! Error type for the analysis crate.

use std::error::Error;
use std::fmt;

/// Errors from the analysis layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An analysis parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint description.
        constraint: &'static str,
    },
    /// No feasible corner existed (every candidate printed shorted or
    /// collapsed lines).
    NoFeasibleCorner {
        /// The option being searched.
        option: String,
    },
    /// Propagated SRAM-layer failure.
    Sram(String),
    /// Propagated litho-layer failure.
    Litho(String),
    /// Propagated extraction failure.
    Extract(String),
    /// Propagated statistics failure.
    Stats(String),
    /// Propagated tech failure.
    Tech(String),
    /// Propagated rare-event yield-engine failure.
    Yield(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} is invalid: {constraint}"),
            CoreError::NoFeasibleCorner { option } => {
                write!(f, "no feasible corner for option `{option}`")
            }
            CoreError::Sram(m) => write!(f, "sram error: {m}"),
            CoreError::Litho(m) => write!(f, "litho error: {m}"),
            CoreError::Extract(m) => write!(f, "extraction error: {m}"),
            CoreError::Stats(m) => write!(f, "statistics error: {m}"),
            CoreError::Tech(m) => write!(f, "tech error: {m}"),
            CoreError::Yield(m) => write!(f, "yield error: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<mpvar_sram::SramError> for CoreError {
    fn from(e: mpvar_sram::SramError) -> Self {
        CoreError::Sram(e.to_string())
    }
}

impl From<mpvar_litho::LithoError> for CoreError {
    fn from(e: mpvar_litho::LithoError) -> Self {
        CoreError::Litho(e.to_string())
    }
}

impl From<mpvar_extract::ExtractError> for CoreError {
    fn from(e: mpvar_extract::ExtractError) -> Self {
        CoreError::Extract(e.to_string())
    }
}

impl From<mpvar_stats::StatsError> for CoreError {
    fn from(e: mpvar_stats::StatsError) -> Self {
        CoreError::Stats(e.to_string())
    }
}

impl From<mpvar_tech::TechError> for CoreError {
    fn from(e: mpvar_tech::TechError) -> Self {
        CoreError::Tech(e.to_string())
    }
}

impl From<mpvar_yield::YieldError> for CoreError {
    fn from(e: mpvar_yield::YieldError) -> Self {
        CoreError::Yield(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: CoreError = mpvar_stats::StatsError::ZeroTrials.into();
        assert!(e.to_string().contains("statistics"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
