//! Typed experiment runners: one per table and figure of the paper.
//!
//! Every runner returns structured data plus a [`TextTable`] report so
//! the `repro` binary, the benches, and the tests all consume the same
//! code path. [`ExperimentContext::paper`] uses the paper's exact design
//! of experiments (arrays of 16/64/256/1024 word lines, 20k Monte-Carlo
//! trials); [`ExperimentContext::quick`] is a down-scaled variant for
//! CI-speed runs.

use mpvar_exec::ExecConfig;
use mpvar_extract::extract_track;
use mpvar_litho::{apply_draw, sample_draw, Draw};
use mpvar_sram::{simulate_read, BitcellGeometry, FormulaParams, ReadConfig};
use mpvar_stats::RngStream;
use mpvar_tech::{preset::n10, PatterningOption, TechDb, VariationBudget};

use crate::elmore::ElmoreModel;
use crate::error::CoreError;
use crate::formula::AnalyticalModel;
use crate::montecarlo::{tdp_distribution, tdp_distribution_with, McConfig, TdpDistribution};
use crate::nominal::NominalCache;
use crate::report::{pct, ps, TextTable};
use crate::worst_case::{find_worst_case, find_worst_case_with, WorstCase};

/// Everything an experiment needs: technology, cell, DOE sizes, and
/// Monte-Carlo settings.
///
/// Construct via [`ExperimentContext::paper`], [`ExperimentContext::quick`],
/// or [`ExperimentContext::builder`]; the struct is `#[non_exhaustive]`
/// so future knobs are not breaking changes (fields stay public for
/// reading and in-place mutation).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExperimentContext {
    /// Technology under test.
    pub tech: TechDb,
    /// Bitcell geometry.
    pub cell: BitcellGeometry,
    /// Read-testbench configuration.
    pub read_config: ReadConfig,
    /// Array sizes (word lines) of the DOE.
    pub sizes: Vec<usize>,
    /// Monte-Carlo settings.
    pub mc: McConfig,
    /// LE3 overlay budgets (3σ, nm) swept in Table IV.
    pub le3_overlay_sweep_nm: Vec<f64>,
    /// The reference LE3 overlay budget (worst case of §II.B), nm.
    pub le3_overlay_nm: f64,
    /// Rare-event yield-engine settings (seeds and budgets independent
    /// of [`ExperimentContext::mc`], so the yield artifact is
    /// profile-invariant).
    pub yield_settings: crate::rareevent::YieldSettings,
    /// Write-path study settings (own sizes, trials, and seed, so the
    /// write-family artifacts are profile-invariant too).
    pub write_settings: crate::writeexp::WriteStudySettings,
    /// Thread-count knob for parallel cell dispatch; results are
    /// bit-identical for any setting.
    pub exec: ExecConfig,
}

impl ExperimentContext {
    /// A builder seeded with the paper's full design of experiments
    /// (the [`ExperimentContextBuilder::paper_preset`]).
    ///
    /// # Errors
    ///
    /// Propagates tech/cell construction failures.
    pub fn builder() -> Result<ExperimentContextBuilder, CoreError> {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech)?;
        Ok(ExperimentContextBuilder {
            ctx: Self {
                tech,
                cell,
                read_config: ReadConfig::default(),
                sizes: mpvar_sram::array::PAPER_ARRAY_SIZES.to_vec(),
                mc: McConfig::default(),
                le3_overlay_sweep_nm: vec![3.0, 5.0, 7.0, 8.0],
                le3_overlay_nm: 8.0,
                yield_settings: crate::rareevent::YieldSettings::default(),
                write_settings: crate::writeexp::WriteStudySettings::default(),
                exec: ExecConfig::default(),
            },
        })
    }

    /// The paper's full design of experiments (the builder's
    /// [`ExperimentContextBuilder::paper_preset`]).
    ///
    /// # Errors
    ///
    /// Propagates tech/cell construction failures.
    pub fn paper() -> Result<Self, CoreError> {
        Ok(Self::builder()?.build())
    }

    /// A down-scaled context for fast runs (the builder's
    /// [`ExperimentContextBuilder::quick_preset`]).
    ///
    /// # Errors
    ///
    /// Propagates tech/cell construction failures.
    pub fn quick() -> Result<Self, CoreError> {
        Ok(Self::builder()?.quick_preset().build())
    }

    /// The array height n-pinned artefacts (Fig. 5, Table IV, the
    /// sensitivity/LE2/LER/scaling extensions) measure at: 64 when the
    /// DOE includes it (the paper's choice), else the largest size.
    pub fn pinned_height(&self) -> usize {
        if self.sizes.contains(&64) {
            64
        } else {
            *self.sizes.last().expect("context has sizes")
        }
    }

    /// The variation budget of `option` with this context's LE3 overlay.
    ///
    /// # Errors
    ///
    /// Propagates budget validation.
    pub fn budget(&self, option: PatterningOption) -> Result<VariationBudget, CoreError> {
        Ok(VariationBudget::paper_default(option, self.le3_overlay_nm)?)
    }

    fn analytical_model(&self) -> Result<AnalyticalModel, CoreError> {
        let params = FormulaParams::derive(&self.tech, &self.cell, self.read_config.vdd_v)?;
        AnalyticalModel::new(params, self.read_config.sense_dv_v / self.read_config.vdd_v)
    }

    /// The context's Monte-Carlo settings with the thread budget
    /// overridden — used when an outer cell dispatch hands each cell an
    /// inner thread share.
    fn mc_with(&self, exec: ExecConfig) -> McConfig {
        McConfig { exec, ..self.mc }
    }
}

/// Builder for [`ExperimentContext`].
///
/// Starts from the paper's full design of experiments; presets and
/// knob setters layer on top, so adding a knob later never breaks
/// callers.
///
/// ```
/// use mpvar_core::experiments::ExperimentContext;
///
/// let ctx = ExperimentContext::builder()?
///     .quick_preset()
///     .trials(500)
///     .seed(7)
///     .threads(1)
///     .build();
/// assert_eq!(ctx.mc.trials, 500);
/// assert_eq!(ctx.exec.effective_threads(), 1);
/// # Ok::<(), mpvar_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentContextBuilder {
    ctx: ExperimentContext,
}

impl ExperimentContextBuilder {
    /// The paper's full design of experiments: arrays of 16/64/256/1024
    /// word lines, 20 000 Monte-Carlo trials (the builder's default).
    #[must_use]
    pub fn paper_preset(mut self) -> Self {
        self.ctx.sizes = mpvar_sram::array::PAPER_ARRAY_SIZES.to_vec();
        self.ctx.mc.trials = McConfig::default().trials;
        self
    }

    /// The down-scaled CI-speed preset: 8/16-word-line arrays, 1 500
    /// trials.
    #[must_use]
    pub fn quick_preset(mut self) -> Self {
        self.ctx.sizes = vec![8, 16];
        self.ctx.mc.trials = 1_500;
        self
    }

    /// Overrides the technology and matching bitcell geometry together
    /// (they must agree, so they travel as a pair).
    #[must_use]
    pub fn tech_cell(mut self, tech: TechDb, cell: mpvar_sram::BitcellGeometry) -> Self {
        self.ctx.tech = tech;
        self.ctx.cell = cell;
        self
    }

    /// Overrides the read-testbench configuration.
    #[must_use]
    pub fn read_config(mut self, read_config: ReadConfig) -> Self {
        self.ctx.read_config = read_config;
        self
    }

    /// Overrides the DOE array sizes (word lines).
    #[must_use]
    pub fn sizes(mut self, sizes: Vec<usize>) -> Self {
        self.ctx.sizes = sizes;
        self
    }

    /// Overrides the Monte-Carlo trial count.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.ctx.mc.trials = trials;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.ctx.mc.seed = seed;
        self
    }

    /// Pins both thread-count knobs (experiment dispatch and the
    /// Monte-Carlo farm). Results are bit-identical for any setting.
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.exec(ExecConfig::with_threads(threads))
    }

    /// Sets both execution knobs from an [`ExecConfig`].
    #[must_use]
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.ctx.exec = exec;
        self.ctx.mc.exec = exec;
        self
    }

    /// Overrides the LE3 overlay budgets swept in Table IV.
    #[must_use]
    pub fn le3_overlay_sweep_nm(mut self, sweep: Vec<f64>) -> Self {
        self.ctx.le3_overlay_sweep_nm = sweep;
        self
    }

    /// Overrides the reference LE3 overlay budget (3σ, nm).
    #[must_use]
    pub fn le3_overlay_nm(mut self, overlay_nm: f64) -> Self {
        self.ctx.le3_overlay_nm = overlay_nm;
        self
    }

    /// Overrides the rare-event yield-engine settings.
    #[must_use]
    pub fn yield_settings(mut self, settings: crate::rareevent::YieldSettings) -> Self {
        self.ctx.yield_settings = settings;
        self
    }

    /// Overrides the write-path study settings.
    #[must_use]
    pub fn write_settings(mut self, settings: crate::writeexp::WriteStudySettings) -> Self {
        self.ctx.write_settings = settings;
        self
    }

    /// Finalizes the context.
    pub fn build(self) -> ExperimentContext {
        self.ctx
    }
}

// ---------------------------------------------------------------------------
// Table I — worst-case variability per patterning option
// ---------------------------------------------------------------------------

/// Table I: the worst corner of each option and its R/C impact.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Worst cases in [`PatterningOption::ALL`] order.
    pub worst_cases: Vec<WorstCase>,
}

/// Runs the Table I corner search.
///
/// The three options are independent cells: the nominal windows are
/// cached per option, the options dispatched in parallel, and the
/// remaining thread budget handed to each option's corner search.
///
/// # Errors
///
/// Propagates the per-option search failures.
pub fn table1(ctx: &ExperimentContext) -> Result<Table1, CoreError> {
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;
    let options = PatterningOption::ALL;
    let (outer, inner) = ctx.exec.split(options.len());
    let worst_cases = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let budget = ctx.budget(option)?;
        find_worst_case_with(cache.window(option)?, &budget, inner)
    })?;
    Ok(Table1 { worst_cases })
}

impl Table1 {
    /// The worst case of one option.
    pub fn of(&self, option: PatterningOption) -> &WorstCase {
        self.worst_cases
            .iter()
            .find(|w| w.option == option)
            .expect("all options are populated")
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table I: worst case variability for each patterning option",
            &["option", "worst corner", "C_bl impact", "R_bl impact"],
        );
        for w in &self.worst_cases {
            let corner = w
                .draw
                .parameters()
                .into_iter()
                .filter(|&(_, v)| v != 0.0)
                .map(|(k, v)| format!("{k}={v:+.1}"))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(&[
                w.option.paper_label(),
                &corner,
                &pct(w.variation.c_percent()),
                &pct(w.variation.r_percent()),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — worst-case wire-variability impact on td
// ---------------------------------------------------------------------------

/// Fig. 4: simulated nominal `td` and the worst-case penalty per option
/// and array size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Array sizes simulated.
    pub sizes: Vec<usize>,
    /// Simulated nominal `td` per size, s.
    pub td_nominal_s: Vec<f64>,
    /// Per option: simulated worst-case `td` per size, s.
    pub td_worst_s: Vec<(PatterningOption, Vec<f64>)>,
}

/// Runs the Fig. 4 study using the Table I worst corners.
///
/// The nominal geometry is patterning-independent, so nominal `td` is
/// simulated once per size and shared across options.
///
/// # Errors
///
/// Propagates read-simulation failures.
pub fn fig4(ctx: &ExperimentContext, table1: &Table1) -> Result<Fig4, CoreError> {
    let threads = ctx.exec.effective_threads();
    // Every simulation cell (nominal per size, worst per option × size)
    // is independent; results are placed by index, so the vectors are
    // identical to the sequential loops for any thread count.
    let td_nominal_s = mpvar_exec::try_par_map_indexed(&ctx.sizes, threads, |_, &n| {
        simulate_read(
            &ctx.tech,
            &ctx.cell,
            &ctx.read_config,
            n,
            &Draw::nominal(PatterningOption::Euv),
        )
        .map(|out| out.td_s)
        .map_err(CoreError::from)
    })?;
    let n_sizes = ctx.sizes.len();
    let flat = mpvar_exec::try_par_map_range(table1.worst_cases.len() * n_sizes, threads, |i| {
        let w = &table1.worst_cases[i / n_sizes];
        let n = ctx.sizes[i % n_sizes];
        simulate_read(&ctx.tech, &ctx.cell, &ctx.read_config, n, &w.draw)
            .map(|out| out.td_s)
            .map_err(CoreError::from)
    })?;
    let td_worst_s = table1
        .worst_cases
        .iter()
        .enumerate()
        .map(|(j, w)| (w.option, flat[j * n_sizes..(j + 1) * n_sizes].to_vec()))
        .collect();
    Ok(Fig4 {
        sizes: ctx.sizes.clone(),
        td_nominal_s,
        td_worst_s,
    })
}

impl Fig4 {
    /// Simulated worst-case `tdp` (percent) of one option per size.
    pub fn tdp_percent(&self, option: PatterningOption) -> Vec<f64> {
        let worst = &self
            .td_worst_s
            .iter()
            .find(|(o, _)| *o == option)
            .expect("all options are populated")
            .1;
        worst
            .iter()
            .zip(&self.td_nominal_s)
            .map(|(w, n)| (w / n - 1.0) * 100.0)
            .collect()
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 4: worst case wire variability impact on td (simulation)",
            &["array", "td nominal", "tdp LELELE", "tdp SADP", "tdp EUV"],
        );
        let le3 = self.tdp_percent(PatterningOption::Le3);
        let sadp = self.tdp_percent(PatterningOption::Sadp);
        let euv = self.tdp_percent(PatterningOption::Euv);
        for (i, &n) in self.sizes.iter().enumerate() {
            t.row(&[
                &format!("10x{n}"),
                &ps(self.td_nominal_s[i]),
                &pct(le3[i]),
                &pct(sadp[i]),
                &pct(euv[i]),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Table II — formula versus simulation, nominal td
// ---------------------------------------------------------------------------

/// Table II: nominal `td` from simulation vs the analytical formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// `(n, simulated td, formula td)` rows, s.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Builds Table II from the Fig. 4 nominal simulations.
///
/// # Errors
///
/// Propagates model construction failures.
pub fn table2(ctx: &ExperimentContext, fig4: &Fig4) -> Result<Table2, CoreError> {
    let model = ctx.analytical_model()?;
    let rows = fig4
        .sizes
        .iter()
        .zip(&fig4.td_nominal_s)
        .map(|(&n, &sim)| (n, sim, model.td_nominal_s(n)))
        .collect();
    Ok(Table2 { rows })
}

impl Table2 {
    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table II: formula versus simulation td_nom values",
            &["array", "simulation", "formula", "ratio sim/formula"],
        );
        for &(n, sim, formula) in &self.rows {
            t.row(&[
                &format!("10x{n}"),
                &ps(sim),
                &ps(formula),
                &format!("{:.2}", sim / formula),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Table III — formula versus simulation, worst-case tdp
// ---------------------------------------------------------------------------

/// Table III: worst-case `tdp` (percent) per option and size, by both
/// methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Sizes of the study.
    pub sizes: Vec<usize>,
    /// Simulated `tdp` percent per option (in [`PatterningOption::ALL`]
    /// order), per size.
    pub simulation: Vec<Vec<f64>>,
    /// Formula `tdp` percent per option, per size.
    pub formula: Vec<Vec<f64>>,
}

/// Builds Table III from the Table I corners and Fig. 4 simulations.
///
/// # Errors
///
/// Propagates model construction failures.
pub fn table3(ctx: &ExperimentContext, table1: &Table1, fig4: &Fig4) -> Result<Table3, CoreError> {
    let model = ctx.analytical_model()?;
    let mut simulation = Vec::new();
    let mut formula = Vec::new();
    for option in PatterningOption::ALL {
        simulation.push(fig4.tdp_percent(option));
        let w = table1.of(option);
        formula.push(
            fig4.sizes
                .iter()
                .map(|&n| model.tdp_percent(n, w.variation.r_var, w.variation.c_var))
                .collect(),
        );
    }
    Ok(Table3 {
        sizes: fig4.sizes.clone(),
        simulation,
        formula,
    })
}

impl Table3 {
    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table III: formula versus simulation tdp values (%) using the worst case variability",
            &["method", "array", "LELELE", "SADP", "EUV"],
        );
        for (label, data) in [("simulation", &self.simulation), ("formula", &self.formula)] {
            for (i, &n) in self.sizes.iter().enumerate() {
                t.row(&[
                    label,
                    &format!("10x{n}"),
                    &format!("{:.2}", data[0][i]),
                    &format!("{:.2}", data[1][i]),
                    &format!("{:.2}", data[2][i]),
                ]);
            }
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Fig. 5 — Monte-Carlo tdp distributions
// ---------------------------------------------------------------------------

/// Fig. 5: the Monte-Carlo `tdp` distributions at one array size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// The array size (the paper uses n = 64).
    pub n: usize,
    /// Distributions for LE3 (at the context overlay), SADP, EUV.
    pub distributions: Vec<TdpDistribution>,
}

/// Runs the Fig. 5 Monte-Carlo study at `n = 64` cells (or the largest
/// context size if smaller).
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn fig5(ctx: &ExperimentContext) -> Result<Fig5, CoreError> {
    let n = ctx.pinned_height();
    // Per-option cells run in parallel against cached nominal windows;
    // each cell's Monte-Carlo farm gets the remaining thread share.
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;
    let options = PatterningOption::ALL;
    let (outer, inner) = ctx.exec.split(options.len());
    let distributions = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let budget = ctx.budget(option)?;
        tdp_distribution_with(cache.window(option)?, &budget, n, &ctx.mc_with(inner))
    })?;
    Ok(Fig5 { n, distributions })
}

impl Fig5 {
    /// Renders the report: summary lines plus an ASCII histogram per
    /// option.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Fig. 5: Monte-Carlo tdp distribution (n = {}, {} trials/option)\n\n",
            self.n,
            self.distributions
                .first()
                .map(|d| d.samples_percent().len())
                .unwrap_or(0)
        );
        for d in &self.distributions {
            out.push_str(&format!(
                "{}: mean {:+.3}% sigma {:.3}% min {:+.2}% max {:+.2}%\n",
                d.option().paper_label(),
                d.summary().mean(),
                d.sigma_percent(),
                d.summary().min(),
                d.summary().max()
            ));
            if let Ok(h) = d.histogram(25) {
                out.push_str(&h.to_ascii(50));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Table IV — tdp sigma per option and overlay budget
// ---------------------------------------------------------------------------

/// Table IV: `tdp` standard deviations at n = 64 for the LE3 overlay
/// sweep plus SADP and EUV, with bootstrap 95% confidence bounds (an
/// `mpvar` addition — the paper reports point values only).
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// The array size used.
    pub n: usize,
    /// `(label, sigma percent, ci_lo, ci_hi)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Runs the Table IV sigma sweep.
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn table4(ctx: &ExperimentContext) -> Result<Table4, CoreError> {
    let n = ctx.pinned_height();
    // Independent cells: the LE3 overlay sweep plus SADP and EUV. All
    // LE3 cells share one cached nominal window (the nominal print does
    // not depend on the overlay budget).
    let mut cells: Vec<(String, PatterningOption, VariationBudget)> = Vec::new();
    for &ol in &ctx.le3_overlay_sweep_nm {
        cells.push((
            format!("LELELE {ol:.0}nm OL"),
            PatterningOption::Le3,
            VariationBudget::paper_default(PatterningOption::Le3, ol)?,
        ));
    }
    for option in [PatterningOption::Sadp, PatterningOption::Euv] {
        cells.push((
            option.paper_label().to_string(),
            option,
            ctx.budget(option)?,
        ));
    }
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;
    let (outer, inner) = ctx.exec.split(cells.len());
    let rows = mpvar_exec::try_par_map_indexed(&cells, outer, |_, (label, option, budget)| {
        let d = tdp_distribution_with(cache.window(*option)?, budget, n, &ctx.mc_with(inner))?;
        let ci = mpvar_stats::bootstrap_sigma_ci(d.samples_percent(), 300, 0.95, ctx.mc.seed)?;
        Ok::<_, CoreError>((label.clone(), d.sigma_percent(), ci.lo, ci.hi))
    })?;
    Ok(Table4 { n, rows })
}

impl Table4 {
    /// The sigma of a labelled row, if present.
    pub fn sigma_of(&self, label_prefix: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _, _, _)| l.starts_with(label_prefix))
            .map(|&(_, s, _, _)| s)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Table IV: patterning options & tdp sigma values (n = {})",
                self.n
            ),
            &[
                "patterning option",
                "std deviation (% tdp)",
                "95% bootstrap CI",
            ],
        );
        for (label, sigma, lo, hi) in &self.rows {
            t.row(&[
                label,
                &format!("{sigma:.3}"),
                &format!("[{lo:.3}, {hi:.3}]"),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Ablation A1 — delay models: lumped vs Elmore vs simulation
// ---------------------------------------------------------------------------

/// Ablation A1: nominal `td` by the three delay models.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationDelayModels {
    /// `(n, simulated, lumped formula, elmore)` rows, s.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

/// Compares the lumped formula and the Elmore refinement against the
/// Fig. 4 nominal simulations (the paper's §III.A discussion).
///
/// # Errors
///
/// Propagates model construction failures.
pub fn ablation_delay_models(
    ctx: &ExperimentContext,
    fig4: &Fig4,
) -> Result<AblationDelayModels, CoreError> {
    let params = FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let level = ctx.read_config.sense_dv_v / ctx.read_config.vdd_v;
    let lumped = AnalyticalModel::new(params, level)?;
    let elmore = ElmoreModel::new(params, level)?;
    let rows = fig4
        .sizes
        .iter()
        .zip(&fig4.td_nominal_s)
        .map(|(&n, &sim)| (n, sim, lumped.td_nominal_s(n), elmore.td_nominal_s(n)))
        .collect();
    Ok(AblationDelayModels { rows })
}

impl AblationDelayModels {
    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Ablation A1: delay models (nominal td)",
            &["array", "simulation", "lumped formula", "elmore"],
        );
        for &(n, sim, lumped, elmore) in &self.rows {
            t.row(&[&format!("10x{n}"), &ps(sim), &ps(lumped), &ps(elmore)]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Ablation A2 — bit-line width (non-minimum CD) sensitivity
// ---------------------------------------------------------------------------

/// Ablation A2: how the drawn bit-line width changes the worst-case
/// C_bl impact per option.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationBlWidth {
    /// `(width_nm, dC% per option in ALL order)` rows.
    pub rows: Vec<(i64, Vec<f64>)>,
}

/// Sweeps the drawn bit-line width and re-runs the Table I corner
/// search (the paper motivates non-minimum bit-line CD in §II.B).
///
/// # Errors
///
/// Propagates search failures.
pub fn ablation_bl_width(ctx: &ExperimentContext) -> Result<AblationBlWidth, CoreError> {
    let mut rows = Vec::new();
    for width in [24i64, 26, 28, 30] {
        let cell = ctx.cell.clone().with_bl_width(mpvar_geometry::Nm(width))?;
        let mut deltas = Vec::new();
        for option in PatterningOption::ALL {
            let budget = ctx.budget(option)?;
            let wc = find_worst_case(&ctx.tech, &cell, option, &budget)?;
            deltas.push(wc.variation.c_percent());
        }
        rows.push((width, deltas));
    }
    Ok(AblationBlWidth { rows })
}

impl AblationBlWidth {
    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Ablation A2: bit-line drawn width vs worst-case C_bl impact",
            &["bl width", "LELELE dC", "SADP dC", "EUV dC"],
        );
        for (w, deltas) in &self.rows {
            t.row(&[
                &format!("{w}nm"),
                &pct(deltas[0]),
                &pct(deltas[1]),
                &pct(deltas[2]),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Ablation A3 — SADP R_bl / R_VSS anti-correlation
// ---------------------------------------------------------------------------

/// Ablation A3: the SADP anti-correlation between bit-line and VSS-rail
/// resistance the paper blames for its formula's SADP mismatch (§III.A).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationSadpAnticorrelation {
    /// Pearson correlation of (R_bl, R_vss) over Monte-Carlo draws.
    pub pearson_r: f64,
    /// Worst-corner R_bl change, percent.
    pub worst_rbl_percent: f64,
    /// Worst-corner R_vss change, percent.
    pub worst_rvss_percent: f64,
}

/// Measures the SADP R_bl/R_VSS anti-correlation by Monte-Carlo and at
/// the worst corner.
///
/// # Errors
///
/// Propagates sampling/extraction failures.
pub fn ablation_sadp_anticorrelation(
    ctx: &ExperimentContext,
) -> Result<AblationSadpAnticorrelation, CoreError> {
    let m1 = ctx
        .tech
        .metal(1)
        .ok_or_else(|| CoreError::Tech("technology lacks metal1".to_string()))?;
    let stack = ctx
        .cell
        .column_stack(mpvar_sram::array::PAPER_BL_PAIRS, 5, 1)?;
    let nominal = apply_draw(&stack, &Draw::nominal(PatterningOption::Sadp))?;
    let bl = nominal
        .index_of_net("BL")
        .ok_or_else(|| CoreError::Sram("no BL track".to_string()))?;
    let vss = nominal
        .index_of_net("VSS5")
        .ok_or_else(|| CoreError::Sram("no VSS5 track".to_string()))?;
    let nom_bl = extract_track(&nominal, bl, m1)?;
    let nom_vss = extract_track(&nominal, vss, m1)?;

    let budget = ctx.budget(PatterningOption::Sadp)?;
    let base = RngStream::from_seed(ctx.mc.seed);
    let trials = ctx.mc.trials.clamp(200, 5_000);
    let mut rbl = Vec::with_capacity(trials);
    let mut rvss = Vec::with_capacity(trials);
    for k in 0..trials {
        let mut rng = base.substream(k as u64);
        let draw = sample_draw(PatterningOption::Sadp, &budget, &mut rng)?;
        let printed = match apply_draw(&stack, &draw) {
            Ok(p) => p,
            Err(_) => continue,
        };
        rbl.push(extract_track(&printed, bl, m1)?.resistance_ohm());
        rvss.push(extract_track(&printed, vss, m1)?.resistance_ohm());
    }
    let pearson_r = mpvar_stats::pearson(&rbl, &rvss)?;

    let wc = find_worst_case(&ctx.tech, &ctx.cell, PatterningOption::Sadp, &budget)?;
    let printed = apply_draw(&stack, &wc.draw)?;
    let worst_rbl = extract_track(&printed, bl, m1)?.resistance_ohm();
    let worst_rvss = extract_track(&printed, vss, m1)?.resistance_ohm();

    Ok(AblationSadpAnticorrelation {
        pearson_r,
        worst_rbl_percent: (worst_rbl / nom_bl.resistance_ohm() - 1.0) * 100.0,
        worst_rvss_percent: (worst_rvss / nom_vss.resistance_ohm() - 1.0) * 100.0,
    })
}

impl AblationSadpAnticorrelation {
    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Ablation A3: SADP R_bl / R_VSS anti-correlation",
            &["metric", "value"],
        );
        t.row(&["pearson(R_bl, R_vss)", &format!("{:.3}", self.pearson_r)]);
        t.row(&["worst-corner dR_bl", &pct(self.worst_rbl_percent)]);
        t.row(&["worst-corner dR_vss", &pct(self.worst_rvss_percent)]);
        t
    }
}

// ---------------------------------------------------------------------------
// Extension E1 — LELE (double litho-etch) versus the paper's options
// ---------------------------------------------------------------------------

/// Extension E1: the 32nm-era LELE option placed in the paper's
/// comparison — worst-case impact and Monte-Carlo spread per option,
/// including LELE.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionLe2 {
    /// `(option, worst dC_bl %, worst dR_bl %, tdp sigma %)` rows over
    /// all implemented options.
    pub rows: Vec<(PatterningOption, f64, f64, f64)>,
    /// Array size used for the sigma column.
    pub n: usize,
}

/// Runs the LELE comparison: corner search plus Monte-Carlo sigma for
/// every implemented option (the paper's three plus LELE).
///
/// # Errors
///
/// Propagates search / Monte-Carlo failures.
pub fn extension_le2(ctx: &ExperimentContext) -> Result<ExtensionLe2, CoreError> {
    let n = ctx.pinned_height();
    let mut rows = Vec::new();
    for option in PatterningOption::ALL_WITH_EXTENSIONS {
        let budget = VariationBudget::paper_default(option, ctx.le3_overlay_nm)?;
        let wc = find_worst_case(&ctx.tech, &ctx.cell, option, &budget)?;
        let dist = tdp_distribution(&ctx.tech, &ctx.cell, option, &budget, n, &ctx.mc)?;
        rows.push((
            option,
            wc.variation.c_percent(),
            wc.variation.r_percent(),
            dist.sigma_percent(),
        ));
    }
    Ok(ExtensionLe2 { rows, n })
}

impl ExtensionLe2 {
    /// The row of one option.
    pub fn of(&self, option: PatterningOption) -> Option<&(PatterningOption, f64, f64, f64)> {
        self.rows.iter().find(|(o, _, _, _)| *o == option)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Extension E1: LELE versus the paper's options (sigma at n = {})",
                self.n
            ),
            &["option", "worst dC_bl", "worst dR_bl", "tdp sigma (%)"],
        );
        for (option, dc, dr, sigma) in &self.rows {
            t.row(&[
                option.paper_label(),
                &pct(*dc),
                &pct(*dr),
                &format!("{sigma:.3}"),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Extension E2 — line-edge roughness on top of multiple patterning
// ---------------------------------------------------------------------------

/// Extension E2: tdp spread decomposition into multiple-patterning and
/// line-edge-roughness contributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionLer {
    /// Array size used.
    pub n: usize,
    /// LER model parameters (sigma, correlation length), nm.
    pub ler_sigma_nm: f64,
    /// `(option, sigma MP only, sigma MP+LER, mean R_var under LER only)`
    /// rows.
    pub rows: Vec<(PatterningOption, f64, f64, f64)>,
}

/// Runs the LER decomposition at `n = 64` (or the largest context size).
///
/// Per trial: sample the option's MP draw, print the window, then add an
/// AR(1) width profile along the bit line (own-edge roughness; each gap
/// absorbs half of the local width change). Segment-wise R and C sum to
/// the trial's `R_var`/`C_var`, evaluated through the analytical formula.
///
/// # Errors
///
/// Propagates sampling/extraction/model failures.
pub fn extension_ler(ctx: &ExperimentContext) -> Result<ExtensionLer, CoreError> {
    use mpvar_extract::capacitance::capacitance_breakdown;
    use mpvar_extract::wire_resistance_ohm;
    use mpvar_litho::LerModel;

    let n = ctx.pinned_height();
    let m1 = ctx
        .tech
        .metal(1)
        .ok_or_else(|| CoreError::Tech("technology lacks metal1".to_string()))?;
    let ler = LerModel::new(1.0, 26.0)?;
    let seg_len_nm = ctx.cell.cell_len_x().to_f64();
    let trials = ctx.mc.trials.clamp(200, 4_000);

    // One-cell window defines the uniform (pre-LER) geometry per draw.
    let stack = ctx
        .cell
        .column_stack(mpvar_sram::array::PAPER_BL_PAIRS, 5, 1)?;
    let params = FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let model = AnalyticalModel::new(params, ctx.read_config.sense_dv_v / ctx.read_config.vdd_v)?;

    // Nominal per-cell baseline (no MP, no LER).
    let nominal_printed = apply_draw(&stack, &Draw::nominal(PatterningOption::Euv))?;
    let bl = nominal_printed
        .index_of_net("BL")
        .ok_or_else(|| CoreError::Sram("column stack lost its BL track".to_string()))?;
    let nom = extract_track(&nominal_printed, bl, m1)?;

    // Segment-summed multipliers for one (draw, profile) realization.
    let realize =
        |w_mp: f64, g_lo: f64, g_hi: f64, profile: &[f64]| -> Result<(f64, f64), CoreError> {
            let mut r_total = 0.0;
            let mut c_total = 0.0;
            for &d in profile {
                let w = w_mp + d;
                let (lo, hi) = (g_lo - d / 2.0, g_hi - d / 2.0);
                r_total += wire_resistance_ohm(m1, w, seg_len_nm)?;
                c_total += capacitance_breakdown(m1, w, Some(lo), Some(hi))?.total_f_per_m()
                    * seg_len_nm
                    * 1e-9;
            }
            let k = profile.len() as f64;
            // Per-cell multipliers: segment sums against k nominal cells.
            Ok((
                r_total / (k * nom.resistance_ohm()),
                c_total / (k * nom.c_total_f()),
            ))
        };

    let base = RngStream::from_seed(ctx.mc.seed ^ 0x004C_4552);
    let mut rows = Vec::new();
    for option in PatterningOption::ALL {
        let budget = ctx.budget(option)?;
        let mut tdp_mp = Vec::with_capacity(trials);
        let mut tdp_both = Vec::with_capacity(trials);
        let mut rvar_ler_only = Vec::with_capacity(trials);
        for k in 0..trials {
            let mut rng = base.substream(k as u64);
            let draw = sample_draw(option, &budget, &mut rng)?;
            let printed = match apply_draw(&stack, &draw) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let t = printed.track(bl);
            let (w_mp, g_lo, g_hi) = (
                t.width_nm(),
                printed.gap_below_nm(bl).expect("interior track"),
                printed.gap_above_nm(bl).expect("interior track"),
            );
            let profile = ler.sample_profile(n, seg_len_nm, &mut rng)?;
            let flat = vec![0.0; n];

            let (r_mp, c_mp) = realize(w_mp, g_lo, g_hi, &flat)?;
            let (r_both, c_both) = realize(w_mp, g_lo, g_hi, &profile)?;
            tdp_mp.push(model.tdp_percent(n, r_mp, c_mp));
            tdp_both.push(model.tdp_percent(n, r_both, c_both));

            // LER on nominal geometry, for the Jensen-effect column.
            let nom_t = nominal_printed.track(bl);
            let (r_ler, _) = realize(
                nom_t.width_nm(),
                nominal_printed.gap_below_nm(bl).expect("interior"),
                nominal_printed.gap_above_nm(bl).expect("interior"),
                &profile,
            )?;
            rvar_ler_only.push(r_ler);
        }
        let s_mp: mpvar_stats::Summary = tdp_mp.iter().copied().collect();
        let s_both: mpvar_stats::Summary = tdp_both.iter().copied().collect();
        let s_rler: mpvar_stats::Summary = rvar_ler_only.iter().copied().collect();
        rows.push((option, s_mp.std_dev(), s_both.std_dev(), s_rler.mean()));
    }

    Ok(ExtensionLer {
        n,
        ler_sigma_nm: ler.sigma_nm(),
        rows,
    })
}

impl ExtensionLer {
    /// The row of one option.
    pub fn of(&self, option: PatterningOption) -> Option<&(PatterningOption, f64, f64, f64)> {
        self.rows.iter().find(|(o, _, _, _)| *o == option)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Extension E2: line-edge roughness (sigma {}nm) on top of MP, n = {}",
                self.ler_sigma_nm, self.n
            ),
            &[
                "option",
                "tdp sigma, MP only",
                "tdp sigma, MP+LER",
                "mean R_var, LER only",
            ],
        );
        for (option, s_mp, s_both, r_ler) in &self.rows {
            t.row(&[
                option.paper_label(),
                &format!("{s_mp:.3}%"),
                &format!("{s_both:.3}%"),
                &format!("{r_ler:.5}"),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Extension E3 — node scaling: N10 versus N7 under the same budgets
// ---------------------------------------------------------------------------

/// Extension E3: the paper's "scaling exacerbates this" claim, tested —
/// the same absolute 3σ budgets applied to N10-class and N7-class
/// geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionScaling {
    /// `(node name, option, worst dC_bl %, tdp sigma %)` rows.
    pub rows: Vec<(String, PatterningOption, f64, f64)>,
    /// Array size of the sigma column.
    pub n: usize,
}

/// Runs the cross-node comparison at `n = 64` (or the largest context
/// size): worst-case C impact and Monte-Carlo sigma per option on the
/// N10 preset and the scaled N7 preset.
///
/// # Errors
///
/// Propagates search / Monte-Carlo failures.
pub fn extension_scaling(ctx: &ExperimentContext) -> Result<ExtensionScaling, CoreError> {
    let n = ctx.pinned_height();
    let mut rows = Vec::new();
    for tech in [n10(), mpvar_tech::preset::n7()] {
        let cell = BitcellGeometry::hd(&tech)?;
        for option in PatterningOption::ALL {
            let budget = VariationBudget::paper_default(option, ctx.le3_overlay_nm)?;
            let wc = find_worst_case(&tech, &cell, option, &budget)?;
            let dist = tdp_distribution(&tech, &cell, option, &budget, n, &ctx.mc)?;
            rows.push((
                tech.name().to_string(),
                option,
                wc.variation.c_percent(),
                dist.sigma_percent(),
            ));
        }
    }
    Ok(ExtensionScaling { rows, n })
}

impl ExtensionScaling {
    /// The row for one node/option pair.
    pub fn of(
        &self,
        node: &str,
        option: PatterningOption,
    ) -> Option<&(String, PatterningOption, f64, f64)> {
        self.rows
            .iter()
            .find(|(t, o, _, _)| t == node && *o == option)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Extension E3: node scaling under constant 3-sigma budgets (n = {})",
                self.n
            ),
            &["node", "option", "worst dC_bl", "tdp sigma (%)"],
        );
        for (node, option, dc, sigma) in &self.rows {
            t.row(&[
                node,
                option.paper_label(),
                &pct(*dc),
                &format!("{sigma:.3}"),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick().unwrap()
    }

    #[test]
    fn table1_orders_options_as_paper() {
        let t1 = table1(&ctx()).unwrap();
        assert_eq!(t1.worst_cases.len(), 3);
        let le3 = t1.of(PatterningOption::Le3).variation.c_percent();
        let sadp = t1.of(PatterningOption::Sadp).variation.c_percent();
        let euv = t1.of(PatterningOption::Euv).variation.c_percent();
        assert!(le3 > euv && euv > sadp, "{le3} / {euv} / {sadp}");
        let report = t1.report().render();
        assert!(report.contains("LELELE"));
        assert!(report.contains("SADP"));
    }

    #[test]
    fn fig4_and_downstream_tables() {
        let c = ctx();
        let t1 = table1(&c).unwrap();
        let f4 = fig4(&c, &t1).unwrap();
        assert_eq!(f4.sizes, vec![8, 16]);
        // LE3 penalty dominates at every size.
        let le3 = f4.tdp_percent(PatterningOption::Le3);
        let sadp = f4.tdp_percent(PatterningOption::Sadp);
        for (a, b) in le3.iter().zip(&sadp) {
            assert!(a > b, "LE3 {a}% vs SADP {b}%");
        }
        assert!(f4.report().render().contains("10x16"));

        let t2 = table2(&c, &f4).unwrap();
        assert_eq!(t2.rows.len(), 2);
        for &(_, sim, formula) in &t2.rows {
            assert!(sim > 0.0 && formula > 0.0);
            // Same order of magnitude (the paper's own deviation is 2-4x).
            let ratio = sim / formula;
            assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
        }
        assert!(t2.report().render().contains("ratio"));

        let t3 = table3(&c, &t1, &f4).unwrap();
        // Formula tracks the simulation direction and magnitude. At the
        // tiny quick-context sizes the testbench's fixed caps (internal
        // node, device junctions) dilute the simulated penalty more than
        // the formula's C_pre does, so allow a generous band here; the
        // paper-size agreement is exercised by the repro harness.
        for i in 0..t3.sizes.len() {
            let gap = (t3.simulation[0][i] - t3.formula[0][i]).abs();
            assert!(gap < 13.0, "LE3 gap {gap}pp at n={}", t3.sizes[i]);
            assert!(
                t3.simulation[0][i] > 0.0 && t3.formula[0][i] > 0.0,
                "both methods must show a positive LE3 penalty"
            );
        }
        assert!(t3.report().render().contains("simulation"));
    }

    #[test]
    fn fig5_and_table4() {
        let c = ctx();
        let f5 = fig5(&c).unwrap();
        assert_eq!(f5.distributions.len(), 3);
        let report = f5.report();
        assert!(report.contains("sigma"));
        assert!(report.contains('#'));

        let t4 = table4(&c).unwrap();
        assert_eq!(t4.rows.len(), 6);
        // Sigma rises monotonically along the LE3 overlay sweep.
        let sweep: Vec<f64> = t4.rows[..4].iter().map(|&(_, s, _, _)| s).collect();
        for w in sweep.windows(2) {
            assert!(w[1] > w[0] * 0.9, "sweep not rising: {sweep:?}");
        }
        // LE3 at 8nm is well above SADP (paper: "more than double").
        let le3_8 = t4.sigma_of("LELELE 8nm").unwrap();
        let sadp = t4.sigma_of("SADP").unwrap();
        assert!(le3_8 > 1.5 * sadp, "{le3_8} vs {sadp}");
        assert!(t4.report().render().contains("std deviation"));
    }

    #[test]
    fn ablations() {
        let c = ctx();
        let t1 = table1(&c).unwrap();
        let f4 = fig4(&c, &t1).unwrap();

        let a1 = ablation_delay_models(&c, &f4).unwrap();
        for &(_, sim, lumped, elmore) in &a1.rows {
            assert!(elmore < lumped, "elmore below lumped");
            assert!(sim > 0.0);
        }
        assert!(a1.report().render().contains("elmore"));

        let a2 = ablation_bl_width(&c).unwrap();
        assert_eq!(a2.rows.len(), 4);
        // LE3 dominates at every width.
        for (_, deltas) in &a2.rows {
            assert!(deltas[0] > deltas[1] && deltas[0] > deltas[2]);
        }

        let a3 = ablation_sadp_anticorrelation(&c).unwrap();
        // The defining physics: strongly negative correlation.
        assert!(a3.pearson_r < -0.5, "pearson {}", a3.pearson_r);
        assert!(a3.worst_rbl_percent < 0.0);
        assert!(a3.worst_rvss_percent > 0.0);
        assert!(a3.report().render().contains("pearson"));
    }

    #[test]
    fn le2_sits_between_le3_and_single_patterning() {
        let mut c = ctx();
        c.mc.trials = 800;
        let e1 = extension_le2(&c).unwrap();
        assert_eq!(e1.rows.len(), 4);
        let le3 = e1.of(PatterningOption::Le3).unwrap();
        let le2 = e1.of(PatterningOption::Le2).unwrap();
        let euv = e1.of(PatterningOption::Euv).unwrap();
        // With two masks, both neighbours of a bit line share a mask, so
        // an overlay shift closes one gap while opening the other: the
        // worst-case C hit is far below LE3's two-sided squeeze...
        assert!(le2.1 < 0.6 * le3.1, "LE2 {} vs LE3 {}", le2.1, le3.1);
        // ...and its sigma sits well below LE3's: the anti-symmetric gap
        // motion cancels to first order, leaving only the convexity
        // residue, comparable to (in our model slightly below) EUV's
        // fully-correlated CD effect and above SADP's.
        let sadp = e1.of(PatterningOption::Sadp).unwrap();
        assert!(le2.3 < le3.3, "LE2 sigma {} vs LE3 {}", le2.3, le3.3);
        assert!(le2.3 > sadp.3, "LE2 sigma {} vs SADP {}", le2.3, sadp.3);
        assert!(le2.3 < 1.3 * euv.3, "LE2 sigma {} vs EUV {}", le2.3, euv.3);
        assert!(e1.report().render().contains("LELE"));
    }

    #[test]
    fn scaling_exacerbates_variability() {
        // The paper's introduction, tested: constant absolute budgets on
        // smaller geometry hurt more.
        let mut c = ctx();
        c.mc.trials = 600;
        let e3 = extension_scaling(&c).unwrap();
        assert_eq!(e3.rows.len(), 6);
        for option in PatterningOption::ALL {
            let n10_row = e3.of("n10", option).unwrap();
            let n7_row = e3.of("n7", option).unwrap();
            assert!(
                n7_row.2 > n10_row.2,
                "{option}: N7 worst dC {} vs N10 {}",
                n7_row.2,
                n10_row.2
            );
            assert!(
                n7_row.3 > n10_row.3,
                "{option}: N7 sigma {} vs N10 {}",
                n7_row.3,
                n10_row.3
            );
        }
        assert!(e3.report().render().contains("n7"));
    }

    #[test]
    fn ler_adds_spread_and_jensen_resistance() {
        let mut c = ctx();
        c.mc.trials = 400;
        let e2 = extension_ler(&c).unwrap();
        assert_eq!(e2.rows.len(), 3);
        for (option, s_mp, s_both, r_ler) in &e2.rows {
            // LER only ever adds variance.
            assert!(s_both >= s_mp, "{option}: {s_both} < {s_mp}");
            // Jensen: E[1/w] > 1/E[w] makes the LER-only mean R_var > 1.
            assert!(
                *r_ler > 1.0 && *r_ler < 1.02,
                "{option}: mean LER R_var {r_ler}"
            );
        }
        // LER matters relatively more for the quiet options: the SADP
        // sigma grows by a larger factor than LE3's.
        let le3 = e2.of(PatterningOption::Le3).unwrap();
        let sadp = e2.of(PatterningOption::Sadp).unwrap();
        let le3_growth = le3.2 / le3.1;
        let sadp_growth = sadp.2 / sadp.1;
        assert!(
            sadp_growth >= le3_growth,
            "SADP growth {sadp_growth} vs LE3 {le3_growth}"
        );
        assert!(e2.report().render().contains("LER"));
    }

    #[test]
    fn context_constructors() {
        let p = ExperimentContext::paper().unwrap();
        assert_eq!(p.sizes, vec![16, 64, 256, 1024]);
        assert_eq!(p.mc.trials, 20_000);
        let q = ExperimentContext::quick().unwrap();
        assert!(q.mc.trials < p.mc.trials);
        assert!(q.budget(PatterningOption::Le3).is_ok());
    }
}
