//! The paper's analytical lumped-RC read-time formula (§III.A).
//!
//! Starting from the RC step response `V(t) = (1 − e^(−t/RC)) V` (eq. 1),
//! the time to a given discharge level is `td = a · RC` (eq. 2) with
//! `a = −ln(1 − level)`; for the paper's 10% level `a ≈ 0.105` (eq. 3).
//! Expanding the lumped R and C into per-cell parasitics and the array
//! length `n` gives eq. 4:
//!
//! ```text
//! td = a · (n·R_bl·R_var + R_FE) · (n·(C_bl·C_var + C_FE) + C_pre(n))
//! ```
//!
//! which is a quadratic-like polynomial in `n` (eq. 5). The read-time
//! penalty is the ratio `td(R_var, C_var) / td(1, 1) − 1`.

use mpvar_sram::FormulaParams;

use crate::error::CoreError;

/// The analytical lumped-RC `td` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalModel {
    params: FormulaParams,
    a: f64,
    discharge_level: f64,
}

impl AnalyticalModel {
    /// Creates a model for the given per-cell parameters and discharge
    /// level (fraction of the precharge voltage; the paper's sense
    /// criterion 70mV/0.7V is `0.10`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when `discharge_level` is outside
    /// `(0, 1)`.
    pub fn new(params: FormulaParams, discharge_level: f64) -> Result<Self, CoreError> {
        if !(discharge_level > 0.0 && discharge_level < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "discharge_level",
                value: discharge_level,
                constraint: "must lie strictly between 0 and 1",
            });
        }
        Ok(Self {
            params,
            a: -(1.0 - discharge_level).ln(),
            discharge_level,
        })
    }

    /// The per-cell parameters.
    pub fn params(&self) -> &FormulaParams {
        &self.params
    }

    /// The discharge-level constant `a` of eq. 2.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The configured discharge level.
    pub fn discharge_level(&self) -> f64 {
        self.discharge_level
    }

    /// Eq. 4: analytical `td` in seconds for an `n`-cell column with the
    /// given variation multipliers (`1.0` = nominal).
    pub fn td_s(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        let p = &self.params;
        let nf = n as f64;
        let r = nf * p.rbl_ohm * r_var + p.rfe_ohm;
        let c = nf * (p.cbl_f * c_var + p.cfe_f) + p.cpre_f(n);
        self.a * r * c
    }

    /// Nominal `td` (both multipliers 1).
    pub fn td_nominal_s(&self, n: usize) -> f64 {
        self.td_s(n, 1.0, 1.0)
    }

    /// Read-time penalty as a ratio: `td / td_nominal − 1`.
    pub fn tdp(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        self.td_s(n, r_var, c_var) / self.td_nominal_s(n) - 1.0
    }

    /// Read-time penalty in percent (the unit of Tables III/IV).
    pub fn tdp_percent(&self, n: usize, r_var: f64, c_var: f64) -> f64 {
        self.tdp(n, r_var, c_var) * 100.0
    }

    /// Eq. 5's polynomial view: coefficients `(k2, k1, k0)` such that
    /// `td = k2 n² + k1 n + k0` for fixed multipliers (with the paper's
    /// linear `C_pre(n)`, the "almost linear" and "almost constant"
    /// terms of eq. 5 become exact).
    pub fn polynomial_coefficients(&self, r_var: f64, c_var: f64) -> (f64, f64, f64) {
        let p = &self.params;
        let cb = p.cbl_f * c_var + p.cfe_f;
        let rb = p.rbl_ohm * r_var;
        // td = a (n rb + RFE)(n cb + n cpre1) with cpre(n) = cpre1 * n:
        let cp1 = p.cpre_per_cell_f;
        let k2 = self.a * rb * (cb + cp1);
        let k1 = self.a * p.rfe_ohm * (cb + cp1);
        let k0 = 0.0;
        (k2, k1, k0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_sram::BitcellGeometry;
    use mpvar_tech::preset::n10;

    fn model() -> AnalyticalModel {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        let params = FormulaParams::derive(&tech, &cell, 0.7).unwrap();
        AnalyticalModel::new(params, 0.10).unwrap()
    }

    #[test]
    fn discharge_constant_matches_eq3() {
        let m = model();
        // Paper eq. 3: t ≈ 0.105 RC for 10% discharge.
        assert!((m.a() - 0.10536).abs() < 1e-4, "a = {}", m.a());
        assert!((m.discharge_level() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn level_validation() {
        let p = model().params;
        assert!(AnalyticalModel::new(p, 0.0).is_err());
        assert!(AnalyticalModel::new(p, 1.0).is_err());
        assert!(AnalyticalModel::new(p, -0.5).is_err());
        assert!(AnalyticalModel::new(p, 0.5).is_ok());
    }

    #[test]
    fn td_grows_superlinearly_in_n() {
        let m = model();
        let sizes = [16usize, 64, 256, 1024];
        let tds: Vec<f64> = sizes.iter().map(|&n| m.td_nominal_s(n)).collect();
        for w in tds.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Between n and 4n the growth exceeds 4x (quadratic term) but
        // stays below 16x.
        for i in 0..sizes.len() - 1 {
            let ratio = tds[i + 1] / tds[i];
            assert!(ratio > 4.0 && ratio < 16.0, "ratio {ratio}");
        }
    }

    #[test]
    fn td_magnitude_matches_paper_regime() {
        // The paper's formula column (Table II) spans ~2ps..144ps over
        // 16..1024 cells; ours must be the same order of magnitude.
        let m = model();
        let td16 = m.td_nominal_s(16) * 1e12;
        let td1024 = m.td_nominal_s(1024) * 1e12;
        assert!(td16 > 0.5 && td16 < 50.0, "td16 = {td16}ps");
        assert!(td1024 > 50.0 && td1024 < 1500.0, "td1024 = {td1024}ps");
    }

    #[test]
    fn tdp_sign_follows_variation() {
        let m = model();
        assert!(m.tdp(64, 1.0, 1.5) > 0.0);
        assert!(m.tdp(64, 1.0, 0.8) < 0.0);
        assert!(m.tdp(64, 1.0, 1.0).abs() < 1e-12);
        // Pure R increase also slows the read, but weakly (FET-limited).
        let r_only = m.tdp(64, 1.5, 1.0);
        assert!(r_only > 0.0 && r_only < 0.01);
    }

    #[test]
    fn r_variation_matters_more_at_large_n() {
        let m = model();
        let small = m.tdp(16, 0.9, 1.0).abs();
        let large = m.tdp(1024, 0.9, 1.0).abs();
        assert!(large > small);
    }

    #[test]
    fn negative_rvar_can_flip_tdp_sign_at_length() {
        // The paper observes negative EUV tdp at n = 1024 (Fig. 4):
        // a strong-enough R drop with a mild C rise goes negative for
        // long arrays. Verify the formula can reproduce that crossover
        // with the appropriate multipliers.
        let m = model();
        let r_var = 0.5;
        let c_var = 1.002;
        let tdp_short = m.tdp(4, r_var, c_var);
        let tdp_long = m.tdp(4096, r_var, c_var);
        assert!(tdp_short > tdp_long, "penalty falls with n under R drop");
    }

    #[test]
    fn polynomial_matches_direct_evaluation() {
        let m = model();
        let (k2, k1, k0) = m.polynomial_coefficients(0.9, 1.3);
        for n in [1usize, 16, 64, 256, 1024] {
            let nf = n as f64;
            let poly = k2 * nf * nf + k1 * nf + k0;
            let direct = m.td_s(n, 0.9, 1.3);
            assert!(
                ((poly - direct) / direct).abs() < 1e-12,
                "n={n}: {poly} vs {direct}"
            );
        }
    }

    #[test]
    fn tdp_percent_scales() {
        let m = model();
        let frac = m.tdp(64, 0.9, 1.5);
        assert!((m.tdp_percent(64, 0.9, 1.5) - frac * 100.0).abs() < 1e-12);
    }
}
