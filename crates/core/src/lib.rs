//! The paper's analysis layer: worst-case variability, the analytical
//! read-time formula, and Monte-Carlo `tdp` distributions.
//!
//! This crate reproduces the three contributions of *"Impact of
//! Interconnect Multiple-Patterning Variability on SRAMs"* (Karageorgos
//! et al., DATE 2015) on top of the `mpvar` substrates:
//!
//! * [`worst_case`] — §II: enumerate CD/overlay corner combinations per
//!   patterning option, find the corner maximizing the bit-line
//!   capacitance (Table I), and simulate the read-time penalty across
//!   array sizes (Fig. 4);
//! * [`formula`] — §III.A: the lumped-RC analytical `td` model (eqs.
//!   1–5) parameterized by per-cell parasitics and the array size;
//! * [`elmore`] — the distributed (Elmore) refinement the paper names as
//!   the better approximation of the bit line;
//! * [`montecarlo`] — §III.B: the Monte-Carlo `tdp` distribution from
//!   sampled process variation (Fig. 5, Table IV);
//! * [`rareevent`] — the 6σ extension: adaptive importance-sampled
//!   read-failure probabilities per option and timing margin, far past
//!   the reach of the plain Monte-Carlo;
//! * [`experiments`] — typed runners regenerating every table and
//!   figure, consumed by the `repro` binary and the benches.
//!
//! # Example
//!
//! ```
//! use mpvar_core::formula::AnalyticalModel;
//! use mpvar_sram::{BitcellGeometry, FormulaParams};
//! use mpvar_tech::preset::n10;
//!
//! let tech = n10();
//! let cell = BitcellGeometry::n10_hd(&tech)?;
//! let params = FormulaParams::derive(&tech, &cell, 0.7)?;
//! let model = AnalyticalModel::new(params, 0.10)?; // 10% discharge level
//! let td64 = model.td_s(64, 1.0, 1.0);
//! let tdp = model.tdp_percent(64, 0.9, 1.5); // R -10%, C +50%
//! assert!(td64 > 0.0);
//! assert!(tdp > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod elmore;
pub mod error;
pub mod experiments;
pub mod formula;
pub mod montecarlo;
pub mod nominal;
pub mod rareevent;
pub mod report;
pub mod sensitivity;
pub mod timing_yield;
pub mod worst_case;
pub mod writeexp;

pub use elmore::ElmoreModel;
pub use error::CoreError;
pub use experiments::{ExperimentContext, ExperimentContextBuilder};
pub use formula::AnalyticalModel;
pub use montecarlo::{
    tdp_distribution, tdp_distribution_spice, tdp_distribution_with, McConfig, McConfigBuilder,
    SpiceMcOptions, TdpDistribution,
};
pub use mpvar_exec::ExecConfig;
pub use nominal::{NominalCache, NominalWindow};
pub use rareevent::{
    yield_6sigma, FormulaYieldProblem, SpiceWriteYieldProblem, SpiceYieldProblem, YieldRow,
    YieldSettings, YieldTable, ZMap,
};
pub use sensitivity::{sensitivity_profile, SensitivityProfile};
pub use timing_yield::{yield_curve, YieldCurve};
pub use worst_case::{find_worst_case, find_worst_case_with, WorstCase};
pub use writeexp::{
    sense_margin, wl_delay, write_margin, write_time, write_yield, SenseMargin, WlDelay,
    WriteMargin, WriteStudySettings, WriteTime, WriteYieldRow, WriteYieldTable,
};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::elmore::ElmoreModel;
    pub use crate::error::CoreError;
    pub use crate::experiments;
    pub use crate::experiments::{ExperimentContext, ExperimentContextBuilder};
    pub use crate::formula::AnalyticalModel;
    pub use crate::montecarlo::{
        tdp_distribution, tdp_distribution_spice, tdp_distribution_with, McConfig, McConfigBuilder,
        SpiceMcOptions, TdpDistribution,
    };
    pub use crate::nominal::{NominalCache, NominalWindow};
    pub use crate::rareevent::{
        yield_6sigma, FormulaYieldProblem, SpiceWriteYieldProblem, SpiceYieldProblem, YieldRow,
        YieldSettings, YieldTable, ZMap,
    };
    pub use crate::sensitivity::{sensitivity_profile, SensitivityProfile};
    pub use crate::timing_yield::{yield_curve, YieldCurve};
    pub use crate::worst_case::{find_worst_case, find_worst_case_with, WorstCase};
    pub use crate::writeexp::{
        sense_margin, wl_delay, write_margin, write_time, write_yield, SenseMargin, WlDelay,
        WriteMargin, WriteStudySettings, WriteTime, WriteYieldRow, WriteYieldTable,
    };
    pub use mpvar_exec::ExecConfig;
}
