//! Monte-Carlo distribution of the read-time penalty (paper §III.B).
//!
//! Each trial samples one process-variation draw, prints the bit-line
//! window, extracts `R_var`/`C_var`, and evaluates the analytical
//! formula — "this formula ... allows a fast extraction of the
//! statistical distribution of the read time penalty, using the
//! Monte-Carlo method". Draws whose geometry shorts (deep-tail overlay
//! events) are yield losses, not timing samples; they are counted and
//! excluded, mirroring inspection screening.
//!
//! # Parallel execution
//!
//! Trial `k` always consumes RNG substream `k`, so trials are farmed to
//! worker threads by contiguous substream-index chunks (`mpvar-exec`)
//! and the sample vector is **bit-identical to the sequential run for a
//! given seed regardless of thread count**. Shorted draws are tallied
//! per index during the deterministic in-order merge, never from racy
//! shared counters.

use mpvar_exec::ExecConfig;
use mpvar_extract::{extract_track, RelativeVariation};
use mpvar_litho::{apply_draw, sample_draw, Draw};
use mpvar_sram::{
    simulate_read, simulate_read_batch_in, BitcellGeometry, ReadBatchScratch, ReadConfig,
    ReadOutcome, SramError,
};
use mpvar_stats::{Histogram, RngStream, Summary};
use mpvar_tech::{PatterningOption, TechDb, VariationBudget};
use mpvar_trace::names;

use crate::error::CoreError;
use crate::nominal::NominalWindow;

/// Monte-Carlo configuration.
///
/// Construct via [`McConfig::default`] or [`McConfig::builder`]; the
/// struct is `#[non_exhaustive]` so future knobs are not breaking
/// changes (fields stay public for reading and in-place mutation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct McConfig {
    /// Number of trials.
    pub trials: usize,
    /// RNG seed (every run with the same seed is bit-identical).
    pub seed: u64,
    /// Thread-count knob for the parallel trial farm. Results are
    /// bit-identical for any setting; `ExecConfig::SERIAL` recovers the
    /// sequential code path exactly.
    pub exec: ExecConfig,
}

impl Default for McConfig {
    /// 20 000 trials, seed 2015 (the paper's year), all cores.
    fn default() -> Self {
        Self {
            trials: 20_000,
            seed: 2015,
            exec: ExecConfig::default(),
        }
    }
}

impl McConfig {
    /// A builder starting from the defaults.
    ///
    /// ```
    /// use mpvar_core::montecarlo::McConfig;
    ///
    /// let mc = McConfig::builder().trials(500).seed(7).threads(1).build();
    /// assert_eq!((mc.trials, mc.seed), (500, 7));
    /// assert_eq!(mc.exec.effective_threads(), 1);
    /// ```
    pub fn builder() -> McConfigBuilder {
        McConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`McConfig`].
#[derive(Debug, Clone, Copy)]
pub struct McConfigBuilder {
    cfg: McConfig,
}

impl McConfigBuilder {
    /// Sets the trial count.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.cfg.trials = trials;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the trial-farm thread configuration.
    #[must_use]
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.cfg.exec = exec;
        self
    }

    /// Pins the trial farm to `threads` workers.
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.exec(ExecConfig::with_threads(threads))
    }

    /// Finalizes the configuration.
    pub fn build(self) -> McConfig {
        self.cfg
    }
}

/// The sampled `tdp` distribution of one patterning option.
#[derive(Debug, Clone, PartialEq)]
pub struct TdpDistribution {
    option: PatterningOption,
    n: usize,
    samples_percent: Vec<f64>,
    summary: Summary,
    shorted_draws: usize,
    failed_reads: usize,
}

impl TdpDistribution {
    /// Reassembles a distribution from its stored parts — the inverse
    /// of reading every accessor, used by the `mpvar-study` artifact
    /// codec to round-trip persisted results bit-exactly. Values are
    /// taken verbatim (in particular `summary` is NOT re-derived from
    /// the samples, preserving the original accumulation order), so
    /// feed this only parts that came from a real distribution.
    pub fn from_parts(
        option: PatterningOption,
        n: usize,
        samples_percent: Vec<f64>,
        summary: Summary,
        shorted_draws: usize,
        failed_reads: usize,
    ) -> TdpDistribution {
        TdpDistribution {
            option,
            n,
            samples_percent,
            summary,
            shorted_draws,
            failed_reads,
        }
    }

    /// The patterning option sampled.
    pub fn option(&self) -> PatterningOption {
        self.option
    }

    /// The array size the formula was evaluated at.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-trial `tdp` values, in percent.
    pub fn samples_percent(&self) -> &[f64] {
        &self.samples_percent
    }

    /// Summary statistics of `tdp` (percent).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The standard deviation of `tdp` in percent — Table IV's metric.
    pub fn sigma_percent(&self) -> f64 {
        self.summary.std_dev()
    }

    /// Sampled draws that printed shorted geometry and were excluded.
    pub fn shorted_draws(&self) -> usize {
        self.shorted_draws
    }

    /// Trials whose read never tripped the sense threshold — *measured
    /// failures* that consumed a trial slot without contributing a `td`
    /// sample. Always 0 on the formula route; on the SPICE route a
    /// pathological trial lands here instead of aborting the wave.
    pub fn failed_reads(&self) -> usize {
        self.failed_reads
    }

    /// Histogram of the distribution (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates histogram construction failure (degenerate range).
    pub fn histogram(&self, bins: usize) -> Result<Histogram, CoreError> {
        Ok(Histogram::from_data(&self.samples_percent, bins)?)
    }
}

/// Samples the `tdp` distribution of `option` at array size `n` using
/// the analytical formula with extracted `R_var`/`C_var` per trial.
///
/// # Errors
///
/// Propagated tech/extraction/statistics failures (per-trial shorted
/// geometry is handled internally, not an error).
pub fn tdp_distribution(
    tech: &TechDb,
    cell: &BitcellGeometry,
    option: PatterningOption,
    budget: &VariationBudget,
    n: usize,
    config: &McConfig,
) -> Result<TdpDistribution, CoreError> {
    let window = NominalWindow::build(tech, cell, option)?;
    tdp_distribution_with(&window, budget, n, config)
}

/// How one evaluated trial index resolved, before the in-order merge
/// decides which indices actually count.
enum TrialResolution {
    /// A measured `tdp` sample.
    Sample(f64),
    /// The draw printed shorted geometry: a yield loss, excluded from
    /// the trial count entirely (mirrors inspection screening).
    Shorted,
    /// The simulated operation never completed (e.g. the sense never
    /// tripped): a *measured failure* that consumes its trial slot but
    /// contributes no sample — one pathological trial must not abort
    /// the other lanes of its wave.
    Failed,
}

/// The outcome of evaluating one trial index.
type TrialOutcome = Result<TrialResolution, CoreError>;

/// In-order merge state for the round-based trial farm.
struct Farm {
    trials: usize,
    threads: usize,
    samples: Vec<f64>,
    shorted: usize,
    failed: usize,
    /// Earliest per-trial hard error, surfaced after the dispatch loop
    /// (kept out of the chunk error channel so an error *after* the
    /// final accepted sample is ignored, exactly like a sequential
    /// loop that stops first).
    error: Option<CoreError>,
}

impl Farm {
    /// Trial slots consumed so far (samples plus measured failures).
    fn consumed(&self) -> usize {
        self.samples.len() + self.failed
    }
}

/// Farms trial indices through [`mpvar_exec::dispatch_rounds`] until
/// `trials` slots are consumed by non-shorted trials (samples plus
/// measured failures): each round's size is the current deficit (at
/// least one index per worker), outcomes merge in global index order,
/// and indices past the final consumed slot are discarded — so samples,
/// shorted/failed counts, and surfaced errors are bit-identical to a
/// sequential scan for any thread count.
///
/// `eval_chunk` receives **global** trial-index ranges; trial `k` must
/// consume RNG substream `k`.
fn farm_trials<F>(
    option: PatterningOption,
    trials: usize,
    threads: usize,
    eval_chunk: F,
) -> Result<(Vec<f64>, usize, usize), CoreError>
where
    F: Fn(std::ops::Range<usize>) -> Vec<TrialOutcome> + Sync,
{
    // Hard stop so a pathological budget cannot loop forever: trial
    // indices beyond this bound mean the budget shorts essentially
    // every draw.
    let limit = 20usize.saturating_mul(trials).saturating_add(1000);
    let mut farm = Farm {
        trials,
        threads,
        samples: Vec::with_capacity(trials),
        shorted: 0,
        failed: 0,
        error: None,
    };
    mpvar_exec::dispatch_rounds(
        &mut farm,
        names::SPAN_MC_WAVE,
        limit,
        threads,
        |farm, _round, _consumed| {
            if farm.consumed() >= farm.trials {
                0
            } else {
                (farm.trials - farm.consumed()).max(farm.threads)
            }
        },
        |range| Ok::<Vec<TrialOutcome>, std::convert::Infallible>(eval_chunk(range)),
        |farm, outcome| {
            match outcome {
                Ok(TrialResolution::Sample(s)) => farm.samples.push(s),
                Ok(TrialResolution::Shorted) => {
                    farm.shorted += 1;
                    return std::ops::ControlFlow::Continue(());
                }
                Ok(TrialResolution::Failed) => farm.failed += 1,
                Err(e) => {
                    farm.error = Some(e);
                    return std::ops::ControlFlow::Break(());
                }
            }
            if farm.consumed() == farm.trials {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        },
    )
    .unwrap_or_else(|e| match e {});
    if let Some(e) = farm.error {
        return Err(e);
    }
    if farm.consumed() < farm.trials {
        // The dispatcher exhausted `limit` indices first.
        return Err(CoreError::NoFeasibleCorner {
            option: option.to_string(),
        });
    }
    Ok((farm.samples, farm.shorted, farm.failed))
}

/// [`tdp_distribution`] against a precomputed [`NominalWindow`] — the
/// cache-aware entry point used by the experiment matrix so the nominal
/// setup is derived once per option instead of once per cell.
///
/// # Errors
///
/// Propagated tech/extraction/statistics failures (per-trial shorted
/// geometry is handled internally, not an error).
pub fn tdp_distribution_with(
    window: &NominalWindow<'_>,
    budget: &VariationBudget,
    n: usize,
    config: &McConfig,
) -> Result<TdpDistribution, CoreError> {
    let params = mpvar_sram::FormulaParams::derive(window.tech(), window.cell(), 0.7)?;
    let model = crate::formula::AnalyticalModel::new(params, 0.10)?;
    penalty_distribution_with(window, budget, n, config, &model)
}

/// The *write-time* penalty distribution: the same decomposed-M1
/// population and trial farm as [`tdp_distribution_with`], but the
/// analytical model is built from the write-path parameters (driver +
/// pass gate in series, [`mpvar_sram::FormulaParams::derive_write`]) at
/// the flip level instead of the sense level. Samples are write-time
/// penalty in percent; the summary's sigma is the write-margin spread.
///
/// # Errors
///
/// Propagated tech/extraction/statistics failures, or invalid
/// `driver_strength`/`flip_fraction`.
pub fn twp_distribution_with(
    window: &NominalWindow<'_>,
    budget: &VariationBudget,
    n: usize,
    config: &McConfig,
    driver_strength: f64,
    flip_fraction: f64,
) -> Result<TdpDistribution, CoreError> {
    let params = mpvar_sram::FormulaParams::derive_write(
        window.tech(),
        window.cell(),
        0.7,
        driver_strength,
    )?;
    let model = crate::formula::AnalyticalModel::new(params, flip_fraction)?;
    penalty_distribution_with(window, budget, n, config, &model)
}

/// Shared formula-route penalty farm behind [`tdp_distribution_with`]
/// and [`twp_distribution_with`]: only the analytical model differs.
fn penalty_distribution_with(
    window: &NominalWindow<'_>,
    budget: &VariationBudget,
    n: usize,
    config: &McConfig,
    model: &crate::formula::AnalyticalModel,
) -> Result<TdpDistribution, CoreError> {
    let option = window.option();
    if config.trials == 0 {
        return Err(CoreError::InvalidParameter {
            name: "trials",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }

    let _dist_span = mpvar_trace::span!(
        names::SPAN_MC_DISTRIBUTION,
        option = option.to_string(),
        n = n,
        trials = config.trials,
    );
    let traced = mpvar_trace::enabled();
    let started = traced.then(std::time::Instant::now);

    let base = RngStream::from_seed(config.seed);
    // Trial k consumes substream k: a sample, a shorted draw (yield
    // loss, skipped), or a hard error.
    let eval = |k: u64| -> TrialOutcome {
        let mut rng = base.substream(k);
        let draw = sample_draw(option, budget, &mut rng)?;
        let printed = match apply_draw(window.stack(), &draw) {
            Ok(p) => p,
            Err(_) => return Ok(TrialResolution::Shorted),
        };
        let parasitics = extract_track(&printed, window.bl_index(), window.metal())?;
        let var = RelativeVariation::between(window.nominal(), &parasitics);
        Ok(TrialResolution::Sample(
            model.tdp_percent(n, var.r_var, var.c_var),
        ))
    };

    let threads = config.exec.effective_threads();
    let (samples, shorted, failed) = farm_trials(option, config.trials, threads, |range| {
        range.map(|k| eval(k as u64)).collect()
    })?;

    if traced {
        mpvar_trace::counter_add(names::MC_TRIALS, samples.len() as u64);
        mpvar_trace::counter_add(names::MC_SHORTED, shorted as u64);
        if let Some(started) = started {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                mpvar_trace::gauge_set(names::MC_TRIALS_PER_SEC, samples.len() as f64 / secs);
            }
        }
        // Fixed ±50% tdp buckets in 5% steps, shared by every run so
        // exported histograms are directly comparable.
        let bounds: Vec<f64> = (-10..=10).map(|i| f64::from(i) * 5.0).collect();
        mpvar_trace::histogram_record(names::MC_TDP_PERCENT, &bounds, &samples);
    }

    let summary = samples.iter().copied().collect();
    Ok(TdpDistribution {
        option,
        n,
        samples_percent: samples,
        summary,
        shorted_draws: shorted,
        failed_reads: failed,
    })
}

/// Options for the SPICE-backed Monte-Carlo distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpiceMcOptions {
    /// Read-testbench configuration used for every trial and for the
    /// nominal reference read.
    pub read: ReadConfig,
    /// Trials per batched solver call inside each worker chunk. `0`
    /// runs the per-trial scalar solver; every width produces the same
    /// bits, because the batched kernel is lane-exact and evicts
    /// divergent trials to the scalar path.
    pub batch_width: usize,
}

impl Default for SpiceMcOptions {
    /// Default read testbench with 8-wide solver batches.
    fn default() -> Self {
        Self {
            read: ReadConfig::default(),
            batch_width: 16,
        }
    }
}

/// Classifies one SPICE read result as a trial outcome: a `tdp` sample,
/// a shorted-draw exclusion, or a hard error.
fn read_to_outcome(r: Result<ReadOutcome, SramError>, td_nom_s: f64) -> TrialOutcome {
    match r {
        Ok(o) => Ok(TrialResolution::Sample((o.td_s / td_nom_s - 1.0) * 100.0)),
        // A shorted print is a yield loss — excluded and counted, the
        // same screening the formula path applies at `apply_draw`.
        Err(SramError::Litho(_)) => Ok(TrialResolution::Shorted),
        // A sense that never trips is a *measured failure* of this one
        // trial — recorded, not escalated, so the rest of the wave's
        // lanes keep their results.
        Err(SramError::SenseNeverTripped { .. }) => Ok(TrialResolution::Failed),
        Err(e) => Err(e.into()),
    }
}

/// Samples the `tdp` distribution of `option` at column depth `n_cells`
/// with **full SPICE read simulations** per trial (the methodology
/// behind Fig. 5) instead of the analytical formula: each trial prints
/// one sampled draw, builds the §II.C read testbench, and measures `td`
/// against the nominal read.
///
/// Worker threads receive contiguous chunks of trial indices
/// ([`mpvar_exec::try_par_chunk_map`]) and push them through the
/// batched trial solver in [`SpiceMcOptions::batch_width`]-wide lanes,
/// reusing one solver workspace per chunk so steady-state waves
/// allocate nothing in the solve loop. Trial `k` always consumes RNG
/// substream `k`, so results are **bit-identical for a given seed at
/// any thread count and any batch width**.
///
/// # Errors
///
/// Propagated tech/litho/SPICE failures (shorted draws are yield
/// losses — excluded and counted, not errors), or
/// [`CoreError::NoFeasibleCorner`] when the budget shorts essentially
/// every draw.
pub fn tdp_distribution_spice(
    tech: &TechDb,
    cell: &BitcellGeometry,
    option: PatterningOption,
    budget: &VariationBudget,
    n_cells: usize,
    config: &McConfig,
    opts: &SpiceMcOptions,
) -> Result<TdpDistribution, CoreError> {
    if config.trials == 0 {
        return Err(CoreError::InvalidParameter {
            name: "trials",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }

    let _dist_span = mpvar_trace::span!(
        names::SPAN_MC_DISTRIBUTION,
        option = option.to_string(),
        n = n_cells,
        trials = config.trials,
    );
    let traced = mpvar_trace::enabled();
    let started = traced.then(std::time::Instant::now);

    // Nominal reference read: the denominator of every trial's penalty.
    let td_nom_s = simulate_read(tech, cell, &opts.read, n_cells, &Draw::nominal(option))?.td_s;

    let base = RngStream::from_seed(config.seed);

    // One worker chunk of global trial indices: sample draws by
    // substream index, run them in `batch_width`-wide sub-batches
    // through one reusable workspace.
    let eval_chunk = |range: std::ops::Range<usize>| -> Vec<TrialOutcome> {
        let width = opts.batch_width;
        let mut outcomes: Vec<TrialOutcome> = Vec::with_capacity(range.len());
        if width == 0 {
            for i in range {
                let mut rng = base.substream(i as u64);
                outcomes.push(match sample_draw(option, budget, &mut rng) {
                    Ok(d) => read_to_outcome(
                        simulate_read(tech, cell, &opts.read, n_cells, &d),
                        td_nom_s,
                    ),
                    Err(e) => Err(e.into()),
                });
            }
            return outcomes;
        }
        let mut scratch = ReadBatchScratch::new();
        let mut draws: Vec<Draw> = Vec::with_capacity(width);
        let mut lane_slots: Vec<usize> = Vec::with_capacity(width);
        let mut idx = range.start;
        while idx < range.end {
            let stop = (idx + width).min(range.end);
            draws.clear();
            lane_slots.clear();
            for i in idx..stop {
                let mut rng = base.substream(i as u64);
                match sample_draw(option, budget, &mut rng) {
                    Ok(d) => {
                        lane_slots.push(outcomes.len());
                        draws.push(d);
                        // Placeholder; overwritten with the lane result.
                        outcomes.push(Ok(TrialResolution::Shorted));
                    }
                    Err(e) => outcomes.push(Err(e.into())),
                }
            }
            match simulate_read_batch_in(tech, cell, &opts.read, n_cells, &draws, &mut scratch) {
                Ok(lane_results) => {
                    for (&slot, r) in lane_slots.iter().zip(lane_results) {
                        outcomes[slot] = read_to_outcome(r, td_nom_s);
                    }
                }
                Err(e) => {
                    // Structural failure — impossible for the n_cells the
                    // nominal read above already simulated, but if it
                    // surfaces, park it on the sub-batch's first lane so
                    // the in-order merge reports it before any later
                    // outcome.
                    if let Some(&slot) = lane_slots.first() {
                        outcomes[slot] = Err(e.into());
                    }
                }
            }
            idx = stop;
        }
        outcomes
    };

    let threads = config.exec.effective_threads();
    let (samples, shorted, failed) = farm_trials(option, config.trials, threads, eval_chunk)?;

    if traced {
        mpvar_trace::counter_add(names::MC_TRIALS, samples.len() as u64);
        mpvar_trace::counter_add(names::MC_SHORTED, shorted as u64);
        if let Some(started) = started {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                mpvar_trace::gauge_set(names::MC_TRIALS_PER_SEC, samples.len() as f64 / secs);
            }
        }
        let bounds: Vec<f64> = (-10..=10).map(|i| f64::from(i) * 5.0).collect();
        mpvar_trace::histogram_record(names::MC_TDP_PERCENT, &bounds, &samples);
    }

    let summary = samples.iter().copied().collect();
    Ok(TdpDistribution {
        option,
        n: n_cells,
        samples_percent: samples,
        summary,
        shorted_draws: shorted,
        failed_reads: failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn setup() -> (TechDb, BitcellGeometry) {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        (tech, cell)
    }

    fn dist(option: PatterningOption, ol: f64, trials: usize) -> TdpDistribution {
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(option, ol).unwrap();
        tdp_distribution(
            &tech,
            &cell,
            option,
            &budget,
            64,
            &McConfig {
                trials,
                seed: 7,
                ..McConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn distributions_center_near_zero() {
        for option in PatterningOption::ALL {
            let d = dist(option, 8.0, 4000);
            assert_eq!(d.samples_percent().len(), 4000);
            // Mean tdp near 0 (variation is zero-mean), slight positive
            // skew for LE3 (coupling is convex in gap).
            assert!(
                d.summary().mean().abs() < 2.0,
                "{option}: mean {}",
                d.summary().mean()
            );
        }
    }

    #[test]
    fn le3_sigma_dominates_and_grows_with_overlay() {
        let le3_8 = dist(PatterningOption::Le3, 8.0, 4000).sigma_percent();
        let le3_3 = dist(PatterningOption::Le3, 3.0, 4000).sigma_percent();
        let sadp = dist(PatterningOption::Sadp, 8.0, 4000).sigma_percent();
        let euv = dist(PatterningOption::Euv, 8.0, 4000).sigma_percent();
        // Table IV's qualitative content.
        assert!(le3_8 > le3_3, "OL raises sigma: {le3_8} vs {le3_3}");
        assert!(le3_8 > 1.5 * sadp, "LE3(8nm) {le3_8} vs SADP {sadp}");
        assert!(le3_8 > euv, "LE3(8nm) {le3_8} vs EUV {euv}");
        // With tight 3nm OL, LE3 approaches the others (paper's
        // conclusion).
        assert!(le3_3 < 2.5 * euv.max(sadp), "le3_3 = {le3_3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = dist(PatterningOption::Sadp, 8.0, 500);
        let b = dist(PatterningOption::Sadp, 8.0, 500);
        assert_eq!(a.samples_percent(), b.samples_percent());
        assert_eq!(a.sigma_percent(), b.sigma_percent());
    }

    #[test]
    fn histogram_covers_all_samples() {
        let d = dist(PatterningOption::Le3, 8.0, 2000);
        let h = d.histogram(40).unwrap();
        assert_eq!(h.total(), 2000);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn zero_trials_rejected() {
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(PatterningOption::Euv, 8.0).unwrap();
        assert!(tdp_distribution(
            &tech,
            &cell,
            PatterningOption::Euv,
            &budget,
            64,
            &McConfig {
                trials: 0,
                seed: 1,
                ..McConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn spice_distribution_identical_across_widths_and_threads() {
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let run = |width: usize, threads: usize| {
            tdp_distribution_spice(
                &tech,
                &cell,
                PatterningOption::Le3,
                &budget,
                8,
                &McConfig::builder()
                    .trials(10)
                    .seed(11)
                    .threads(threads)
                    .build(),
                &SpiceMcOptions {
                    batch_width: width,
                    ..SpiceMcOptions::default()
                },
            )
            .unwrap()
        };
        let scalar = run(0, 1);
        assert_eq!(scalar.samples_percent().len(), 10);
        // SPICE tdp values are percent-scale, like the formula path's.
        assert!(scalar.summary().std_dev() > 0.01);
        for (width, threads) in [(4, 1), (10, 2), (3, 2)] {
            let batched = run(width, threads);
            assert_eq!(
                scalar.samples_percent(),
                batched.samples_percent(),
                "width {width}, {threads} threads"
            );
            assert_eq!(scalar.shorted_draws(), batched.shorted_draws());
        }
    }

    #[test]
    fn accessors() {
        let d = dist(PatterningOption::Euv, 8.0, 100);
        assert_eq!(d.option(), PatterningOption::Euv);
        assert_eq!(d.n(), 64);
        assert_eq!(d.shorted_draws(), 0);
        assert_eq!(d.failed_reads(), 0, "formula route never fails a read");
    }

    #[test]
    fn write_penalty_distribution_runs_on_the_same_farm() {
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let window =
            crate::nominal::NominalWindow::build(&tech, &cell, PatterningOption::Le3).unwrap();
        let cfg = McConfig::builder().trials(2000).seed(9).build();
        let write = twp_distribution_with(&window, &budget, 64, &cfg, 4.0, 0.5).unwrap();
        let read = tdp_distribution_with(&window, &budget, 64, &cfg).unwrap();
        assert_eq!(write.samples_percent().len(), 2000);
        // Same zero-mean population, both percent-scale spreads.
        assert!(write.summary().mean().abs() < 2.0);
        assert!(write.sigma_percent() > 0.1);
        // The write path is more FET-dominated (driver + pass in a
        // stiffer series path), so wire-induced spread differs from the
        // read's but stays in the same family.
        let ratio = write.sigma_percent() / read.sigma_percent();
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
        // Determinism: same seed, same bits.
        let again = twp_distribution_with(&window, &budget, 64, &cfg, 4.0, 0.5).unwrap();
        assert_eq!(write.samples_percent(), again.samples_percent());
    }

    #[test]
    fn sense_never_tripped_is_a_recorded_failure_not_a_wave_abort() {
        // Plant never-tripping trials: a tight simulation window
        // (window_scale 0.6, no retries) that the nominal read clears
        // but roughly half the Le3 draws at this seed do not. Before
        // the fix, the first such trial aborted the whole farm with
        // SramError::SenseNeverTripped, killing the wave's other lanes;
        // now each failure consumes its trial slot as a measured
        // failure and the distribution completes.
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let run = |width: usize, threads: usize| {
            tdp_distribution_spice(
                &tech,
                &cell,
                PatterningOption::Le3,
                &budget,
                64,
                &McConfig::builder()
                    .trials(6)
                    .seed(11)
                    .threads(threads)
                    .build(),
                &SpiceMcOptions {
                    read: ReadConfig {
                        window_scale: 0.6,
                        max_retries: 0,
                        ..ReadConfig::default()
                    },
                    batch_width: width,
                },
            )
        };
        let scalar = run(0, 1).expect("per-trial failures must not abort the farm");
        assert!(scalar.failed_reads() > 0, "the plant produced no failure");
        assert!(
            !scalar.samples_percent().is_empty(),
            "good lanes must survive alongside the failing ones"
        );
        assert_eq!(
            scalar.failed_reads() + scalar.samples_percent().len(),
            6,
            "failures consume trial slots"
        );
        // Bit-identical accounting for any batch width / thread count:
        // the batched path resolves failing lanes through the scalar
        // fallback without killing the other lanes of the wave.
        for (width, threads) in [(4, 1), (3, 2)] {
            let batched = run(width, threads).unwrap();
            assert_eq!(batched.failed_reads(), scalar.failed_reads());
            assert_eq!(batched.shorted_draws(), scalar.shorted_draws());
            assert_eq!(batched.samples_percent(), scalar.samples_percent());
        }
    }

    #[test]
    fn nominal_read_failure_still_surfaces_as_an_error() {
        // The nominal reference read runs outside the farm; if *it*
        // cannot trip the sense there is no denominator and the whole
        // distribution is meaningless — that stays a hard error.
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(PatterningOption::Euv, 8.0).unwrap();
        let err = tdp_distribution_spice(
            &tech,
            &cell,
            PatterningOption::Euv,
            &budget,
            0, // structural error path
            &McConfig::builder().trials(2).seed(1).threads(1).build(),
            &SpiceMcOptions::default(),
        );
        assert!(err.is_err());
    }
}
