//! Shared nominal-geometry setup for the analysis hot paths.
//!
//! Both the corner search ([`crate::worst_case`]) and the Monte-Carlo
//! sampler ([`crate::montecarlo`]) analyse the same one-cell bit-line
//! window: build the column stack, print it with the nominal draw,
//! locate the `BL` track, and extract its nominal parasitics. That
//! setup used to be duplicated in both modules (and re-derived for
//! every experiment cell); [`NominalWindow`] computes it once and
//! [`NominalCache`] shares it per patterning option across an entire
//! experiment matrix — trials, corners, and cells all reuse the same
//! precomputed window.

use mpvar_extract::{extract_track, WireParasitics};
use mpvar_geometry::TrackStack;
use mpvar_litho::{apply_draw, Draw};
use mpvar_sram::BitcellGeometry;
use mpvar_tech::{MetalSpec, PatterningOption, TechDb};

use crate::error::CoreError;

/// The precomputed nominal bit-line window of one patterning option.
///
/// Holds everything the per-draw inner loops need: the drawn column
/// stack, the metal-1 spec, the index of the `BL` track in the printed
/// stack, and the nominal parasitics that variation multipliers are
/// taken against. A one-cell window is enough because R and C scale
/// linearly with length, so the variation multipliers are
/// length-independent.
#[derive(Debug, Clone)]
pub struct NominalWindow<'t> {
    tech: &'t TechDb,
    cell: &'t BitcellGeometry,
    m1: &'t MetalSpec,
    option: PatterningOption,
    stack: TrackStack,
    bl_index: usize,
    nominal: WireParasitics,
}

impl<'t> NominalWindow<'t> {
    /// Builds the window: column stack → nominal print → `BL` track →
    /// nominal parasitics.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Tech`] when the technology lacks metal1;
    /// * propagated stack/print/extraction failures.
    pub fn build(
        tech: &'t TechDb,
        cell: &'t BitcellGeometry,
        option: PatterningOption,
    ) -> Result<Self, CoreError> {
        let m1 = tech
            .metal(1)
            .ok_or_else(|| CoreError::Tech("technology lacks metal1".to_string()))?;
        let stack = cell.column_stack(mpvar_sram::array::PAPER_BL_PAIRS, 5, 1)?;
        let nominal_printed = apply_draw(&stack, &Draw::nominal(option))?;
        let bl_index = nominal_printed
            .index_of_net("BL")
            .ok_or_else(|| CoreError::Sram("column stack lost its BL track".to_string()))?;
        let nominal = extract_track(&nominal_printed, bl_index, m1)?;
        Ok(Self {
            tech,
            cell,
            m1,
            option,
            stack,
            bl_index,
            nominal,
        })
    }

    /// The technology the window was built from.
    pub fn tech(&self) -> &'t TechDb {
        self.tech
    }

    /// The bitcell geometry the window was built from.
    pub fn cell(&self) -> &'t BitcellGeometry {
        self.cell
    }

    /// The metal-1 spec of the technology.
    pub fn metal(&self) -> &'t MetalSpec {
        self.m1
    }

    /// The patterning option the nominal draw was printed with.
    pub fn option(&self) -> PatterningOption {
        self.option
    }

    /// The drawn (pre-lithography) column stack.
    pub fn stack(&self) -> &TrackStack {
        &self.stack
    }

    /// The index of the `BL` track in the printed stack.
    pub fn bl_index(&self) -> usize {
        self.bl_index
    }

    /// The nominal bit-line parasitics.
    pub fn nominal(&self) -> &WireParasitics {
        &self.nominal
    }
}

/// Per-option [`NominalWindow`]s, computed once and shared across an
/// experiment matrix.
#[derive(Debug, Clone)]
pub struct NominalCache<'t> {
    windows: Vec<NominalWindow<'t>>,
}

impl<'t> NominalCache<'t> {
    /// Builds the windows of every option in `options` eagerly.
    ///
    /// # Errors
    ///
    /// Propagates the first window-construction failure.
    pub fn build(
        tech: &'t TechDb,
        cell: &'t BitcellGeometry,
        options: &[PatterningOption],
    ) -> Result<Self, CoreError> {
        let mut windows = Vec::with_capacity(options.len());
        for &option in options {
            windows.push(NominalWindow::build(tech, cell, option)?);
        }
        Ok(Self { windows })
    }

    /// The cached window of `option`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Tech`] when `option` was not part of the cache's
    /// option list.
    pub fn window(&self, option: PatterningOption) -> Result<&NominalWindow<'t>, CoreError> {
        self.windows
            .iter()
            .find(|w| w.option == option)
            .ok_or_else(|| CoreError::Tech(format!("no cached nominal window for {option}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    #[test]
    fn window_matches_manual_setup() {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        let w = NominalWindow::build(&tech, &cell, PatterningOption::Le3).unwrap();
        let stack = cell
            .column_stack(mpvar_sram::array::PAPER_BL_PAIRS, 5, 1)
            .unwrap();
        let printed = apply_draw(&stack, &Draw::nominal(PatterningOption::Le3)).unwrap();
        let bl = printed.index_of_net("BL").unwrap();
        assert_eq!(w.bl_index(), bl);
        let nominal = extract_track(&printed, bl, tech.metal(1).unwrap()).unwrap();
        assert_eq!(w.nominal(), &nominal);
        assert_eq!(w.option(), PatterningOption::Le3);
    }

    #[test]
    fn cache_serves_all_requested_options() {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        let cache = NominalCache::build(&tech, &cell, &PatterningOption::ALL).unwrap();
        for option in PatterningOption::ALL {
            assert_eq!(cache.window(option).unwrap().option(), option);
        }
        assert!(cache.window(PatterningOption::Le2).is_err());
    }
}
