//! Rare-event read-failure yield per patterning option (6σ extension).
//!
//! The paper's Monte-Carlo (Fig. 5) resolves `tdp` distributions to
//! ~1e-4 failure probability; array sign-off needs the deep tail. This
//! module maps the MP-variability parameter space onto the
//! `mpvar-yield` engine's standardized `z`-domain and runs its adaptive
//! importance-sampling controller against the analytical-formula (and
//! optionally full-SPICE) read model:
//!
//! * [`ZMap`] — the fixed ordering of an option's *active* variation
//!   parameters (budget 3σ > 0) onto i.i.d. standard-normal
//!   coordinates, truncated at ±3.5σ exactly like the litho sampler;
//! * [`FormulaYieldProblem`] / [`SpiceYieldProblem`] — batch failure
//!   predicates (`shorted print` OR `tdp > margin`) over that domain;
//! * [`yield_6sigma`] — the experiment: per option and timing margin,
//!   a scaled-sigma importance-sampled failure probability with CI,
//!   cross-checked against a Gaussian-fit extrapolation and (at a
//!   shallow margin) against a brute-force agreement run.
//!
//! Failure here means a *read* failure at a timing margin: the sampled
//! draw either prints shorted geometry (a hard yield loss, exactly the
//! event the MC path screens out) or its read-time penalty exceeds the
//! margin.

use mpvar_extract::{extract_track, RelativeVariation};
use mpvar_litho::{apply_draw, Draw, TRUNCATION_SIGMAS};
use mpvar_sram::{
    simulate_read, simulate_read_batch_in, simulate_write, simulate_write_batch_in,
    ReadBatchScratch, ReadConfig, SramError, WriteBatchScratch, WriteConfig,
};
use mpvar_stats::normal_tail;
use mpvar_tech::{PatterningOption, TechDb, VariationBudget};
use mpvar_yield::{
    resume_yield, run_yield, FailureProblem, Proposal, YieldConfig, YieldError, YieldRun, ZDomain,
};

use crate::error::CoreError;
use crate::experiments::ExperimentContext;
use crate::formula::AnalyticalModel;
use crate::montecarlo::McConfig;
use crate::nominal::{NominalCache, NominalWindow};
use crate::report::TextTable;

pub use mpvar_yield::FailureEstimate;

/// The ordered mapping of an option's active variation parameters onto
/// standardized `z` coordinates.
///
/// Dimension order matches [`mpvar_litho::sample_draw`]'s parameter
/// order with zero-budget parameters removed, so the same physical
/// corner always has the same `z` signature; `z_i` maps to parameter
/// value `z_i · σ_i` with `σ_i` the budget's 3σ over 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ZMap {
    option: PatterningOption,
    /// `(parameter name, sigma_nm)` per active dimension.
    entries: Vec<(&'static str, f64)>,
}

impl ZMap {
    /// Builds the map for `option` under `budget`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the budget has no active
    /// parameter for the option (nothing to sample).
    pub fn build(option: PatterningOption, budget: &VariationBudget) -> Result<Self, CoreError> {
        let cd = budget.cd_three_sigma_nm() / 3.0;
        let ol = budget.overlay_three_sigma_nm() / 3.0;
        let sp = budget.spacer_three_sigma_nm() / 3.0;
        let mut entries: Vec<(&'static str, f64)> = Vec::new();
        let mut push = |name: &'static str, sigma: f64| {
            if sigma > 0.0 {
                entries.push((name, sigma));
            }
        };
        match option {
            PatterningOption::Le3 => {
                push("cd_a", cd);
                push("cd_b", cd);
                push("cd_c", cd);
                // Mask A is the overlay reference and stays pinned.
                push("ol_b", ol);
                push("ol_c", ol);
            }
            PatterningOption::Sadp => {
                push("cd_core", cd);
                push("spacer", sp);
            }
            PatterningOption::Euv => push("cd", cd),
            PatterningOption::Le2 => {
                push("cd_a", cd);
                push("cd_b", cd);
                push("ol_b", ol);
            }
        }
        if entries.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "budget",
                value: 0.0,
                constraint: "option has no active variation parameter",
            });
        }
        Ok(Self { option, entries })
    }

    /// The option this map belongs to.
    pub fn option(&self) -> PatterningOption {
        self.option
    }

    /// Number of active (sampled) dimensions.
    pub fn dims(&self) -> usize {
        self.entries.len()
    }

    /// Active parameter names, in `z` order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }

    /// The standardized domain of this map: `dims` coordinates
    /// truncated at the litho sampler's ±3.5σ inspection screen.
    ///
    /// # Errors
    ///
    /// Propagates domain validation (impossible for a built map).
    pub fn domain(&self) -> Result<ZDomain, CoreError> {
        Ok(ZDomain::truncated(self.dims(), TRUNCATION_SIGMAS)?)
    }

    /// Materializes one `z` vector (length [`ZMap::dims`]) as a draw.
    pub fn draw_from_z(&self, z: &[f64]) -> Draw {
        debug_assert_eq!(z.len(), self.dims());
        let mut draw = Draw::nominal(self.option);
        for ((name, sigma), zi) in self.entries.iter().zip(z) {
            let ok = draw.set_parameter(name, zi * sigma);
            debug_assert!(ok, "unknown parameter {name}");
        }
        draw
    }
}

fn nominal_draw_for_z(map: &ZMap, z: &[f64]) -> Draw {
    map.draw_from_z(z)
}

/// Formula-route failure predicate: a trial fails when its draw prints
/// shorted geometry or its analytical `tdp` exceeds the margin.
#[derive(Debug)]
pub struct FormulaYieldProblem<'a> {
    window: &'a NominalWindow<'a>,
    map: ZMap,
    model: AnalyticalModel,
    n: usize,
    margin_percent: f64,
}

impl<'a> FormulaYieldProblem<'a> {
    /// Builds the predicate for `window`'s option at array height `n`
    /// and the given timing margin.
    ///
    /// # Errors
    ///
    /// Propagates formula-parameter derivation and map construction.
    pub fn new(
        window: &'a NominalWindow<'a>,
        budget: &VariationBudget,
        model: AnalyticalModel,
        n: usize,
        margin_percent: f64,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            map: ZMap::build(window.option(), budget)?,
            window,
            model,
            n,
            margin_percent,
        })
    }

    /// The parameter map in use.
    pub fn map(&self) -> &ZMap {
        &self.map
    }

    /// The timing margin (percent `tdp`) defining failure.
    pub fn margin_percent(&self) -> f64 {
        self.margin_percent
    }
}

impl FailureProblem for FormulaYieldProblem<'_> {
    fn dims(&self) -> usize {
        self.map.dims()
    }

    fn evaluate_batch(&self, zs: &[f64]) -> Result<Vec<bool>, YieldError> {
        let dims = self.map.dims();
        if !zs.len().is_multiple_of(dims) {
            return Err(YieldError::InvalidConfig {
                reason: format!("batch length {} not a multiple of dims {dims}", zs.len()),
            });
        }
        let mut out = Vec::with_capacity(zs.len() / dims);
        for z in zs.chunks_exact(dims) {
            let draw = nominal_draw_for_z(&self.map, z);
            let printed = match apply_draw(self.window.stack(), &draw) {
                Ok(p) => p,
                // Shorted print: a hard read failure, not an error.
                Err(_) => {
                    out.push(true);
                    continue;
                }
            };
            let parasitics = extract_track(&printed, self.window.bl_index(), self.window.metal())
                .map_err(|e| YieldError::Problem(Box::new(CoreError::from(e))))?;
            let var = RelativeVariation::between(self.window.nominal(), &parasitics);
            let tdp = self.model.tdp_percent(self.n, var.r_var, var.c_var);
            out.push(tdp > self.margin_percent);
        }
        Ok(out)
    }
}

/// SPICE-route failure predicate: like [`FormulaYieldProblem`] but each
/// trial is a full read simulation through the batched SoA solver.
#[derive(Debug)]
pub struct SpiceYieldProblem<'a> {
    tech: &'a TechDb,
    cell: &'a mpvar_sram::BitcellGeometry,
    read: ReadConfig,
    map: ZMap,
    n_cells: usize,
    margin_percent: f64,
    td_nom_s: f64,
}

impl<'a> SpiceYieldProblem<'a> {
    /// Builds the predicate, running the nominal reference read once.
    ///
    /// # Errors
    ///
    /// Propagates the nominal read and map construction.
    pub fn new(
        tech: &'a TechDb,
        cell: &'a mpvar_sram::BitcellGeometry,
        read: ReadConfig,
        option: PatterningOption,
        budget: &VariationBudget,
        n_cells: usize,
        margin_percent: f64,
    ) -> Result<Self, CoreError> {
        let td_nom_s = simulate_read(tech, cell, &read, n_cells, &Draw::nominal(option))?.td_s;
        Ok(Self {
            tech,
            cell,
            read,
            map: ZMap::build(option, budget)?,
            n_cells,
            margin_percent,
            td_nom_s,
        })
    }
}

impl FailureProblem for SpiceYieldProblem<'_> {
    fn dims(&self) -> usize {
        self.map.dims()
    }

    fn evaluate_batch(&self, zs: &[f64]) -> Result<Vec<bool>, YieldError> {
        let dims = self.map.dims();
        if !zs.len().is_multiple_of(dims) {
            return Err(YieldError::InvalidConfig {
                reason: format!("batch length {} not a multiple of dims {dims}", zs.len()),
            });
        }
        let draws: Vec<Draw> = zs
            .chunks_exact(dims)
            .map(|z| nominal_draw_for_z(&self.map, z))
            .collect();
        let mut scratch = ReadBatchScratch::new();
        let lanes = simulate_read_batch_in(
            self.tech,
            self.cell,
            &self.read,
            self.n_cells,
            &draws,
            &mut scratch,
        )
        .map_err(|e| YieldError::Problem(Box::new(CoreError::from(e))))?;
        lanes
            .into_iter()
            .map(|lane| match lane {
                Ok(o) => Ok((o.td_s / self.td_nom_s - 1.0) * 100.0 > self.margin_percent),
                // Shorted print: a read failure, same as the formula path.
                Err(SramError::Litho(_)) => Ok(true),
                Err(e) => Err(YieldError::Problem(Box::new(CoreError::from(e)))),
            })
            .collect()
    }
}

/// SPICE-route *write*-failure predicate: like [`SpiceYieldProblem`]
/// but each trial is a full write transient through the batched SoA
/// solver — a trial fails when its draw prints shorted geometry, its
/// cell never flips, or its write-time penalty exceeds the margin.
#[derive(Debug)]
pub struct SpiceWriteYieldProblem<'a> {
    tech: &'a TechDb,
    cell: &'a mpvar_sram::BitcellGeometry,
    write: WriteConfig,
    map: ZMap,
    n_cells: usize,
    margin_percent: f64,
    t_write_nom_s: f64,
}

impl<'a> SpiceWriteYieldProblem<'a> {
    /// Builds the predicate, running the nominal reference write once.
    ///
    /// # Errors
    ///
    /// Propagates the nominal write and map construction.
    pub fn new(
        tech: &'a TechDb,
        cell: &'a mpvar_sram::BitcellGeometry,
        write: WriteConfig,
        option: PatterningOption,
        budget: &VariationBudget,
        n_cells: usize,
        margin_percent: f64,
    ) -> Result<Self, CoreError> {
        let t_write_nom_s =
            simulate_write(tech, cell, &write, n_cells, &Draw::nominal(option))?.t_write_s;
        Ok(Self {
            tech,
            cell,
            write,
            map: ZMap::build(option, budget)?,
            n_cells,
            margin_percent,
            t_write_nom_s,
        })
    }

    /// The nominal reference flip time, s.
    pub fn t_write_nom_s(&self) -> f64 {
        self.t_write_nom_s
    }
}

impl FailureProblem for SpiceWriteYieldProblem<'_> {
    fn dims(&self) -> usize {
        self.map.dims()
    }

    fn evaluate_batch(&self, zs: &[f64]) -> Result<Vec<bool>, YieldError> {
        let dims = self.map.dims();
        if !zs.len().is_multiple_of(dims) {
            return Err(YieldError::InvalidConfig {
                reason: format!("batch length {} not a multiple of dims {dims}", zs.len()),
            });
        }
        let draws: Vec<Draw> = zs
            .chunks_exact(dims)
            .map(|z| nominal_draw_for_z(&self.map, z))
            .collect();
        let mut scratch = WriteBatchScratch::new();
        let lanes = simulate_write_batch_in(
            self.tech,
            self.cell,
            &self.write,
            self.n_cells,
            &draws,
            &mut scratch,
        )
        .map_err(|e| YieldError::Problem(Box::new(CoreError::from(e))))?;
        lanes
            .into_iter()
            .map(|lane| match lane {
                Ok(o) => Ok((o.t_write_s / self.t_write_nom_s - 1.0) * 100.0 > self.margin_percent),
                // Shorted print: a hard write failure, as on the read path.
                Err(SramError::Litho(_)) => Ok(true),
                // A cell that never flips is the definitional write failure.
                Err(SramError::WriteNeverFlipped { .. }) => Ok(true),
                Err(e) => Err(YieldError::Problem(Box::new(CoreError::from(e)))),
            })
            .collect()
    }
}

/// Settings of the [`yield_6sigma`] experiment.
///
/// Deliberately *independent* of the context's Monte-Carlo settings
/// (own seed, own trial budgets): the experiment's output is a pure
/// function of these settings and the technology, so its golden CSV is
/// compared strictly in both `repro check` profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct YieldSettings {
    /// Per-option margins expressed as Gaussian-fit sigma multiples:
    /// margin = fit mean + k·σ_fit. Each option's tail is probed where
    /// it actually lives (LE3's σ is several times SADP's/EUV's).
    pub sigma_margins: Vec<f64>,
    /// Absolute margins (percent `tdp`) evaluated for **every** option
    /// — the cross-option ordering rows. Deep values land ~1e-9 for
    /// LE3 while the bounded-support options (SADP's ±3.5σ screen
    /// caps its reachable `tdp`) are exactly zero there.
    pub common_margins_percent: Vec<f64>,
    /// Margin of the brute-force/IS agreement pair (shallow enough
    /// for brute force to resolve within its budget).
    pub agreement_margin_percent: f64,
    /// The option the agreement pair runs on (the heavy-tailed one).
    pub agreement_option: PatterningOption,
    /// Scaled-sigma proposal's sigma multiplier.
    pub sigma_scale: f64,
    /// RNG seed of every yield run (independent of the MC seed).
    pub seed: u64,
    /// CI confidence level.
    pub confidence: f64,
    /// Convergence target: relative CI half-width.
    pub target_rel_half_width: f64,
    /// Minimum raw failures before the CI is trusted for stopping.
    pub min_failures: u64,
    /// First-round trial count.
    pub base_round: usize,
    /// Soft trial budget per importance-sampled run.
    pub max_trials: usize,
    /// Soft trial budget of the brute-force agreement run.
    pub brute_max_trials: usize,
    /// Trials of the plain MC used for the Gaussian-fit cross-check
    /// column (fixed, so the artifact is profile-independent).
    pub fit_trials: usize,
}

impl Default for YieldSettings {
    /// 2σ/4σ/6σ per-option margins, a 22% common deep margin (~1e-8
    /// for LE3, exactly zero for the bounded options), a 12% LE3
    /// agreement pair, scale-3 proposal, seed 65, and budgets sized so
    /// the full experiment stays in CI-smoke territory.
    fn default() -> Self {
        Self {
            sigma_margins: vec![2.0, 4.0, 6.0],
            common_margins_percent: vec![22.0],
            agreement_margin_percent: 12.0,
            agreement_option: PatterningOption::Le3,
            sigma_scale: 3.0,
            seed: 65,
            confidence: 0.95,
            target_rel_half_width: 0.3,
            min_failures: 8,
            base_round: 2048,
            max_trials: 65_536,
            brute_max_trials: 262_144,
            fit_trials: 20_000,
        }
    }
}

/// One row of the [`YieldTable`]: a failure-probability estimate for
/// one option, margin, and estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldRow {
    /// Patterning option.
    pub option: PatterningOption,
    /// Estimator label (`scaled-sigma` or `brute-force`).
    pub estimator: &'static str,
    /// Timing margin (percent `tdp`) defining failure.
    pub margin_percent: f64,
    /// Estimated failure probability.
    pub p_fail: f64,
    /// CI lower bound.
    pub ci_lo: f64,
    /// CI upper bound.
    pub ci_hi: f64,
    /// Relative CI half-width (`inf` when `p_fail` is 0).
    pub rel_half_width: f64,
    /// Trials consumed by the adaptive run.
    pub trials: u64,
    /// Whether the stopping rule (not the budget) ended the run.
    pub converged: bool,
    /// Weight-normalization oracle `Σw/N` (≈ 1 for a healthy run).
    pub mean_weight: f64,
    /// Gaussian-fit extrapolation `Q((margin − mean)/σ)` from the
    /// fixed plain-MC fit.
    pub gaussian_fit_p: f64,
}

/// The rare-event yield experiment's result: failure probabilities per
/// option and margin, estimator-labelled, with a brute-force agreement
/// pair at the shallow margin.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldTable {
    /// Array height (word lines) of every run.
    pub n: usize,
    /// Settings the experiment ran with.
    pub settings: YieldSettings,
    /// All rows: per option, the importance-sampled σ-multiple margins
    /// (shallow to deep), the common absolute margins, then — on the
    /// agreement option only — the brute-force + scaled-sigma pair at
    /// [`YieldSettings::agreement_margin_percent`].
    pub rows: Vec<YieldRow>,
}

impl YieldTable {
    /// Rows of one option, in emission order.
    pub fn rows_of(&self, option: PatterningOption) -> impl Iterator<Item = &YieldRow> + '_ {
        self.rows.iter().filter(move |r| r.option == option)
    }

    /// The agreement pair (brute-force, scaled-sigma) of one option.
    pub fn agreement_pair(&self, option: PatterningOption) -> Option<(&YieldRow, &YieldRow)> {
        let brute = self
            .rows_of(option)
            .find(|r| r.estimator == "brute-force")?;
        let is = self
            .rows_of(option)
            .find(|r| r.estimator == "scaled-sigma" && r.margin_percent == brute.margin_percent)?;
        Some((brute, is))
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Rare-event yield: importance-sampled P_fail per option (n = {})",
                self.n
            ),
            &[
                "option",
                "estimator",
                "margin",
                "p_fail",
                "ci_lo",
                "ci_hi",
                "rel_hw",
                "trials",
                "converged",
                "mean_w",
                "gauss_fit",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.option.paper_label(),
                r.estimator,
                &format!("{:.1}%", r.margin_percent),
                &format!("{:.6e}", r.p_fail),
                &format!("{:.6e}", r.ci_lo),
                &format!("{:.6e}", r.ci_hi),
                &if r.rel_half_width.is_finite() {
                    format!("{:.4}", r.rel_half_width)
                } else {
                    "inf".to_string()
                },
                &r.trials.to_string(),
                if r.converged { "yes" } else { "no" },
                &format!("{:.4}", r.mean_weight),
                &format!("{:.6e}", r.gaussian_fit_p),
            ]);
        }
        t
    }
}

fn row_from_run(
    option: PatterningOption,
    estimator: &'static str,
    margin_percent: f64,
    run: &YieldRun,
    confidence: f64,
    gaussian_fit_p: f64,
) -> Result<YieldRow, CoreError> {
    let est = run.estimate(confidence)?;
    Ok(YieldRow {
        option,
        estimator,
        margin_percent,
        p_fail: est.p_fail,
        ci_lo: est.ci_lo,
        ci_hi: est.ci_hi,
        rel_half_width: est.rel_half_width(),
        trials: est.trials,
        converged: run.converged(),
        mean_weight: est.mean_weight,
        gaussian_fit_p,
    })
}

/// Runs the rare-event yield experiment: per patterning option, an
/// adaptive scaled-sigma importance-sampling run at each σ-multiple
/// margin of [`YieldSettings::sigma_margins`] (anchored to that
/// option's own Gaussian fit, so every option is probed where its tail
/// lives) and each absolute [`YieldSettings::common_margins_percent`]
/// (the cross-option ordering rows), plus — on the heavy-tailed
/// [`YieldSettings::agreement_option`] — a brute-force/IS agreement
/// pair at the shallow [`YieldSettings::agreement_margin_percent`].
///
/// Runs are deterministic and bit-identical at any thread count; the
/// settings (not the context's MC knobs) fix every budget and seed, so
/// the result is profile-independent and its golden CSV can be
/// compared strictly.
///
/// # Errors
///
/// Propagated tech/extraction/yield-engine failures.
pub fn yield_6sigma(ctx: &ExperimentContext) -> Result<YieldTable, CoreError> {
    let s = &ctx.yield_settings;
    let n = ctx.pinned_height();
    let options = PatterningOption::ALL;
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &options)?;
    let params = mpvar_sram::FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let model = AnalyticalModel::new(params, ctx.read_config.sense_dv_v / ctx.read_config.vdd_v)?;

    // Options are independent cells; each cell's yield runs get the
    // remaining thread share (same anti-oversubscription split the MC
    // experiments use). Results are bit-identical for any split.
    let (outer, inner) = ctx.exec.split(options.len());
    let per_option = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let window = cache.window(option)?;
        let budget = ctx.budget(option)?;

        // Fixed-budget plain MC for the Gaussian-fit cross-check.
        let fit = crate::montecarlo::tdp_distribution_with(
            window,
            &budget,
            n,
            &McConfig {
                trials: s.fit_trials,
                seed: s.seed,
                exec: inner,
            },
        )?;
        let (mean, sigma) = (fit.summary().mean(), fit.summary().std_dev());
        let fit_tail = |margin: f64| {
            if sigma > 0.0 {
                normal_tail((margin - mean) / sigma)
            } else if margin >= mean {
                0.0
            } else {
                1.0
            }
        };

        let run_margin = |margin: f64,
                          proposal: Proposal,
                          estimator: &'static str,
                          max_trials: usize|
         -> Result<YieldRow, CoreError> {
            let problem = FormulaYieldProblem::new(window, &budget, model, n, margin)?;
            let cfg = YieldConfig::new(problem.map().domain()?, proposal)
                .seed(s.seed)
                .confidence(s.confidence)
                .target_rel_half_width(s.target_rel_half_width)
                .min_failures(s.min_failures)
                .base_round(s.base_round)
                .max_trials(max_trials)
                .exec(inner);
            let run = run_yield(&problem, &cfg)?;
            row_from_run(
                option,
                estimator,
                margin,
                &run,
                s.confidence,
                fit_tail(margin),
            )
        };
        let scaled = Proposal::ScaledSigma {
            scale: s.sigma_scale,
        };

        let mut rows = Vec::new();
        // Per-option tail probe: margins at fit mean + k·σ.
        for &k in &s.sigma_margins {
            let margin = mean + k * sigma;
            rows.push(run_margin(
                margin,
                scaled.clone(),
                "scaled-sigma",
                s.max_trials,
            )?);
        }
        // Cross-option ordering rows at fixed absolute margins.
        for &margin in &s.common_margins_percent {
            rows.push(run_margin(
                margin,
                scaled.clone(),
                "scaled-sigma",
                s.max_trials,
            )?);
        }

        // Agreement pair at the shallow margin: brute force samples the
        // target itself (weights exactly 1), so overlapping CIs here
        // certify the IS weighting end-to-end on the real circuit.
        if option == s.agreement_option {
            let margin = s.agreement_margin_percent;
            rows.push(run_margin(
                margin,
                Proposal::BruteForce,
                "brute-force",
                s.brute_max_trials,
            )?);
            rows.push(run_margin(
                margin,
                scaled.clone(),
                "scaled-sigma",
                s.max_trials,
            )?);
        }
        Ok::<Vec<YieldRow>, CoreError>(rows)
    })?;

    Ok(YieldTable {
        n,
        settings: s.clone(),
        rows: per_option.into_iter().flatten().collect(),
    })
}

/// Resumes one formula-route yield run from a prior partial run — the
/// circuit-level face of [`mpvar_yield::resume_yield`], used by the
/// determinism suite to prove merge bit-identity on the real model.
///
/// # Errors
///
/// As [`yield_6sigma`].
pub fn resume_option_yield(
    ctx: &ExperimentContext,
    option: PatterningOption,
    margin_percent: f64,
    max_trials: usize,
    prior: &YieldRun,
) -> Result<YieldRun, CoreError> {
    let s = &ctx.yield_settings;
    let n = ctx.pinned_height();
    let window = NominalWindow::build(&ctx.tech, &ctx.cell, option)?;
    let budget = ctx.budget(option)?;
    let params = mpvar_sram::FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let model = AnalyticalModel::new(params, ctx.read_config.sense_dv_v / ctx.read_config.vdd_v)?;
    let problem = FormulaYieldProblem::new(&window, &budget, model, n, margin_percent)?;
    let cfg = YieldConfig::new(
        problem.map().domain()?,
        Proposal::ScaledSigma {
            scale: s.sigma_scale,
        },
    )
    .seed(s.seed)
    .confidence(s.confidence)
    .target_rel_half_width(s.target_rel_half_width)
    .min_failures(s.min_failures)
    .base_round(s.base_round)
    .max_trials(max_trials)
    .exec(ctx.exec);
    Ok(resume_yield(&problem, &cfg, prior)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;

    fn quick_ctx(threads: usize) -> ExperimentContext {
        ExperimentContext::builder()
            .unwrap()
            .quick_preset()
            .threads(threads)
            .build()
    }

    #[test]
    fn zmap_matches_sampler_dimensionality() {
        for (option, dims) in [
            (PatterningOption::Le3, 5),
            (PatterningOption::Sadp, 2),
            (PatterningOption::Euv, 1),
            (PatterningOption::Le2, 3),
        ] {
            let budget = VariationBudget::paper_default(option, 8.0).unwrap();
            let map = ZMap::build(option, &budget).unwrap();
            assert_eq!(map.dims(), dims, "{option}");
            let domain = map.domain().unwrap();
            assert_eq!(domain.truncation(), Some(TRUNCATION_SIGMAS));
        }
    }

    #[test]
    fn zmap_drops_zero_budget_dims() {
        // EUV has no overlay/spacer; a zero-CD budget leaves nothing.
        let budget = VariationBudget::new(0.0, 0.0, 0.0).unwrap();
        assert!(ZMap::build(PatterningOption::Euv, &budget).is_err());
    }

    #[test]
    fn draw_from_z_scales_by_sigma() {
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let map = ZMap::build(PatterningOption::Le3, &budget).unwrap();
        let draw = map.draw_from_z(&[3.0, 0.0, 0.0, -3.0, 0.0]);
        match draw {
            Draw::Le3(d) => {
                // z = 3 is the full 3σ budget.
                assert!((d.cd_nm[0] - budget.cd_three_sigma_nm()).abs() < 1e-12);
                assert_eq!(d.cd_nm[1], 0.0);
                assert!((d.overlay_nm[1] + budget.overlay_three_sigma_nm()).abs() < 1e-12);
                // Mask A stays the pinned overlay reference.
                assert_eq!(d.overlay_nm[0], 0.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn formula_problem_flags_deep_corners_and_passes_nominal() {
        let ctx = quick_ctx(1);
        let option = PatterningOption::Le3;
        let window = NominalWindow::build(&ctx.tech, &ctx.cell, option).unwrap();
        let budget = ctx.budget(option).unwrap();
        let params =
            mpvar_sram::FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v).unwrap();
        let model =
            AnalyticalModel::new(params, ctx.read_config.sense_dv_v / ctx.read_config.vdd_v)
                .unwrap();
        let problem = FormulaYieldProblem::new(&window, &budget, model, 64, 5.0).unwrap();
        // Nominal z passes; an extreme all-up corner fails.
        let nominal = vec![0.0; problem.dims()];
        let corner = vec![3.4; problem.dims()];
        let flags = problem.evaluate_batch(&[nominal, corner].concat()).unwrap();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn spice_write_problem_passes_nominal_and_flags_deep_corners() {
        let ctx = quick_ctx(1);
        let option = PatterningOption::Le3;
        let budget = ctx.budget(option).unwrap();
        let problem = SpiceWriteYieldProblem::new(
            &ctx.tech,
            &ctx.cell,
            mpvar_sram::WriteConfig::default(),
            option,
            &budget,
            8,
            3.0,
        )
        .unwrap();
        assert!(problem.t_write_nom_s() > 0.0);
        let nominal = vec![0.0; problem.dims()];
        let corner = vec![3.4; problem.dims()];
        let flags = problem.evaluate_batch(&[nominal, corner].concat()).unwrap();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn spice_problem_agrees_with_formula_on_sign() {
        let ctx = quick_ctx(1);
        let option = PatterningOption::Le3;
        let budget = ctx.budget(option).unwrap();
        let problem = SpiceYieldProblem::new(
            &ctx.tech,
            &ctx.cell,
            ctx.read_config,
            option,
            &budget,
            8,
            5.0,
        )
        .unwrap();
        let nominal = vec![0.0; problem.dims()];
        let corner = vec![3.4; problem.dims()];
        let flags = problem.evaluate_batch(&[nominal, corner].concat()).unwrap();
        assert_eq!(flags, vec![false, true]);
    }
}
