//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table with a title and a header row.
///
/// # Example
///
/// ```
/// use mpvar_core::report::TextTable;
///
/// let mut t = TextTable::new("Table I: worst case", &["option", "dC_bl", "dR_bl"]);
/// t.row(&["LELELE", "+49.5%", "-13.7%"]);
/// t.row(&["SADP", "+7.8%", "-24.4%"]);
/// let s = t.render();
/// assert!(s.contains("LELELE"));
/// assert!(s.lines().count() >= 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.header.len())
            .map(|s| s.to_string())
            .collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..ncols {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&line(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a signed percentage with two decimals (`+12.34%`).
pub fn pct(value: f64) -> String {
    format!("{value:+.2}%")
}

/// Formats seconds as picoseconds with two decimals (`12.34 ps`).
pub fn ps(seconds: f64) -> String {
    format!("{:.2} ps", seconds * 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_structure() {
        let mut t = TextTable::new("T", &["a", "bbbb", "c"]);
        t.row(&["xxxx", "y", "z"]);
        t.row(&["1", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a     bbbb"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn long_rows_truncated() {
        let mut t = TextTable::new("T", &["a"]);
        t.row(&["1", "2", "3"]);
        assert!(t.render().lines().count() == 4);
        assert!(!t.render().contains('2'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new("T", &["name", "value"]);
        t.row(&["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(12.345), "+12.35%");
        assert_eq!(pct(-3.0), "-3.00%");
        assert_eq!(ps(22.27e-12), "22.27 ps");
    }
}
