//! Per-parameter sensitivity of the read-time penalty.
//!
//! The paper concludes that "the main contributor to this performance
//! variation of LE3 is the exposure overlay (OL) error" (§IV). This
//! module quantifies that claim: for every variation parameter of an
//! option it computes the central-difference derivative
//! `∂(tdp %)/∂(parameter, nm)` around nominal, through the full
//! litho → extraction → formula chain.
//!
//! First-order sensitivities can vanish at a symmetric nominal point
//! (e.g. a centred line where moving either way raises coupling), so the
//! second-order (curvature) term is reported as well — for LE3 overlay
//! the curvature is exactly what drives the Monte-Carlo spread.

use mpvar_extract::{extract_track, RelativeVariation, WireParasitics};
use mpvar_litho::{apply_draw, Draw};
use mpvar_sram::BitcellGeometry;
use mpvar_tech::{PatterningOption, TechDb};

use crate::error::CoreError;
use crate::formula::AnalyticalModel;
use crate::report::TextTable;

/// Sensitivity of `tdp` to one variation parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSensitivity {
    /// Parameter name (as in [`Draw::parameters`]).
    pub name: &'static str,
    /// First derivative, percentage points of tdp per nm.
    pub slope_pp_per_nm: f64,
    /// Second derivative, percentage points per nm².
    pub curvature_pp_per_nm2: f64,
}

/// The sensitivity profile of one patterning option.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityProfile {
    /// The option analysed.
    pub option: PatterningOption,
    /// Array size the formula was evaluated at.
    pub n: usize,
    /// Perturbation step used, nm.
    pub step_nm: f64,
    /// Per-parameter sensitivities, in [`Draw::parameters`] order.
    pub parameters: Vec<ParameterSensitivity>,
}

impl SensitivityProfile {
    /// The parameter with the largest combined influence, ranked by
    /// `|slope| + |curvature| * sigma_scale` where `sigma_scale` is 1nm.
    pub fn dominant(&self) -> Option<&ParameterSensitivity> {
        self.parameters.iter().max_by(|a, b| {
            let ka = a.slope_pp_per_nm.abs() + a.curvature_pp_per_nm2.abs();
            let kb = b.slope_pp_per_nm.abs() + b.curvature_pp_per_nm2.abs();
            ka.partial_cmp(&kb).expect("finite sensitivities")
        })
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "tdp sensitivity: {} (n = {}, step {}nm)",
                self.option.paper_label(),
                self.n,
                self.step_nm
            ),
            &["parameter", "slope (pp/nm)", "curvature (pp/nm^2)"],
        );
        for p in &self.parameters {
            t.row(&[
                p.name,
                &format!("{:+.4}", p.slope_pp_per_nm),
                &format!("{:+.4}", p.curvature_pp_per_nm2),
            ]);
        }
        t
    }
}

/// Computes the sensitivity profile of `option` at array size `n`.
///
/// # Errors
///
/// Propagates litho/extraction/model failures.
pub fn sensitivity_profile(
    tech: &TechDb,
    cell: &BitcellGeometry,
    option: PatterningOption,
    n: usize,
    step_nm: f64,
) -> Result<SensitivityProfile, CoreError> {
    let valid = step_nm > 0.0 && step_nm.is_finite();
    if !valid {
        return Err(CoreError::InvalidParameter {
            name: "step_nm",
            value: step_nm,
            constraint: "must be finite and positive",
        });
    }
    let m1 = tech
        .metal(1)
        .ok_or_else(|| CoreError::Tech("technology lacks metal1".to_string()))?;
    let stack = cell.column_stack(mpvar_sram::array::PAPER_BL_PAIRS, 5, 1)?;
    let nominal_printed = apply_draw(&stack, &Draw::nominal(option))?;
    let bl = nominal_printed
        .index_of_net("BL")
        .ok_or_else(|| CoreError::Sram("column stack lost its BL track".to_string()))?;
    let nominal = extract_track(&nominal_printed, bl, m1)?;
    let params = mpvar_sram::FormulaParams::derive(tech, cell, 0.7)?;
    let model = AnalyticalModel::new(params, 0.10)?;

    let tdp_at = |draw: &Draw| -> Result<f64, CoreError> {
        let printed = apply_draw(&stack, draw)?;
        let w: WireParasitics = extract_track(&printed, bl, m1)?;
        let var = RelativeVariation::between(&nominal, &w);
        Ok(model.tdp_percent(n, var.r_var, var.c_var))
    };

    let mut parameters = Vec::new();
    for (name, _) in Draw::nominal(option).parameters() {
        let mut plus = Draw::nominal(option);
        plus.set_parameter(name, step_nm);
        let mut minus = Draw::nominal(option);
        minus.set_parameter(name, -step_nm);
        let f_plus = tdp_at(&plus)?;
        let f_minus = tdp_at(&minus)?;
        // f(0) = 0 by construction (nominal multipliers are 1).
        parameters.push(ParameterSensitivity {
            name,
            slope_pp_per_nm: (f_plus - f_minus) / (2.0 * step_nm),
            curvature_pp_per_nm2: (f_plus + f_minus) / (step_nm * step_nm),
        });
    }

    Ok(SensitivityProfile {
        option,
        n,
        step_nm,
        parameters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn profile(option: PatterningOption) -> SensitivityProfile {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        sensitivity_profile(&tech, &cell, option, 64, 0.25).unwrap()
    }

    #[test]
    fn le3_overlay_is_first_order() {
        // Each LE3 overlay moves ONE neighbour of the bit line, changing
        // one gap monotonically: a genuinely first-order effect. This is
        // the quantitative form of "OL is the main contributor" — the MC
        // spread scales linearly with the overlay budget.
        let p = profile(PatterningOption::Le3);
        for name in ["ol_b", "ol_c"] {
            let s = p
                .parameters
                .iter()
                .find(|x| x.name == name)
                .expect("parameter present");
            assert!(
                s.slope_pp_per_nm.abs() > 0.05,
                "{name} slope {}",
                s.slope_pp_per_nm
            );
            // Coupling is convex in the gap: positive curvature too.
            assert!(
                s.curvature_pp_per_nm2 > 0.0,
                "{name} curvature {}",
                s.curvature_pp_per_nm2
            );
        }
    }

    #[test]
    fn le2_overlay_is_second_order_only() {
        // LE2's single overlay moves the bit line itself: one gap closes
        // exactly as the other opens, cancelling the first-order term.
        // Only the convexity residue remains — which is why LE2's MC
        // sigma sits far below LE3's despite the same overlay budget.
        let le2 = profile(PatterningOption::Le2);
        let le3 = profile(PatterningOption::Le3);
        let le2_ol = le2.parameters.iter().find(|x| x.name == "ol_b").unwrap();
        let le3_ol = le3.parameters.iter().find(|x| x.name == "ol_b").unwrap();
        assert!(
            le2_ol.slope_pp_per_nm.abs() < 0.1 * le3_ol.slope_pp_per_nm.abs(),
            "LE2 slope {} vs LE3 slope {}",
            le2_ol.slope_pp_per_nm,
            le3_ol.slope_pp_per_nm
        );
        assert!(le2_ol.curvature_pp_per_nm2 > 0.0);
    }

    #[test]
    fn cd_parameters_have_positive_slope() {
        // Wider lines -> higher coupling -> slower reads, first order.
        let p = profile(PatterningOption::Le3);
        for name in ["cd_a", "cd_b", "cd_c"] {
            let s = p.parameters.iter().find(|x| x.name == name).unwrap();
            assert!(s.slope_pp_per_nm > 0.0, "{name}: {}", s.slope_pp_per_nm);
        }
        let euv = profile(PatterningOption::Euv);
        assert!(euv.parameters[0].slope_pp_per_nm > 0.0);
    }

    #[test]
    fn sadp_spacer_slope_is_negative() {
        // A thicker spacer means wider gaps (less coupling) AND a
        // narrower spacer-defined line (more R, but R barely matters):
        // net tdp falls.
        let p = profile(PatterningOption::Sadp);
        let spacer = p.parameters.iter().find(|x| x.name == "spacer").unwrap();
        assert!(
            spacer.slope_pp_per_nm < 0.0,
            "spacer slope {}",
            spacer.slope_pp_per_nm
        );
    }

    #[test]
    fn dominant_parameter_for_le3_is_an_overlay_or_bl_cd() {
        let p = profile(PatterningOption::Le3);
        let d = p.dominant().unwrap();
        assert!(
            ["ol_b", "ol_c", "cd_a", "cd_b", "cd_c"].contains(&d.name),
            "dominant {}",
            d.name
        );
        assert!(p.report().render().contains("slope"));
    }

    #[test]
    fn invalid_step_rejected() {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        assert!(sensitivity_profile(&tech, &cell, PatterningOption::Le3, 64, 0.0).is_err());
        assert!(sensitivity_profile(&tech, &cell, PatterningOption::Le3, 64, f64::NAN).is_err());
    }
}
