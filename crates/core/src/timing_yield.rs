//! Timing-yield estimation from the Monte-Carlo tdp distribution.
//!
//! A designer consumes the paper's Fig. 5 as a yield question: *what
//! fraction of dies keeps the read-time penalty under my margin?* This
//! module answers it two ways — empirically from the samples, and with
//! a Gaussian fit (valid for the near-normal SADP/EUV distributions,
//! conservative for LE3's right-skewed tail).

use mpvar_stats::sampler::erf;

use crate::error::CoreError;
use crate::montecarlo::TdpDistribution;
use crate::report::TextTable;

/// Yield estimates for one tdp margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldPoint {
    /// The tdp margin, percent.
    pub margin_percent: f64,
    /// Empirical yield: fraction of samples with `tdp <= margin`.
    pub empirical: f64,
    /// Gaussian-fit yield using the distribution's mean/sigma.
    pub gaussian_fit: f64,
}

/// A yield curve over a set of margins.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldCurve {
    /// Option label (for reports).
    pub label: String,
    /// The evaluated points, in margin order.
    pub points: Vec<YieldPoint>,
}

impl YieldCurve {
    /// The smallest margin (among the evaluated points) achieving at
    /// least `target` empirical yield.
    pub fn margin_for(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.empirical >= target)
            .map(|p| p.margin_percent)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("timing yield: {}", self.label),
            &["tdp margin", "empirical yield", "gaussian fit"],
        );
        for p in &self.points {
            t.row(&[
                &format!("{:+.1}%", p.margin_percent),
                &format!("{:.4}", p.empirical),
                &format!("{:.4}", p.gaussian_fit),
            ]);
        }
        t
    }
}

/// Standard normal CDF.
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Builds the yield curve of a sampled tdp distribution over the given
/// margins (percent).
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an empty margin list or a
/// distribution with fewer than two samples.
pub fn yield_curve(
    dist: &TdpDistribution,
    margins_percent: &[f64],
) -> Result<YieldCurve, CoreError> {
    if margins_percent.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "margins_percent",
            value: 0.0,
            constraint: "must not be empty",
        });
    }
    let samples = dist.samples_percent();
    if samples.len() < 2 {
        return Err(CoreError::InvalidParameter {
            name: "samples",
            value: samples.len() as f64,
            constraint: "need at least two Monte-Carlo samples",
        });
    }
    let mean = dist.summary().mean();
    let sigma = dist.summary().std_dev();
    let n = samples.len() as f64;

    let mut points: Vec<YieldPoint> = margins_percent
        .iter()
        .map(|&margin| {
            let hits = samples.iter().filter(|&&s| s <= margin).count() as f64;
            let gaussian_fit = if sigma > 0.0 {
                phi((margin - mean) / sigma)
            } else if margin >= mean {
                1.0
            } else {
                0.0
            };
            YieldPoint {
                margin_percent: margin,
                empirical: hits / n,
                gaussian_fit,
            }
        })
        .collect();
    points.sort_by(|a, b| {
        a.margin_percent
            .partial_cmp(&b.margin_percent)
            .expect("finite margins")
    });

    Ok(YieldCurve {
        label: format!("{} (n = {})", dist.option().paper_label(), dist.n()),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{tdp_distribution, McConfig};
    use mpvar_sram::BitcellGeometry;
    use mpvar_tech::{preset::n10, PatterningOption, VariationBudget};

    fn dist(option: PatterningOption) -> TdpDistribution {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        let budget = VariationBudget::paper_default(option, 8.0).unwrap();
        tdp_distribution(
            &tech,
            &cell,
            option,
            &budget,
            64,
            &McConfig {
                trials: 4000,
                seed: 11,
                ..McConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn yield_is_monotone_in_margin() {
        let d = dist(PatterningOption::Le3);
        let margins: Vec<f64> = (-10..=20).map(|k| k as f64).collect();
        let curve = yield_curve(&d, &margins).unwrap();
        let mut last = 0.0;
        for p in &curve.points {
            assert!(p.empirical >= last);
            assert!((0.0..=1.0).contains(&p.empirical));
            assert!((0.0..=1.0).contains(&p.gaussian_fit));
            last = p.empirical;
        }
        // Extremes saturate.
        assert_eq!(curve.points.first().unwrap().empirical, 0.0);
        assert_eq!(curve.points.last().unwrap().empirical, 1.0);
    }

    #[test]
    fn gaussian_fit_tracks_empirical_for_sadp() {
        // SADP is near-normal: the fit agrees within a couple of points.
        let d = dist(PatterningOption::Sadp);
        let curve = yield_curve(&d, &[-1.0, 0.0, 1.0, 2.0]).unwrap();
        for p in &curve.points {
            assert!(
                (p.empirical - p.gaussian_fit).abs() < 0.03,
                "margin {}: {} vs {}",
                p.margin_percent,
                p.empirical,
                p.gaussian_fit
            );
        }
    }

    #[test]
    fn le3_needs_larger_margin_than_sadp() {
        // The design takeaway: at the same yield target, LE3 demands a
        // much wider timing margin.
        let margins: Vec<f64> = (0..40).map(|k| 0.25 * k as f64).collect();
        let le3 = yield_curve(&dist(PatterningOption::Le3), &margins).unwrap();
        let sadp = yield_curve(&dist(PatterningOption::Sadp), &margins).unwrap();
        let m_le3 = le3.margin_for(0.997).expect("margin exists");
        let m_sadp = sadp.margin_for(0.997).expect("margin exists");
        assert!(
            m_le3 > 1.5 * m_sadp,
            "LE3 margin {m_le3}% vs SADP {m_sadp}%"
        );
    }

    #[test]
    fn normality_structure_matches_the_physics() {
        // SADP's tdp is near-normal; LE3's is right-skewed by the convex
        // coupling-vs-gap law. KS quantifies it: LE3's fitted-Gaussian
        // distance is several times SADP's.
        use mpvar_stats::ks_test_fitted;
        let sadp = ks_test_fitted(dist(PatterningOption::Sadp).samples_percent()).unwrap();
        let le3 = ks_test_fitted(dist(PatterningOption::Le3).samples_percent()).unwrap();
        assert!(
            le3.statistic > 2.0 * sadp.statistic,
            "LE3 D = {} vs SADP D = {}",
            le3.statistic,
            sadp.statistic
        );
        // And LE3's skew is positive, as Fig. 5 shows.
        let le3_dist = dist(PatterningOption::Le3);
        assert!(le3_dist.summary().skewness() > 0.2);
    }

    #[test]
    fn report_and_errors() {
        let d = dist(PatterningOption::Euv);
        let curve = yield_curve(&d, &[2.0, -2.0, 0.0]).unwrap();
        // Sorted by margin.
        assert_eq!(curve.points[0].margin_percent, -2.0);
        assert!(curve.report().render().contains("EUV"));
        assert!(yield_curve(&d, &[]).is_err());
    }
}
