//! Worst-case variability search (paper §II.B) and the td study (Fig. 4).
//!
//! The ±3σ corner enumeration is a parallel map-reduce (`mpvar-exec`):
//! every corner is scored independently, then a single in-order scan
//! picks the maximum with ties broken toward the **lowest corner
//! index** — exactly what the sequential first-strict-maximum loop
//! selects — so the winning corner never depends on scheduling.

use mpvar_exec::ExecConfig;
use mpvar_extract::{extract_track, RelativeVariation, WireParasitics};
use mpvar_litho::{apply_draw, corner_draws, CornerSpec, Draw};
use mpvar_sram::{simulate_read, BitcellGeometry, ReadConfig};
use mpvar_tech::{PatterningOption, TechDb, VariationBudget};
use mpvar_trace::names;

use crate::error::CoreError;
use crate::nominal::NominalWindow;

/// The worst corner of one patterning option, by bit-line capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCase {
    /// The option searched.
    pub option: PatterningOption,
    /// The winning corner draw.
    pub draw: Draw,
    /// Nominal bit-line parasitics (per analysed window).
    pub nominal: WireParasitics,
    /// Worst-case bit-line parasitics.
    pub worst: WireParasitics,
    /// `R_var` / `C_var` multipliers (Table I's impact columns).
    pub variation: RelativeVariation,
    /// Corners skipped because they printed shorted/collapsed lines.
    pub infeasible_corners: usize,
}

/// Searches all ±3σ corner combinations of `option` for the one that
/// maximizes the central bit line's total capacitance — the paper's
/// worst-case criterion ("the worst case scenario for each option with
/// respect to C_bl increase", §II.B).
///
/// Corners whose printed geometry is physically infeasible (shorted or
/// collapsed lines) are skipped and counted.
///
/// # Errors
///
/// * [`CoreError::NoFeasibleCorner`] when every corner shorts;
/// * propagated tech/extraction failures.
pub fn find_worst_case(
    tech: &TechDb,
    cell: &BitcellGeometry,
    option: PatterningOption,
    budget: &VariationBudget,
) -> Result<WorstCase, CoreError> {
    let window = NominalWindow::build(tech, cell, option)?;
    find_worst_case_with(&window, budget, ExecConfig::default())
}

/// [`find_worst_case`] against a precomputed [`NominalWindow`] and an
/// explicit thread-count knob — the cache-aware entry point used by the
/// experiment matrix.
///
/// The corner scores are computed in parallel, then reduced by one
/// in-order scan keeping the first strict maximum, so the winning
/// corner has the lowest index among ties and is identical for every
/// thread count.
///
/// # Errors
///
/// * [`CoreError::NoFeasibleCorner`] when every corner shorts;
/// * propagated tech/extraction failures.
pub fn find_worst_case_with(
    window: &NominalWindow<'_>,
    budget: &VariationBudget,
    exec: ExecConfig,
) -> Result<WorstCase, CoreError> {
    let option = window.option();
    let draws = corner_draws(option, budget, CornerSpec::default());
    let _search_span = mpvar_trace::span!(
        names::SPAN_CORNER_SEARCH,
        option = option.to_string(),
        corners = draws.len(),
    );
    // Score every corner independently: `None` marks a physically
    // infeasible print (shorted/collapsed lines), hard extraction
    // errors abort with the lowest corner index (what a sequential
    // loop would have hit first).
    let mut scored: Vec<Option<WireParasitics>> = mpvar_exec::try_par_map_indexed(
        &draws,
        exec.effective_threads(),
        |_, draw| match apply_draw(window.stack(), draw) {
            Ok(printed) => extract_track(&printed, window.bl_index(), window.metal())
                .map(Some)
                .map_err(CoreError::from),
            Err(_) => Ok(None),
        },
    )?;

    // Deterministic reduce: first strict maximum wins, so ties break
    // toward the lowest corner index.
    let mut best: Option<(usize, f64)> = None;
    let mut infeasible = 0usize;
    for (i, parasitics) in scored.iter().enumerate() {
        match parasitics {
            None => infeasible += 1,
            Some(p) => {
                let better = match best {
                    Some((_, b)) => p.c_total_f() > b,
                    None => true,
                };
                if better {
                    best = Some((i, p.c_total_f()));
                }
            }
        }
    }

    mpvar_trace::counter_add(names::CORNERS_ENUMERATED, draws.len() as u64);
    mpvar_trace::counter_add(names::CORNERS_INFEASIBLE, infeasible as u64);

    let (winner, _) = best.ok_or_else(|| CoreError::NoFeasibleCorner {
        option: option.to_string(),
    })?;
    let worst = scored[winner].take().expect("winner was scored");
    let draw = draws[winner];
    let variation = RelativeVariation::between(window.nominal(), &worst);
    Ok(WorstCase {
        option,
        draw,
        nominal: window.nominal().clone(),
        worst,
        variation,
        infeasible_corners: infeasible,
    })
}

/// One row of the worst-case td study (Fig. 4): nominal and worst-case
/// simulated read times for one array size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseTdRow {
    /// Array size (word lines).
    pub n: usize,
    /// Simulated nominal td, s.
    pub td_nominal_s: f64,
    /// Simulated worst-case td, s.
    pub td_worst_s: f64,
}

impl WorstCaseTdRow {
    /// Read-time penalty in percent.
    pub fn tdp_percent(&self) -> f64 {
        (self.td_worst_s / self.td_nominal_s - 1.0) * 100.0
    }
}

/// Simulates the worst-case td penalty of `worst_case` across the given
/// array sizes (the paper uses 16/64/256/1024).
///
/// # Errors
///
/// Propagates read-simulation failures.
pub fn worst_case_td_study(
    tech: &TechDb,
    cell: &BitcellGeometry,
    config: &ReadConfig,
    worst_case: &WorstCase,
    sizes: &[usize],
) -> Result<Vec<WorstCaseTdRow>, CoreError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let nominal = simulate_read(tech, cell, config, n, &Draw::nominal(worst_case.option))?;
        let worst = simulate_read(tech, cell, config, n, &worst_case.draw)?;
        rows.push(WorstCaseTdRow {
            n,
            td_nominal_s: nominal.td_s,
            td_worst_s: worst.td_s,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn setup() -> (TechDb, BitcellGeometry) {
        let tech = n10();
        let cell = BitcellGeometry::n10_hd(&tech).unwrap();
        (tech, cell)
    }

    fn worst(option: PatterningOption, ol: f64) -> WorstCase {
        let (tech, cell) = setup();
        let budget = VariationBudget::paper_default(option, ol).unwrap();
        find_worst_case(&tech, &cell, option, &budget).unwrap()
    }

    #[test]
    fn le3_worst_case_is_large_and_overlay_driven() {
        let wc = worst(PatterningOption::Le3, 8.0);
        // Table I regime: tens of percent C increase, R decrease.
        assert!(
            wc.variation.c_percent() > 30.0 && wc.variation.c_percent() < 90.0,
            "dC = {}%",
            wc.variation.c_percent()
        );
        assert!(wc.variation.r_percent() < -5.0);
        // The winning corner must use both overlays at full swing,
        // approaching the BL from both sides.
        match wc.draw {
            Draw::Le3(d) => {
                assert_eq!(d.overlay_nm[1].abs(), 8.0);
                assert_eq!(d.overlay_nm[2].abs(), 8.0);
                // CDs all at +3 (wider lines shrink gaps further).
                for cd in d.cd_nm {
                    assert_eq!(cd, 3.0);
                }
            }
            _ => panic!("wrong option"),
        }
    }

    #[test]
    fn sadp_worst_case_is_small() {
        let wc = worst(PatterningOption::Sadp, 8.0);
        // Self-alignment: single-digit percent C change.
        assert!(
            wc.variation.c_percent() > 0.0 && wc.variation.c_percent() < 12.0,
            "dC = {}%",
            wc.variation.c_percent()
        );
        // Spacer-defined bit line widens strongly: R drops a lot
        // (paper: -18.19%).
        assert!(
            wc.variation.r_percent() < -10.0,
            "dR = {}%",
            wc.variation.r_percent()
        );
    }

    #[test]
    fn euv_worst_case_between_options() {
        let le3 = worst(PatterningOption::Le3, 8.0);
        let sadp = worst(PatterningOption::Sadp, 8.0);
        let euv = worst(PatterningOption::Euv, 8.0);
        // Paper's ordering: LE3 >> EUV > SADP on C_bl impact.
        assert!(le3.variation.c_percent() > euv.variation.c_percent());
        assert!(euv.variation.c_percent() > sadp.variation.c_percent());
    }

    #[test]
    fn tighter_overlay_budget_shrinks_le3_worst_case() {
        let loose = worst(PatterningOption::Le3, 8.0);
        let tight = worst(PatterningOption::Le3, 3.0);
        assert!(tight.variation.c_percent() < loose.variation.c_percent());
    }

    #[test]
    fn infeasible_corners_counted_not_fatal() {
        // An absurd overlay budget shorts many corners but the search
        // still returns the best feasible one.
        let (tech, cell) = setup();
        let budget = VariationBudget::new(3.0, 20.0, 0.0).unwrap();
        let wc = find_worst_case(&tech, &cell, PatterningOption::Le3, &budget).unwrap();
        assert!(wc.infeasible_corners > 0);
    }

    #[test]
    fn all_corners_infeasible_is_an_error() {
        let (tech, cell) = setup();
        // 60nm overlay shorts every +/- corner.
        let budget = VariationBudget::new(3.0, 60.0, 0.0).unwrap();
        assert!(matches!(
            find_worst_case(&tech, &cell, PatterningOption::Le3, &budget),
            Err(CoreError::NoFeasibleCorner { .. })
        ));
    }

    #[test]
    fn td_study_small_sizes() {
        let (tech, cell) = setup();
        let wc = worst(PatterningOption::Le3, 8.0);
        let rows =
            worst_case_td_study(&tech, &cell, &ReadConfig::default(), &wc, &[8, 16]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.td_worst_s > r.td_nominal_s);
            assert!(r.tdp_percent() > 5.0, "tdp = {}%", r.tdp_percent());
        }
        assert!(rows[1].td_nominal_s > rows[0].td_nominal_s);
    }
}
