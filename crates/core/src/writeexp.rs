//! Write path, sense periphery, and word-line studies under MP
//! variability — the write-side counterparts of the paper's read
//! experiments.
//!
//! The paper quantifies how interconnect multiple-patterning
//! variability stretches the *read* time; the same decomposed-M1
//! population carries the write operation's bit-line discharge, the
//! differential the sense amplifier must resolve, and the word line
//! that selects the row. This module covers those three faces:
//!
//! * [`write_time`] — nominal and worst-corner write (cell-flip) time
//!   per array height, simulation against the write-path analytical
//!   formula ([`mpvar_sram::FormulaParams::derive_write`]);
//! * [`write_margin`] — Monte-Carlo write-time-penalty spread per
//!   option on the shared trial farm;
//! * [`sense_margin`] — per-trial Gaussian sense-amp input offset
//!   interacting with the MP-induced bit-line RC skew: a read fails
//!   when the developed differential inside the sense window does not
//!   clear the offset;
//! * [`wl_delay`] — near- versus far-column word-line Elmore delay
//!   from the same printed-wire population;
//! * [`write_yield`] — rare-event write-failure probability per option
//!   through the importance-sampling engine, reported next to the
//!   read-model failure probability at the same margin.
//!
//! Every runner reads its knobs from [`WriteStudySettings`] — fixed
//! sizes, trials, and seeds independent of the context's quick/paper
//! profile — so the artifacts are profile-invariant and their golden
//! CSVs are compared strictly in both `repro check` profiles.

use mpvar_extract::{extract_track, RelativeVariation};
use mpvar_litho::{apply_draw, sample_draw, Draw};
use mpvar_sram::{simulate_write, FormulaParams, WriteConfig};
use mpvar_stats::sampler::standard_normal;
use mpvar_stats::RngStream;
use mpvar_tech::{PatterningOption, VariationBudget};
use mpvar_yield::{run_yield, Proposal, YieldConfig};

use crate::error::CoreError;
use crate::experiments::{ExperimentContext, Table1};
use crate::formula::AnalyticalModel;
use crate::montecarlo::{twp_distribution_with, McConfig};
use crate::nominal::NominalCache;
use crate::rareevent::FormulaYieldProblem;
use crate::report::{pct, ps, TextTable};

/// Settings of the write-path study family.
///
/// Deliberately independent of the context's DOE sizes and Monte-Carlo
/// knobs (own sizes, trials, and seed): each artifact's output is a
/// pure function of these settings and the technology, so its golden
/// CSV is compared strictly in both `repro check` profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct WriteStudySettings {
    /// Array heights of the [`write_time`] ladder.
    pub sizes: Vec<usize>,
    /// Array height of the margin/sense/yield studies.
    pub margin_n: usize,
    /// Monte-Carlo trials of [`write_margin`].
    pub margin_trials: usize,
    /// Monte-Carlo trials of [`sense_margin`].
    pub sense_trials: usize,
    /// RNG seed of every write-family study (independent of the MC
    /// seed).
    pub seed: u64,
    /// LE3 overlay budget (3σ, nm) of the whole family.
    pub le3_overlay_nm: f64,
    /// Sense-amp input-referred offset sigma, V.
    pub sense_offset_sigma_v: f64,
    /// Sense window as a multiple of the nominal formula read time.
    pub sense_window_factor: f64,
    /// Columns of the [`wl_delay`] word line.
    pub wl_columns: usize,
    /// Word-line driver strength relative to the unit NMOS.
    pub wl_driver_strength: f64,
    /// Absolute write-time-penalty margins (percent) of [`write_yield`].
    pub yield_margins_percent: Vec<f64>,
    /// Scaled-sigma proposal multiplier of the yield runs.
    pub sigma_scale: f64,
    /// Soft trial budget per yield run.
    pub yield_max_trials: usize,
    /// First-round trial count of the yield runs.
    pub yield_base_round: usize,
}

impl Default for WriteStudySettings {
    /// A 4–32 write-time ladder, n = 64 margin studies at 3000/2000
    /// trials, an 8 mV offset sense amp with a 1.2× window, a 64-column
    /// word line, and 8%/14% yield margins — all sized to stay in
    /// CI-smoke territory.
    fn default() -> Self {
        Self {
            sizes: vec![4, 8, 16, 32],
            margin_n: 64,
            margin_trials: 3_000,
            sense_trials: 2_000,
            seed: 77,
            le3_overlay_nm: 8.0,
            sense_offset_sigma_v: 0.008,
            sense_window_factor: 1.2,
            wl_columns: 64,
            wl_driver_strength: 8.0,
            yield_margins_percent: vec![8.0, 14.0],
            sigma_scale: 3.0,
            yield_max_trials: 32_768,
            yield_base_round: 2_048,
        }
    }
}

impl WriteStudySettings {
    /// The variation budget of `option` at this family's LE3 overlay.
    ///
    /// # Errors
    ///
    /// Propagates budget validation.
    pub fn budget(&self, option: PatterningOption) -> Result<VariationBudget, CoreError> {
        Ok(VariationBudget::paper_default(option, self.le3_overlay_nm)?)
    }
}

fn write_model(ctx: &ExperimentContext, wc: &WriteConfig) -> Result<AnalyticalModel, CoreError> {
    let params = FormulaParams::derive_write(&ctx.tech, &ctx.cell, wc.vdd_v, wc.driver_strength)?;
    AnalyticalModel::new(params, wc.flip_fraction)
}

// ---------------------------------------------------------------------------
// Write time — nominal and worst-corner flip time per array height
// ---------------------------------------------------------------------------

/// Write-time study: simulated and formula flip times per array height,
/// plus the simulated worst-corner penalty per option.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteTime {
    /// Array heights of the ladder.
    pub sizes: Vec<usize>,
    /// Simulated nominal flip time per size, s.
    pub t_write_sim_s: Vec<f64>,
    /// Write-formula flip time per size, s.
    pub t_write_formula_s: Vec<f64>,
    /// Per option: simulated worst-corner write-time penalty (percent)
    /// per size, in [`PatterningOption::ALL`] order.
    pub penalty_percent: Vec<(PatterningOption, Vec<f64>)>,
}

/// Runs the write-time ladder using the Table I worst corners.
///
/// The nominal geometry is patterning-independent, so the nominal flip
/// time is simulated once per size and shared across options — the
/// write-side mirror of the Fig. 4 study.
///
/// # Errors
///
/// Propagates write-simulation and model failures.
pub fn write_time(ctx: &ExperimentContext, table1: &Table1) -> Result<WriteTime, CoreError> {
    let s = &ctx.write_settings;
    let wc = WriteConfig::default();
    let model = write_model(ctx, &wc)?;
    let threads = ctx.exec.effective_threads();
    let t_write_sim_s = mpvar_exec::try_par_map_indexed(&s.sizes, threads, |_, &n| {
        simulate_write(
            &ctx.tech,
            &ctx.cell,
            &wc,
            n,
            &Draw::nominal(PatterningOption::Euv),
        )
        .map(|out| out.t_write_s)
        .map_err(CoreError::from)
    })?;
    let t_write_formula_s = s.sizes.iter().map(|&n| model.td_nominal_s(n)).collect();
    let n_sizes = s.sizes.len();
    let flat = mpvar_exec::try_par_map_range(table1.worst_cases.len() * n_sizes, threads, |i| {
        let w = &table1.worst_cases[i / n_sizes];
        let n = s.sizes[i % n_sizes];
        simulate_write(&ctx.tech, &ctx.cell, &wc, n, &w.draw)
            .map(|out| out.t_write_s)
            .map_err(CoreError::from)
    })?;
    let penalty_percent = table1
        .worst_cases
        .iter()
        .enumerate()
        .map(|(j, w)| {
            let penalties = flat[j * n_sizes..(j + 1) * n_sizes]
                .iter()
                .zip(&t_write_sim_s)
                .map(|(worst, nom)| (worst / nom - 1.0) * 100.0)
                .collect();
            (w.option, penalties)
        })
        .collect();
    Ok(WriteTime {
        sizes: s.sizes.clone(),
        t_write_sim_s,
        t_write_formula_s,
        penalty_percent,
    })
}

impl WriteTime {
    /// The worst-corner penalty column of one option.
    pub fn penalty_of(&self, option: PatterningOption) -> &[f64] {
        &self
            .penalty_percent
            .iter()
            .find(|(o, _)| *o == option)
            .expect("all options are populated")
            .1
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            "Write time: simulated and formula flip time per array height",
            &[
                "array",
                "t_write sim",
                "t_write formula",
                "twp LELELE",
                "twp SADP",
                "twp EUV",
            ],
        );
        let le3 = self.penalty_of(PatterningOption::Le3);
        let sadp = self.penalty_of(PatterningOption::Sadp);
        let euv = self.penalty_of(PatterningOption::Euv);
        for (i, &n) in self.sizes.iter().enumerate() {
            t.row(&[
                &format!("10x{n}"),
                &ps(self.t_write_sim_s[i]),
                &ps(self.t_write_formula_s[i]),
                &pct(le3[i]),
                &pct(sadp[i]),
                &pct(euv[i]),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Write margin — Monte-Carlo write-time-penalty spread per option
// ---------------------------------------------------------------------------

/// Write-margin study: the Monte-Carlo write-time-penalty distribution
/// summary per option.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteMargin {
    /// Array height of every run.
    pub n: usize,
    /// `(option, sigma %, mean %, min %, max %)` rows in
    /// [`PatterningOption::ALL`] order.
    pub rows: Vec<(PatterningOption, f64, f64, f64, f64)>,
}

/// Runs the write-margin Monte-Carlo on the shared trial farm.
///
/// # Errors
///
/// Propagates Monte-Carlo failures.
pub fn write_margin(ctx: &ExperimentContext) -> Result<WriteMargin, CoreError> {
    let s = &ctx.write_settings;
    let wc = WriteConfig::default();
    let n = s.margin_n;
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;
    let options = PatterningOption::ALL;
    let (outer, inner) = ctx.exec.split(options.len());
    let rows = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let budget = s.budget(option)?;
        let d = twp_distribution_with(
            cache.window(option)?,
            &budget,
            n,
            &McConfig {
                trials: s.margin_trials,
                seed: s.seed,
                exec: inner,
            },
            wc.driver_strength,
            wc.flip_fraction,
        )?;
        Ok::<_, CoreError>((
            option,
            d.sigma_percent(),
            d.summary().mean(),
            d.summary().min(),
            d.summary().max(),
        ))
    })?;
    Ok(WriteMargin { n, rows })
}

impl WriteMargin {
    /// The row of one option.
    pub fn of(&self, option: PatterningOption) -> &(PatterningOption, f64, f64, f64, f64) {
        self.rows
            .iter()
            .find(|(o, _, _, _, _)| *o == option)
            .expect("all options are populated")
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Write margin: Monte-Carlo write-time-penalty spread (n = {})",
                self.n
            ),
            &["option", "sigma (% twp)", "mean", "min", "max"],
        );
        for (option, sigma, mean, min, max) in &self.rows {
            t.row(&[
                option.paper_label(),
                &format!("{sigma:.3}"),
                &format!("{mean:+.3}"),
                &format!("{min:+.2}"),
                &format!("{max:+.2}"),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Sense margin — per-trial sense-amp offset against the MP-skewed RC
// ---------------------------------------------------------------------------

/// Sense-margin study: the interaction of a Gaussian sense-amp input
/// offset with the MP-induced bit-line RC skew.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseMargin {
    /// Array height of every trial.
    pub n: usize,
    /// Sense window, s (a fixed multiple of the nominal formula read
    /// time).
    pub window_s: f64,
    /// Offset sigma, V.
    pub offset_sigma_v: f64,
    /// `(option, failure fraction, mean margin V, sigma margin V)` rows
    /// in [`PatterningOption::ALL`] order.
    pub rows: Vec<(PatterningOption, f64, f64, f64)>,
}

/// Runs the sense-margin Monte-Carlo: per trial, the MP draw fixes the
/// bit-line RC (so the differential developed inside the fixed sense
/// window), the offset is an independent Gaussian, and the read fails
/// when the differential does not clear `sense_dv + offset`.
///
/// Trial `k` consumes RNG substream `k` (draw first, then offset), so
/// the result is independent of evaluation order.
///
/// # Errors
///
/// Propagates sampling/extraction/model failures.
pub fn sense_margin(ctx: &ExperimentContext) -> Result<SenseMargin, CoreError> {
    let s = &ctx.write_settings;
    let n = s.margin_n;
    let params = FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let level = ctx.read_config.sense_dv_v / ctx.read_config.vdd_v;
    let model = AnalyticalModel::new(params, level)?;
    // td = a·τ at discharge level `level`, so the trial RC constant is
    // recoverable from the formula time.
    let a = -(1.0 - level).ln();
    let window_s = s.sense_window_factor * model.td_nominal_s(n);
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;

    let options = PatterningOption::ALL;
    let (outer, _) = ctx.exec.split(options.len());
    let rows = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let window = cache.window(option)?;
        let budget = s.budget(option)?;
        let base = RngStream::from_seed(s.seed);
        let mut margins = Vec::with_capacity(s.sense_trials);
        let mut failures = 0usize;
        let mut consumed = 0usize;
        let mut k = 0u64;
        // Shorted prints are screened out (they are hard yield losses,
        // counted by the read/write yield studies, not sense failures);
        // the trial budget counts evaluated columns.
        while consumed < s.sense_trials {
            let mut rng = base.substream(k);
            k += 1;
            let draw = sample_draw(option, &budget, &mut rng)?;
            let printed = match apply_draw(window.stack(), &draw) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let parasitics = extract_track(&printed, window.bl_index(), window.metal())?;
            let var = RelativeVariation::between(window.nominal(), &parasitics);
            let tau_s = model.td_s(n, var.r_var, var.c_var) / a;
            let dv_v = ctx.read_config.vdd_v * (1.0 - (-window_s / tau_s).exp());
            let offset_v = s.sense_offset_sigma_v * standard_normal(&mut rng);
            let margin_v = dv_v - ctx.read_config.sense_dv_v - offset_v;
            if margin_v < 0.0 {
                failures += 1;
            }
            margins.push(margin_v);
            consumed += 1;
        }
        let summary: mpvar_stats::Summary = margins.iter().copied().collect();
        Ok::<_, CoreError>((
            option,
            failures as f64 / s.sense_trials as f64,
            summary.mean(),
            summary.std_dev(),
        ))
    })?;
    Ok(SenseMargin {
        n,
        window_s,
        offset_sigma_v: s.sense_offset_sigma_v,
        rows,
    })
}

impl SenseMargin {
    /// The row of one option.
    pub fn of(&self, option: PatterningOption) -> &(PatterningOption, f64, f64, f64) {
        self.rows
            .iter()
            .find(|(o, _, _, _)| *o == option)
            .expect("all options are populated")
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Sense margin: offset sigma {:.0} mV inside a {} window (n = {})",
                self.offset_sigma_v * 1e3,
                ps(self.window_s),
                self.n
            ),
            &["option", "failure fraction", "mean margin", "sigma margin"],
        );
        for (option, frac, mean, sigma) in &self.rows {
            t.row(&[
                option.paper_label(),
                &format!("{frac:.4}"),
                &format!("{:.2} mV", mean * 1e3),
                &format!("{:.2} mV", sigma * 1e3),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Word-line delay — near versus far column from the same population
// ---------------------------------------------------------------------------

/// Word-line delay study: near- and far-column Elmore delay per option
/// at the nominal print and the Table I worst corner.
#[derive(Debug, Clone, PartialEq)]
pub struct WlDelay {
    /// Columns of the word line.
    pub columns: usize,
    /// Nominal near-column delay, s.
    pub near_nominal_s: f64,
    /// Nominal far-column delay, s.
    pub far_nominal_s: f64,
    /// `(option, worst near s, worst far s, far penalty %)` rows in
    /// [`PatterningOption::ALL`] order.
    pub rows: Vec<(PatterningOption, f64, f64, f64)>,
}

/// Elmore delay at column `j` (1-based) of a uniform RC ladder driven
/// through `r_drv`: `R_drv·C_total + Σ_{k≤j} r_w·C_downstream(k)`.
fn elmore_at(j: usize, m: usize, r_drv: f64, r_w: f64, c_cell: f64) -> f64 {
    let c_total = m as f64 * c_cell;
    let mut t = r_drv * c_total;
    for k in 1..=j {
        t += r_w * (m - k + 1) as f64 * c_cell;
    }
    t
}

/// Runs the word-line delay study: the word line is one more track of
/// the same decomposed horizontal-M1 population the bit lines come
/// from, so each option's worst corner stretches it the same way. The
/// per-cell wire RC is extracted from the printed window; every column
/// adds two pass-gate gate loads.
///
/// # Errors
///
/// Propagates extraction failures.
pub fn wl_delay(ctx: &ExperimentContext, table1: &Table1) -> Result<WlDelay, CoreError> {
    let s = &ctx.write_settings;
    let m = s.wl_columns;
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &PatterningOption::ALL)?;
    let nmos = ctx.tech.nmos();
    let vov = (ctx.read_config.vdd_v - nmos.vth_v()).max(0.05);
    let r_drv = nmos.equivalent_resistance(vov, ctx.read_config.vdd_v) / s.wl_driver_strength;
    // Two access transistors hang off the word line in every cell.
    let c_gate = 2.0 * nmos.c_gate_f() * ctx.cell.sizing().pass_gate;

    let delays = |parasitics: &mpvar_extract::WireParasitics| {
        let r_w = parasitics.resistance_ohm();
        let c_cell = parasitics.c_total_f() + c_gate;
        (
            elmore_at(1, m, r_drv, r_w, c_cell),
            elmore_at(m, m, r_drv, r_w, c_cell),
        )
    };

    // The nominal print is patterning-independent.
    let nominal_window = cache.window(PatterningOption::Euv)?;
    let (near_nominal_s, far_nominal_s) = delays(nominal_window.nominal());

    let mut rows = Vec::new();
    for w in &table1.worst_cases {
        let window = cache.window(w.option)?;
        let printed = apply_draw(window.stack(), &w.draw)?;
        let parasitics = extract_track(&printed, window.bl_index(), window.metal())?;
        let (near, far) = delays(&parasitics);
        rows.push((w.option, near, far, (far / far_nominal_s - 1.0) * 100.0));
    }
    Ok(WlDelay {
        columns: m,
        near_nominal_s,
        far_nominal_s,
        rows,
    })
}

impl WlDelay {
    /// The row of one option.
    pub fn of(&self, option: PatterningOption) -> &(PatterningOption, f64, f64, f64) {
        self.rows
            .iter()
            .find(|(o, _, _, _)| *o == option)
            .expect("all options are populated")
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Word-line delay: near vs far column over {} columns (nominal far {})",
                self.columns,
                ps(self.far_nominal_s)
            ),
            &["option", "near (worst)", "far (worst)", "far penalty"],
        );
        for (option, near, far, penalty) in &self.rows {
            t.row(&[option.paper_label(), &ps(*near), &ps(*far), &pct(*penalty)]);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Write yield — rare-event write-failure probability per option
// ---------------------------------------------------------------------------

/// One row of [`WriteYieldTable`]: the write- and read-model failure
/// probabilities of one option at one margin.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteYieldRow {
    /// Patterning option.
    pub option: PatterningOption,
    /// Timing margin (percent penalty) defining failure.
    pub margin_percent: f64,
    /// Write-model failure probability.
    pub write_p_fail: f64,
    /// Write-model CI lower bound.
    pub ci_lo: f64,
    /// Write-model CI upper bound.
    pub ci_hi: f64,
    /// Trials consumed by the write run.
    pub trials: u64,
    /// Whether the write run's stopping rule (not the budget) ended it.
    pub converged: bool,
    /// Read-model failure probability at the same margin, for the
    /// side-by-side comparison.
    pub read_p_fail: f64,
}

/// Write-yield study: importance-sampled write-failure probability per
/// option and margin, next to the read-model probability.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteYieldTable {
    /// Array height of every run.
    pub n: usize,
    /// All rows, option-major in [`PatterningOption::ALL`] order.
    pub rows: Vec<WriteYieldRow>,
}

/// Runs the write-yield study: per option and margin, an adaptive
/// scaled-sigma importance-sampling run of the *write* analytical model
/// (failure = shorted print OR write-time penalty above the margin)
/// through the same [`FormulaYieldProblem`] machinery the read yield
/// uses, plus a read-model run at the same margin for the side-by-side
/// column.
///
/// Runs are deterministic and bit-identical at any thread count.
///
/// # Errors
///
/// Propagates tech/extraction/yield-engine failures.
pub fn write_yield(ctx: &ExperimentContext) -> Result<WriteYieldTable, CoreError> {
    let s = &ctx.write_settings;
    let wc = WriteConfig::default();
    let n = s.margin_n;
    let w_model = write_model(ctx, &wc)?;
    let read_params = FormulaParams::derive(&ctx.tech, &ctx.cell, ctx.read_config.vdd_v)?;
    let r_model = AnalyticalModel::new(
        read_params,
        ctx.read_config.sense_dv_v / ctx.read_config.vdd_v,
    )?;
    let options = PatterningOption::ALL;
    let cache = NominalCache::build(&ctx.tech, &ctx.cell, &options)?;
    let (outer, inner) = ctx.exec.split(options.len());
    let per_option = mpvar_exec::try_par_map_indexed(&options, outer, |_, &option| {
        let window = cache.window(option)?;
        let budget = s.budget(option)?;
        let run_model = |model: AnalyticalModel, margin: f64| {
            let problem = FormulaYieldProblem::new(window, &budget, model, n, margin)?;
            let cfg = YieldConfig::new(
                problem.map().domain()?,
                Proposal::ScaledSigma {
                    scale: s.sigma_scale,
                },
            )
            .seed(s.seed)
            .base_round(s.yield_base_round)
            .max_trials(s.yield_max_trials)
            .exec(inner);
            Ok::<_, CoreError>(run_yield(&problem, &cfg)?)
        };
        let mut rows = Vec::new();
        for &margin in &s.yield_margins_percent {
            let write_run = run_model(w_model, margin)?;
            let read_run = run_model(r_model, margin)?;
            let est = write_run.estimate(0.95)?;
            rows.push(WriteYieldRow {
                option,
                margin_percent: margin,
                write_p_fail: est.p_fail,
                ci_lo: est.ci_lo,
                ci_hi: est.ci_hi,
                trials: est.trials,
                converged: write_run.converged(),
                read_p_fail: read_run.estimate(0.95)?.p_fail,
            });
        }
        Ok::<Vec<WriteYieldRow>, CoreError>(rows)
    })?;
    Ok(WriteYieldTable {
        n,
        rows: per_option.into_iter().flatten().collect(),
    })
}

impl WriteYieldTable {
    /// Rows of one option, in emission order.
    pub fn rows_of(&self, option: PatterningOption) -> impl Iterator<Item = &WriteYieldRow> + '_ {
        self.rows.iter().filter(move |r| r.option == option)
    }

    /// Renders the report table.
    pub fn report(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!(
                "Write yield: importance-sampled write-failure probability (n = {})",
                self.n
            ),
            &[
                "option",
                "margin",
                "write p_fail",
                "ci_lo",
                "ci_hi",
                "trials",
                "converged",
                "read p_fail",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.option.paper_label(),
                &format!("{:.1}%", r.margin_percent),
                &format!("{:.6e}", r.write_p_fail),
                &format!("{:.6e}", r.ci_lo),
                &format!("{:.6e}", r.ci_hi),
                &r.trials.to_string(),
                if r.converged { "yes" } else { "no" },
                &format!("{:.6e}", r.read_p_fail),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{table1, ExperimentContext};

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick().unwrap()
    }

    #[test]
    fn write_time_grows_with_height_and_tracks_the_formula() {
        let c = ctx();
        let t1 = table1(&c).unwrap();
        let wt = write_time(&c, &t1).unwrap();
        assert_eq!(wt.sizes, vec![4, 8, 16, 32]);
        for pair in wt.t_write_sim_s.windows(2) {
            assert!(pair[1] > pair[0], "sim write time not growing: {pair:?}");
        }
        for pair in wt.t_write_formula_s.windows(2) {
            assert!(pair[1] > pair[0], "formula not growing: {pair:?}");
        }
        // LE3 penalty dominates at the tallest column.
        let last = wt.sizes.len() - 1;
        let le3 = wt.penalty_of(PatterningOption::Le3)[last];
        let sadp = wt.penalty_of(PatterningOption::Sadp)[last];
        assert!(le3 > sadp, "LE3 {le3}% vs SADP {sadp}%");
        assert!(le3 > 0.0);
        assert!(wt.report().render().contains("twp"));
    }

    #[test]
    fn write_margin_spread_orders_like_table4() {
        let mut c = ctx();
        c.write_settings.margin_trials = 800;
        let wm = write_margin(&c).unwrap();
        assert_eq!(wm.rows.len(), 3);
        let le3 = wm.of(PatterningOption::Le3).1;
        let sadp = wm.of(PatterningOption::Sadp).1;
        let euv = wm.of(PatterningOption::Euv).1;
        assert!(le3 > 2.0 * sadp, "LE3 {le3} vs SADP {sadp}");
        assert!(le3 > euv, "LE3 {le3} vs EUV {euv}");
        assert!(wm.report().render().contains("sigma"));
        // Determinism across thread counts.
        let mut c1 = c.clone();
        c1.exec = mpvar_exec::ExecConfig::with_threads(1);
        let wm1 = write_margin(&c1).unwrap();
        for (a, b) in wm.rows.iter().zip(&wm1.rows) {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn sense_margin_fails_more_under_le3() {
        let mut c = ctx();
        c.write_settings.sense_trials = 600;
        let sm = sense_margin(&c).unwrap();
        assert_eq!(sm.rows.len(), 3);
        let le3 = sm.of(PatterningOption::Le3);
        let sadp = sm.of(PatterningOption::Sadp);
        // The nominal margin clears comfortably, so failures are driven
        // by the RC tail ∩ offset tail: the wide-spread option fails at
        // least as often, and its margin spread is strictly wider.
        assert!(le3.1 >= sadp.1, "LE3 frac {} vs SADP {}", le3.1, sadp.1);
        assert!(le3.3 > sadp.3, "LE3 sigma {} vs SADP {}", le3.3, sadp.3);
        // Every row keeps a positive mean margin (the periphery is
        // sized to work at nominal).
        for (option, frac, mean, _) in &sm.rows {
            assert!(*mean > 0.0, "{option}: mean margin {mean}");
            assert!(*frac < 0.5, "{option}: failure fraction {frac}");
        }
        assert!(sm.report().render().contains("failure fraction"));
    }

    #[test]
    fn wl_delay_far_column_at_least_near() {
        let c = ctx();
        let t1 = table1(&c).unwrap();
        let wl = wl_delay(&c, &t1).unwrap();
        assert!(wl.far_nominal_s > wl.near_nominal_s);
        for (option, near, far, penalty) in &wl.rows {
            assert!(far > near, "{option}: far {far} vs near {near}");
            assert!(penalty.is_finite());
        }
        // LE3's worst corner stretches the far column the most.
        let le3 = wl.of(PatterningOption::Le3).3;
        let sadp = wl.of(PatterningOption::Sadp).3;
        assert!(le3 > sadp, "LE3 {le3}% vs SADP {sadp}%");
        assert!(wl.report().render().contains("far"));
    }

    #[test]
    fn write_yield_le3_dominates_and_sits_next_to_read() {
        let mut c = ctx();
        c.write_settings.yield_max_trials = 8_192;
        let wy = write_yield(&c).unwrap();
        assert_eq!(wy.rows.len(), 6);
        let le3: Vec<_> = wy.rows_of(PatterningOption::Le3).collect();
        let sadp: Vec<_> = wy.rows_of(PatterningOption::Sadp).collect();
        // At the shallow margin the heavy-tailed option fails more.
        assert!(
            le3[0].write_p_fail > sadp[0].write_p_fail,
            "LE3 {} vs SADP {}",
            le3[0].write_p_fail,
            sadp[0].write_p_fail
        );
        // Deeper margins never fail more often.
        assert!(le3[1].write_p_fail <= le3[0].write_p_fail);
        // The read column is populated (same margin, read model).
        assert!(le3[0].read_p_fail.is_finite());
        assert!(wy.report().render().contains("read p_fail"));
    }

    #[test]
    fn settings_are_profile_invariant() {
        let quick = ExperimentContext::quick().unwrap();
        let paper = ExperimentContext::paper().unwrap();
        assert_eq!(quick.write_settings, paper.write_settings);
    }
}
