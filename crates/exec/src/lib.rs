//! Deterministic parallel execution for `mpvar`.
//!
//! Every hot path in the workspace — Monte-Carlo trial farming, the
//! ±3σ corner search, and the experiment matrix — is embarrassingly
//! parallel, but the reproduction contract demands *bit-identical
//! results for a given seed regardless of thread count or scheduling*.
//! This crate provides the small set of primitives that make both true
//! at once:
//!
//! * [`ExecConfig`] — the single thread-count knob, threaded through
//!   `McConfig` and `ExperimentContext` in `mpvar-core`;
//! * [`par_map_indexed`] / [`try_par_map_indexed`] — map a function
//!   over an indexed domain on a scoped worker pool, with results
//!   placed by index so the output never depends on scheduling;
//! * [`try_par_map_range`] — the same over an index range, used to
//!   farm RNG-substream indices in chunks;
//! * [`dispatch_rounds`] — the round-based dispatch engine shared by
//!   the Monte-Carlo farm and the adaptive yield controller: the
//!   caller sizes each round from folded state, the driver farms it
//!   out and folds outcomes back in global index order;
//! * [`par_argmax_by`] — deterministic parallel argmax with the
//!   lowest-index tie-break the corner search relies on;
//! * [`chunk_ranges`] — the contiguous-chunk partition shared by every
//!   primitive (and mirrored by `mpvar-stats`' substream chunking).
//!
//! # Determinism contract
//!
//! All primitives guarantee: for a pure `f`, the returned vector equals
//! the sequential `(0..n).map(f).collect()` — workers own disjoint
//! contiguous output slices, so no result ever moves between indices.
//! For fallible maps the *lowest-index* error is returned, matching
//! what a sequential loop would have hit first. `threads == 1` runs
//! inline on the calling thread with zero overhead.
//!
//! The pool is a scoped `std::thread` fork-join (no work stealing):
//! chunk boundaries depend only on `(n, threads)`, never on timing.
//!
//! The same ownership discipline extends to solver state: the compiled
//! SPICE kernel's per-netlist workspaces (symbolic LU analysis, CSR
//! values, stamp programs) are created *inside* each trial's closure,
//! so every worker owns its workspaces outright — nothing numeric is
//! shared or aliased across threads, which is why the kernel's
//! preallocated buffers never need locks and thread count cannot
//! perturb results.
//!
//! # Observability
//!
//! When an `mpvar-trace` collector is installed, every map emits an
//! `exec_par_map` span with one `exec_chunk` child per worker chunk
//! (explicitly parented, since workers start with an empty span
//! stack), plus an `exec.chunks` counter and an `exec.imbalance` gauge
//! (slowest-chunk wall over mean-chunk wall). Instrumentation only
//! observes — chunk boundaries and result placement are unchanged, so
//! traced runs stay bit-identical to untraced ones.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::ops::Range;

use mpvar_trace::{names, SpanGuard};

/// Thread-count configuration for the parallel execution layer.
///
/// `None` (the default) uses every core the OS reports;
/// `Some(1)` recovers the exact sequential code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    /// Worker-thread count; `None` means [`available_parallelism`].
    pub threads: Option<usize>,
}

impl Default for ExecConfig {
    /// Use all available cores.
    fn default() -> Self {
        Self { threads: None }
    }
}

impl ExecConfig {
    /// The strictly sequential configuration (`threads = Some(1)`).
    pub const SERIAL: Self = Self { threads: Some(1) };

    /// A configuration pinned to `threads` workers (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
        }
    }

    /// The number of workers this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(available_parallelism).max(1)
    }

    /// Splits the budget between an outer loop of `cells` independent
    /// cells and the parallel work inside each cell.
    ///
    /// Returns `(outer_threads, inner_config)` such that
    /// `outer * inner <= effective_threads()` (both at least 1). Cell
    /// results must still be placed by index; because the inner
    /// primitives are bit-identical for *any* thread count, the split
    /// never changes results — it only avoids oversubscription.
    pub fn split(&self, cells: usize) -> (usize, ExecConfig) {
        let total = self.effective_threads();
        let outer = total.min(cells.max(1));
        let inner = (total / outer).max(1);
        (outer, ExecConfig::with_threads(inner))
    }
}

/// The OS-reported core count (1 when unavailable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Partitions `0..n` into at most `chunks` contiguous ranges of
/// near-equal size (the first `n % chunks` ranges are one longer).
///
/// The partition depends only on `(n, chunks)`, never on timing — it is
/// the unit of work distribution for every primitive in this crate and
/// for RNG-substream farming in `mpvar-stats`.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over `items` on `threads` workers; results are in item
/// order, exactly as the sequential map would produce them.
pub fn par_map_indexed<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    try_par_map_indexed(items, threads, |i, item| {
        Ok::<U, std::convert::Infallible>(f(i, item))
    })
    .unwrap_or_else(|e| match e {})
}

/// Maps a fallible `f` over `items` on `threads` workers.
///
/// On success results are in item order. On failure the error with the
/// *lowest item index* is returned — the same error a sequential loop
/// would have surfaced first — regardless of which worker finished
/// first. Workers in later chunks may still run their items; `f` must
/// therefore be side-effect free (it is in every mpvar hot path).
///
/// # Errors
///
/// The lowest-index error produced by `f`.
pub fn try_par_map_indexed<T, U, F, E>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    try_par_map_range(items.len(), threads, |i| f(i, &items[i]))
}

/// Maps a fallible `f` over the index range `0..n` on `threads`
/// workers, with the same ordering and error guarantees as
/// [`try_par_map_indexed`].
///
/// This is the substream-farming primitive: Monte-Carlo trial `k` maps
/// to RNG substream `k`, so handing `f` raw indices keeps the sample
/// vector bit-identical to the sequential run for any thread count.
///
/// # Errors
///
/// The lowest-index error produced by `f`.
pub fn try_par_map_range<U, F, E>(n: usize, threads: usize, f: F) -> Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(usize) -> Result<U, E> + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let traced = mpvar_trace::enabled();
    let map_span = mpvar_trace::span!(names::SPAN_EXEC_PAR_MAP, n = n, threads = threads);
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f(i)?);
        }
        return Ok(out);
    }

    // One worker's output: its chunk's result buffer (or the first
    // failing index + error) paired with the chunk's wall time in ns
    // (0 untraced) — observation only, it never feeds back into the
    // computation.
    type ChunkOutcome<U, E> = (Result<Vec<U>, (usize, E)>, u64);

    let ranges = chunk_ranges(n, threads);
    let parent = map_span.id();
    // Per-worker result buffers; chunk c owns output indices ranges[c].
    let results: Vec<ChunkOutcome<U, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(c, range)| {
                let range = range.clone();
                let f = &f;
                scope.spawn(move || {
                    let _chunk_span = if traced {
                        SpanGuard::enter_with_parent(
                            parent,
                            names::SPAN_EXEC_CHUNK,
                            vec![
                                ("chunk", c.into()),
                                ("start", range.start.into()),
                                ("len", range.len().into()),
                            ],
                        )
                    } else {
                        SpanGuard::disabled()
                    };
                    let started = traced.then(std::time::Instant::now);
                    let result = (|| {
                        let mut buf = Vec::with_capacity(range.len());
                        for i in range.clone() {
                            match f(i) {
                                Ok(v) => buf.push(v),
                                Err(e) => return Err((i, e)),
                            }
                        }
                        Ok(buf)
                    })();
                    let dur_ns = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (result, dur_ns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mpvar-exec worker panicked"))
            .collect()
    });

    if traced {
        mpvar_trace::counter_add(names::EXEC_CHUNKS, results.len() as u64);
        let slowest = results.iter().map(|(_, d)| *d).max().unwrap_or(0) as f64;
        let mean =
            results.iter().map(|(_, d)| *d).sum::<u64>() as f64 / results.len().max(1) as f64;
        if mean > 0.0 {
            mpvar_trace::gauge_set(names::EXEC_IMBALANCE, slowest / mean);
        }
    }

    // Chunks are in index order, so the first failed chunk holds the
    // lowest-index error (each worker stops at its first failure).
    let mut out = Vec::with_capacity(n);
    for (result, _) in results {
        match result {
            Ok(buf) => out.extend(buf),
            Err((_, e)) => return Err(e),
        }
    }
    Ok(out)
}

/// Maps a fallible *chunk* function over the index range `0..n` on
/// `threads` workers: `f` receives each worker's whole contiguous range
/// (the [`chunk_ranges`] partition) and returns one result per index.
///
/// This is the batched-solver dispatch primitive: handing a worker its
/// entire chunk at once lets it run the indices through shared
/// per-chunk state (a reusable solver workspace, sub-batched SIMD
/// lanes) instead of paying per-index setup. Because the partition
/// depends only on `(n, threads)` and results are concatenated in chunk
/// order, output placement is identical to [`try_par_map_range`] — what
/// `f` computes per index is the caller's determinism obligation.
///
/// # Panics
///
/// Panics if a chunk's returned vector does not have exactly one
/// element per index of its range.
///
/// # Errors
///
/// The error of the earliest (lowest-range) failed chunk.
pub fn try_par_chunk_map<U, F, E>(n: usize, threads: usize, f: F) -> Result<Vec<U>, E>
where
    U: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<Vec<U>, E> + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let traced = mpvar_trace::enabled();
    let map_span = mpvar_trace::span!(names::SPAN_EXEC_PAR_MAP, n = n, threads = threads);
    if n == 0 {
        return Ok(Vec::new());
    }
    if threads <= 1 {
        let out = f(0..n)?;
        assert_eq!(out.len(), n, "chunk map must return one result per index");
        return Ok(out);
    }

    type ChunkOutcome<U, E> = (Result<Vec<U>, E>, u64);

    let ranges = chunk_ranges(n, threads);
    let parent = map_span.id();
    let results: Vec<ChunkOutcome<U, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(c, range)| {
                let range = range.clone();
                let f = &f;
                scope.spawn(move || {
                    let _chunk_span = if traced {
                        SpanGuard::enter_with_parent(
                            parent,
                            names::SPAN_EXEC_CHUNK,
                            vec![
                                ("chunk", c.into()),
                                ("start", range.start.into()),
                                ("len", range.len().into()),
                            ],
                        )
                    } else {
                        SpanGuard::disabled()
                    };
                    let started = traced.then(std::time::Instant::now);
                    let len = range.len();
                    let result = f(range);
                    if let Ok(buf) = &result {
                        assert_eq!(buf.len(), len, "chunk map must return one result per index");
                    }
                    let dur_ns = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (result, dur_ns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mpvar-exec worker panicked"))
            .collect()
    });

    if traced {
        mpvar_trace::counter_add(names::EXEC_CHUNKS, results.len() as u64);
        let slowest = results.iter().map(|(_, d)| *d).max().unwrap_or(0) as f64;
        let mean =
            results.iter().map(|(_, d)| *d).sum::<u64>() as f64 / results.len().max(1) as f64;
        if mean > 0.0 {
            mpvar_trace::gauge_set(names::EXEC_IMBALANCE, slowest / mean);
        }
    }

    // Chunks are in index order, so the first failed chunk is the
    // earliest failure.
    let mut out = Vec::with_capacity(n);
    for (result, _) in results {
        out.extend(result?);
    }
    Ok(out)
}

/// How a [`dispatch_rounds`] loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundsOutcome {
    /// The caller stopped the loop (size callback returned 0, or the
    /// consumer broke) — convergence, or enough accepted samples.
    Converged,
    /// `limit` indices were consumed before the caller stopped.
    Exhausted,
}

/// Drives a *round-based* parallel loop over a global index domain:
/// repeatedly asks the caller how many more indices to run, dispatches
/// that round through [`try_par_chunk_map`], and feeds the outcomes back
/// to the caller **in global index order**.
///
/// This is the shared dispatch engine for the Monte-Carlo farm and the
/// adaptive importance-sampling yield controller. Each iteration:
///
/// 1. `round_size(state, round, consumed)` decides the next round's
///    size from accumulated state (a fixed-deficit wave, a geometric
///    convergence schedule, …). Returning 0 ends the loop as
///    [`RoundsOutcome::Converged`]. The driver clamps the size to the
///    remaining budget; once `limit` indices have been consumed the
///    loop ends as [`RoundsOutcome::Exhausted`].
/// 2. The round `[consumed, consumed + size)` runs on `threads` workers;
///    `eval_chunk` receives contiguous sub-ranges in **global** index
///    coordinates (so index `k` can key RNG substream `k`).
/// 3. `consume(state, outcome)` folds each outcome sequentially in
///    index order; breaking ends the loop as `Converged`.
///
/// Because round boundaries depend only on what `round_size` computes
/// from the folded state — never on scheduling — and outcomes are folded
/// in index order, a pure `eval_chunk` makes the final state
/// bit-identical for any thread count.
///
/// A `span_name` span wraps each round with `round`/`start`/`len`
/// fields (e.g. `mc_wave`, `yield_round`).
///
/// # Errors
///
/// The error of the earliest failed chunk of the failing round.
pub fn dispatch_rounds<St, U, E, S, F, C>(
    state: &mut St,
    span_name: &'static str,
    limit: usize,
    threads: usize,
    mut round_size: S,
    eval_chunk: F,
    mut consume: C,
) -> Result<RoundsOutcome, E>
where
    U: Send,
    E: Send,
    S: FnMut(&mut St, usize, usize) -> usize,
    F: Fn(Range<usize>) -> Result<Vec<U>, E> + Sync,
    C: FnMut(&mut St, U) -> std::ops::ControlFlow<()>,
{
    let mut consumed = 0usize;
    let mut round = 0usize;
    loop {
        let want = round_size(state, round, consumed);
        if want == 0 {
            return Ok(RoundsOutcome::Converged);
        }
        if consumed >= limit {
            return Ok(RoundsOutcome::Exhausted);
        }
        let size = want.min(limit - consumed);
        let _round_span =
            mpvar_trace::span!(span_name, round = round, start = consumed, len = size);
        let base = consumed;
        let outcomes =
            try_par_chunk_map(size, threads, |r| eval_chunk(base + r.start..base + r.end))?;
        consumed += size;
        round += 1;
        for outcome in outcomes {
            if consume(state, outcome).is_break() {
                return Ok(RoundsOutcome::Converged);
            }
        }
    }
}

/// Parallel argmax over `items` by a partial score: returns the index
/// of the highest score among items where `score` returns `Some`, with
/// ties broken toward the *lowest index* (exactly what a sequential
/// scan keeping the first strict maximum would select).
///
/// Returns `None` when no item scores.
pub fn par_argmax_by<T, K, F>(items: &[T], threads: usize, score: F) -> Option<usize>
where
    T: Sync,
    K: PartialOrd + Send,
    F: Fn(usize, &T) -> Option<K> + Sync,
{
    let scores = par_map_indexed(items, threads, |i, item| score(i, item));
    let mut best: Option<(usize, K)> = None;
    for (i, s) in scores.into_iter().enumerate() {
        if let Some(s) = s {
            let better = match &best {
                Some((_, b)) => s > *b,
                None => true,
            };
            if better {
                best = Some((i, s));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(n, chunks);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, n, "covers 0..{n} with {chunks} chunks");
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn chunk_ranges_balanced() {
        let ranges = chunk_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn par_map_matches_sequential_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 17] {
            let got = par_map_indexed(&items, threads, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_range_passes_indices() {
        let got = try_par_map_range(100, 4, |i| Ok::<usize, ()>(i * 2)).unwrap();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn lowest_index_error_wins() {
        // Items 13 and 77 fail; index 13 must be reported on every
        // thread count.
        for threads in [1, 2, 4, 8] {
            let err = try_par_map_range(100, threads, |i| {
                if i == 13 || i == 77 {
                    Err(i)
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, 13, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_map_matches_per_index_map_any_thread_count() {
        let expect: Vec<usize> = (0..103).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            let got = try_par_chunk_map(103, threads, |r| {
                Ok::<_, ()>(r.map(|i| i * 3 + 1).collect())
            })
            .unwrap();
            assert_eq!(got, expect, "threads = {threads}");
        }
        assert_eq!(
            try_par_chunk_map::<u8, _, ()>(0, 4, |_| unreachable!()).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn chunk_map_earliest_chunk_error_wins() {
        for threads in [1, 2, 4] {
            let err = try_par_chunk_map::<usize, _, usize>(100, threads, |r| {
                if r.contains(&10) {
                    Err(10)
                } else if r.contains(&90) {
                    Err(90)
                } else {
                    Ok(r.collect())
                }
            })
            .unwrap_err();
            assert_eq!(err, 10, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "one result per index")]
    fn chunk_map_rejects_short_chunks() {
        let _ = try_par_chunk_map::<usize, _, ()>(10, 1, |_| Ok(vec![1]));
    }

    #[test]
    fn dispatch_rounds_state_identical_across_thread_counts() {
        // Accumulate squares until the sum crosses a threshold; the
        // folded state and outcome must not depend on the thread count.
        let run = |threads: usize| {
            let mut sums: Vec<u64> = Vec::new();
            let outcome = dispatch_rounds(
                &mut sums,
                "test_round",
                10_000,
                threads,
                |sums, _round, _consumed| if sums.len() >= 500 { 0 } else { 64 },
                |r| Ok::<_, ()>(r.map(|i| (i * i) as u64).collect()),
                |sums, v| {
                    sums.push(v);
                    std::ops::ControlFlow::Continue(())
                },
            )
            .unwrap();
            (outcome, sums)
        };
        let (outcome1, state1) = run(1);
        assert_eq!(outcome1, RoundsOutcome::Converged);
        assert_eq!(state1.len(), 512); // 8 rounds of 64
        assert_eq!(state1[5], 25);
        for threads in [2, 4, 8] {
            assert_eq!(
                run(threads),
                (outcome1, state1.clone()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn dispatch_rounds_consumer_break_and_exhaustion() {
        // Break mid-round at exactly 10 accepted outcomes.
        let mut seen = 0usize;
        let outcome = dispatch_rounds(
            &mut seen,
            "test_round",
            1_000,
            2,
            |_, _, _| 32,
            |r| Ok::<_, ()>(r.collect()),
            |seen, _| {
                *seen += 1;
                if *seen == 10 {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert_eq!(outcome, RoundsOutcome::Converged);
        assert_eq!(seen, 10);

        // Never-converging size callback exhausts the limit exactly.
        let mut total = 0usize;
        let outcome = dispatch_rounds(
            &mut total,
            "test_round",
            100,
            3,
            |_, _, _| 64,
            |r| Ok::<_, ()>(r.collect()),
            |total, _| {
                *total += 1;
                std::ops::ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert_eq!(outcome, RoundsOutcome::Exhausted);
        assert_eq!(total, 100, "rounds clamp to the remaining budget");
    }

    #[test]
    fn dispatch_rounds_propagates_chunk_errors() {
        let mut state = ();
        let err = dispatch_rounds(
            &mut state,
            "test_round",
            100,
            2,
            |_, _, _| 50,
            |r| {
                if r.contains(&60) {
                    Err("round 2 failed")
                } else {
                    Ok(r.collect::<Vec<_>>())
                }
            },
            |_, _: usize| std::ops::ControlFlow::Continue(()),
        )
        .unwrap_err();
        assert_eq!(err, "round 2 failed");
    }

    #[test]
    fn argmax_lowest_index_tie_break() {
        // Three global maxima at indices 2, 5, 9: index 2 must win.
        let items = [1.0, 3.0, 7.0, 2.0, 0.5, 7.0, 6.0, 1.0, 3.0, 7.0];
        for threads in [1, 2, 4, 8] {
            let best = par_argmax_by(&items, threads, |_, &x| Some(x));
            assert_eq!(best, Some(2), "threads = {threads}");
        }
    }

    #[test]
    fn argmax_skips_unscored_items() {
        let items = [5.0, f64::NAN, 2.0, 9.0];
        let best = par_argmax_by(&items, 2, |_, &x| if x.is_nan() { None } else { Some(x) });
        assert_eq!(best, Some(3));
        let none = par_argmax_by(&items, 2, |_, _| Option::<f64>::None);
        assert_eq!(none, None);
    }

    #[test]
    fn exec_config_knobs() {
        assert_eq!(ExecConfig::SERIAL.effective_threads(), 1);
        assert_eq!(ExecConfig::with_threads(0).effective_threads(), 1);
        assert_eq!(ExecConfig::with_threads(6).effective_threads(), 6);
        assert!(ExecConfig::default().effective_threads() >= 1);
    }

    #[test]
    fn split_never_oversubscribes() {
        for total in [1usize, 2, 4, 8, 16] {
            let cfg = ExecConfig::with_threads(total);
            for cells in [1usize, 2, 3, 5, 100] {
                let (outer, inner) = cfg.split(cells);
                assert!(outer >= 1 && inner.effective_threads() >= 1);
                assert!(outer * inner.effective_threads() <= total);
                assert!(outer <= cells.max(1));
            }
        }
    }

    #[test]
    fn empty_domain() {
        let got: Vec<u32> = par_map_indexed::<u32, u32, _>(&[], 4, |_, &x| x);
        assert!(got.is_empty());
        assert_eq!(
            try_par_map_range::<u32, _, ()>(0, 8, |_| unreachable!()).unwrap(),
            Vec::<u32>::new()
        );
    }
}
