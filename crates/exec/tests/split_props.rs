//! Property-based tests of the thread-budget arithmetic: however the
//! outer/inner split is requested, the product never exceeds the
//! budget and no dimension ever collapses to zero.

use proptest::prelude::*;

use mpvar_exec::{chunk_ranges, ExecConfig};

proptest! {
    /// `split` hands out at least one thread per dimension and never
    /// oversubscribes: `outer * inner <= effective_threads()`.
    #[test]
    fn split_respects_the_budget(threads in 1usize..64, cells in 0usize..200) {
        let cfg = ExecConfig::with_threads(threads);
        let total = cfg.effective_threads();
        let (outer, inner_cfg) = cfg.split(cells);
        let inner = inner_cfg.effective_threads();
        prop_assert!(outer >= 1);
        prop_assert!(inner >= 1);
        prop_assert!(
            outer * inner <= total,
            "split({cells}) on {total} threads gave {outer} x {inner}"
        );
        // The outer loop never gets more workers than it has cells
        // (except the degenerate zero-cell case, which still gets 1).
        prop_assert!(outer <= cells.max(1));
    }

    /// Saturating cases: more cells than threads pin the inner config
    /// to serial; a single cell hands the whole budget inward.
    #[test]
    fn split_saturation(threads in 1usize..64, extra in 0usize..100) {
        let cfg = ExecConfig::with_threads(threads);
        let (outer, inner) = cfg.split(threads + extra);
        prop_assert_eq!(outer, threads);
        prop_assert_eq!(inner.effective_threads(), 1);

        let (outer1, inner1) = cfg.split(1);
        prop_assert_eq!(outer1, 1);
        prop_assert_eq!(inner1.effective_threads(), threads);
    }

    /// The serial config splits to exactly (1, serial) for any cell
    /// count — the sequential code path is preserved verbatim.
    #[test]
    fn serial_split_stays_serial(cells in 0usize..200) {
        let (outer, inner) = ExecConfig::SERIAL.split(cells);
        prop_assert_eq!(outer, 1);
        prop_assert_eq!(inner.effective_threads(), 1);
    }

    /// Zero-thread requests clamp to one rather than underflowing.
    #[test]
    fn zero_threads_clamps(cells in 0usize..50) {
        let cfg = ExecConfig::with_threads(0);
        prop_assert_eq!(cfg.effective_threads(), 1);
        let (outer, inner) = cfg.split(cells);
        prop_assert_eq!(outer * inner.effective_threads(), 1);
    }

    /// `chunk_ranges` partitions `0..n` exactly: contiguous, disjoint,
    /// near-equal sizes, and never more than `chunks` pieces.
    #[test]
    fn chunk_ranges_partition_exactly(n in 0usize..500, chunks in 0usize..40) {
        let ranges = chunk_ranges(n, chunks);
        prop_assert!(ranges.len() <= chunks.max(1));
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor, "ranges not contiguous");
            prop_assert!(r.end > r.start, "empty range handed out");
            covered += r.end - r.start;
            cursor = r.end;
        }
        prop_assert_eq!(covered, n);
        if let (Some(min), Some(max)) = (
            ranges.iter().map(|r| r.end - r.start).min(),
            ranges.iter().map(|r| r.end - r.start).max(),
        ) {
            prop_assert!(max - min <= 1, "chunk sizes differ by more than 1");
        }
    }
}
