//! Per-unit-length capacitance models.
//!
//! A wire in a dense unidirectional stack sees four capacitance
//! components, each with a compact, monotone, documented model:
//!
//! * **ground plate** — parallel-plate to the planes below and above:
//!   `eps * w * (1/h_below + 1/h_above)`;
//! * **ground fringe** — edge fields to the planes, shielded by the
//!   neighbour: per side `eps * K_GF * s / (s + t_eff)` — it vanishes as
//!   the neighbour closes in and saturates at `K_GF * eps` per side when
//!   isolated;
//! * **coupling plate** — sidewall-to-sidewall: `eps * t_eff / s`;
//! * **coupling fringe** — `eps * K_CF * (1 - s / (s + h_avg))`,
//!   saturating for small gaps instead of diverging.
//!
//! All four are monotone in the gap `s` in the physically expected
//! direction, which the property tests assert. The two dimensionless
//! constants below were calibrated once against the regime of the
//! paper's Table I (LE3 worst-case ΔC_bl of several tens of percent with
//! a coupling-dominated total).

use mpvar_tech::MetalSpec;

use crate::error::ExtractError;

/// Ground-fringe coefficient (per side, per unit `eps`).
pub const K_GROUND_FRINGE: f64 = 1.0;

/// Coupling-fringe coefficient (per side, per unit `eps`).
pub const K_COUPLING_FRINGE: f64 = 1.2;

/// Gap used to model an absent neighbour (effectively isolated), nm.
pub const OPEN_GAP_NM: f64 = 1e9;

fn check_positive(name: &'static str, v: f64) -> Result<f64, ExtractError> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(ExtractError::InvalidGeometry {
            name,
            value: v,
            constraint: "must be finite and strictly positive",
        })
    }
}

/// Capacitance components of one wire, per unit length (F/m) and rolled
/// up per piece.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitanceBreakdown {
    /// Ground plate + fringe, F/m.
    pub ground_f_per_m: f64,
    /// Coupling to the lower neighbour, F/m.
    pub couple_below_f_per_m: f64,
    /// Coupling to the upper neighbour, F/m.
    pub couple_above_f_per_m: f64,
}

impl CapacitanceBreakdown {
    /// Total per-unit-length capacitance, F/m.
    pub fn total_f_per_m(&self) -> f64 {
        self.ground_f_per_m + self.couple_below_f_per_m + self.couple_above_f_per_m
    }

    /// Fraction of the total that is lateral coupling.
    pub fn coupling_fraction(&self) -> f64 {
        (self.couple_below_f_per_m + self.couple_above_f_per_m) / self.total_f_per_m()
    }
}

/// Coupling capacitance per unit length (F/m) across a gap of `gap_nm`
/// on layer `spec`.
///
/// # Errors
///
/// [`ExtractError::InvalidGeometry`] for a non-positive gap.
///
/// # Example
///
/// ```
/// use mpvar_extract::coupling_cap_f_per_m;
/// use mpvar_tech::preset::n10;
///
/// let tech = n10();
/// let m1 = tech.metal(1).expect("n10 has metal1");
/// let tight = coupling_cap_f_per_m(m1, 12.0)?;
/// let loose = coupling_cap_f_per_m(m1, 23.0)?;
/// assert!(tight > loose); // smaller gap, more coupling
/// # Ok::<(), mpvar_extract::ExtractError>(())
/// ```
pub fn coupling_cap_f_per_m(spec: &MetalSpec, gap_nm: f64) -> Result<f64, ExtractError> {
    let s = check_positive("gap_nm", gap_nm)?;
    let eps = spec.dielectric().permittivity_f_per_m();
    let t = spec.effective_thickness_nm();
    let h_avg = 0.5 * (spec.dielectric_below_nm() + spec.dielectric_above_nm());
    let plate = eps * t / s;
    let fringe = eps * K_COUPLING_FRINGE * (1.0 - s / (s + h_avg));
    Ok(plate + fringe)
}

/// Ground capacitance (plate + shielded fringe) per unit length (F/m)
/// for a wire of printed width `width_nm` with side gaps `gap_below_nm`
/// and `gap_above_nm` (pass [`OPEN_GAP_NM`] for an absent neighbour).
///
/// # Errors
///
/// [`ExtractError::InvalidGeometry`] for non-positive width or gaps.
pub fn ground_cap_f_per_m(
    spec: &MetalSpec,
    width_nm: f64,
    gap_below_nm: f64,
    gap_above_nm: f64,
) -> Result<f64, ExtractError> {
    let w = check_positive("width_nm", width_nm)?;
    let s_lo = check_positive("gap_below_nm", gap_below_nm)?;
    let s_hi = check_positive("gap_above_nm", gap_above_nm)?;
    let eps = spec.dielectric().permittivity_f_per_m();
    let t = spec.effective_thickness_nm();
    let plate = eps * w * (1.0 / spec.dielectric_below_nm() + 1.0 / spec.dielectric_above_nm());
    let fringe = eps * K_GROUND_FRINGE * (s_lo / (s_lo + t) + s_hi / (s_hi + t));
    Ok(plate + fringe)
}

/// Full breakdown for a wire with the given width and side gaps.
///
/// # Errors
///
/// Same as the component functions.
pub fn capacitance_breakdown(
    spec: &MetalSpec,
    width_nm: f64,
    gap_below_nm: Option<f64>,
    gap_above_nm: Option<f64>,
) -> Result<CapacitanceBreakdown, ExtractError> {
    let s_lo = gap_below_nm.unwrap_or(OPEN_GAP_NM);
    let s_hi = gap_above_nm.unwrap_or(OPEN_GAP_NM);
    let ground_f_per_m = ground_cap_f_per_m(spec, width_nm, s_lo, s_hi)?;
    let couple_below_f_per_m = match gap_below_nm {
        Some(s) => coupling_cap_f_per_m(spec, s)?,
        None => 0.0,
    };
    let couple_above_f_per_m = match gap_above_nm {
        Some(s) => coupling_cap_f_per_m(spec, s)?,
        None => 0.0,
    };
    Ok(CapacitanceBreakdown {
        ground_f_per_m,
        couple_below_f_per_m,
        couple_above_f_per_m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn m1() -> MetalSpec {
        n10().metal(1).unwrap().clone()
    }

    #[test]
    fn coupling_monotone_decreasing_in_gap() {
        let spec = m1();
        let mut last = f64::INFINITY;
        for s in [5.0, 10.0, 15.0, 23.0, 40.0, 100.0] {
            let c = coupling_cap_f_per_m(&spec, s).unwrap();
            assert!(c < last, "coupling must fall with gap");
            last = c;
        }
    }

    #[test]
    fn coupling_vanishes_for_open_gap() {
        let spec = m1();
        let c = coupling_cap_f_per_m(&spec, OPEN_GAP_NM).unwrap();
        assert!(c < 1e-15, "c = {c}");
    }

    #[test]
    fn ground_plate_scales_with_width() {
        let spec = m1();
        let c26 = ground_cap_f_per_m(&spec, 26.0, 23.0, 23.0).unwrap();
        let c52 = ground_cap_f_per_m(&spec, 52.0, 23.0, 23.0).unwrap();
        assert!(c52 > c26);
        assert!(c52 < 2.0 * c26, "fringe does not scale with width");
    }

    #[test]
    fn ground_fringe_shielded_by_close_neighbours() {
        let spec = m1();
        let shielded = ground_cap_f_per_m(&spec, 26.0, 5.0, 5.0).unwrap();
        let open = ground_cap_f_per_m(&spec, 26.0, OPEN_GAP_NM, OPEN_GAP_NM).unwrap();
        assert!(shielded < open);
    }

    #[test]
    fn n10_total_capacitance_magnitude() {
        // Dense-stack N10 metal1 runs at roughly 150-250 aF/um total.
        let spec = m1();
        let b = capacitance_breakdown(&spec, 26.0, Some(23.0), Some(23.0)).unwrap();
        let af_per_um = b.total_f_per_m() * 1e18 * 1e-6;
        assert!(af_per_um > 120.0 && af_per_um < 280.0, "{af_per_um} aF/um");
    }

    #[test]
    fn coupling_dominates_at_min_pitch() {
        let spec = m1();
        let b = capacitance_breakdown(&spec, 26.0, Some(23.0), Some(23.0)).unwrap();
        let f = b.coupling_fraction();
        assert!(f > 0.5 && f < 0.9, "coupling fraction {f}");
    }

    #[test]
    fn le3_worst_case_gap_regime() {
        // Gaps squeezed 23 -> 12nm on both sides with width 29 vs 26:
        // total capacitance should rise by tens of percent (Table I's
        // LE3 worst case is +61.6% on the authors' stack).
        let spec = m1();
        let nom = capacitance_breakdown(&spec, 26.0, Some(23.0), Some(23.0)).unwrap();
        let worst = capacitance_breakdown(&spec, 29.0, Some(12.0), Some(12.0)).unwrap();
        let delta = worst.total_f_per_m() / nom.total_f_per_m() - 1.0;
        assert!(delta > 0.30 && delta < 0.90, "delta = {delta}");
    }

    #[test]
    fn sadp_worst_case_gap_regime() {
        // SADP worst case: gaps 22.5 vs 23 (self-aligned), width 32 vs 26.
        // Capacitance changes by only a few percent.
        let spec = m1();
        let nom = capacitance_breakdown(&spec, 26.0, Some(23.0), Some(23.0)).unwrap();
        let worst = capacitance_breakdown(&spec, 32.0, Some(22.5), Some(22.5)).unwrap();
        let delta = worst.total_f_per_m() / nom.total_f_per_m() - 1.0;
        assert!(delta > 0.0 && delta < 0.12, "delta = {delta}");
    }

    #[test]
    fn missing_neighbour_handled() {
        let spec = m1();
        let b = capacitance_breakdown(&spec, 26.0, None, Some(23.0)).unwrap();
        assert_eq!(b.couple_below_f_per_m, 0.0);
        assert!(b.couple_above_f_per_m > 0.0);
        assert!(b.total_f_per_m() > 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let spec = m1();
        assert!(coupling_cap_f_per_m(&spec, 0.0).is_err());
        assert!(coupling_cap_f_per_m(&spec, -3.0).is_err());
        assert!(ground_cap_f_per_m(&spec, 0.0, 23.0, 23.0).is_err());
        assert!(ground_cap_f_per_m(&spec, 26.0, f64::NAN, 23.0).is_err());
    }
}
