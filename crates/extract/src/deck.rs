//! Distributed-RC "LPE deck" emission.
//!
//! Builds the circuit the paper's tool would hand to SPICE: every signal
//! track becomes a π-segment RC ladder; supply rails (`VSS*`, `VDD*`)
//! are AC ground during a read, so coupling from a signal wire to a rail
//! folds into that wire's ground capacitance; coupling between two
//! adjacent *signal* wires becomes explicit coupling capacitors between
//! corresponding ladder taps.

use std::collections::BTreeMap;

use mpvar_litho::PerturbedStack;
use mpvar_spice::{Netlist, NodeId};
use mpvar_tech::MetalSpec;

use crate::error::ExtractError;
use crate::wire::extract_stack;

/// Configuration for deck emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcDeckSpec {
    /// π-segments per track (one per SRAM cell in the read testbench).
    pub segments: usize,
    /// Net-name prefixes treated as AC-ground rails (default:
    /// `["VSS", "VDD"]`).
    pub rail_prefixes: Vec<String>,
}

impl Default for RcDeckSpec {
    fn default() -> Self {
        Self {
            segments: 1,
            rail_prefixes: vec!["VSS".to_string(), "VDD".to_string()],
        }
    }
}

impl RcDeckSpec {
    /// `true` when `net` is a rail under this spec.
    pub fn is_rail(&self, net: &str) -> bool {
        self.rail_prefixes
            .iter()
            .any(|p| net.starts_with(p.as_str()))
    }
}

/// An emitted distributed-RC circuit with named ladder taps.
#[derive(Debug, Clone)]
pub struct RcDeck {
    netlist: Netlist,
    taps: BTreeMap<String, Vec<NodeId>>,
}

impl RcDeck {
    /// The emitted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access, for attaching devices (precharge, cells).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Consumes the deck, returning the netlist and the tap table.
    pub fn into_parts(self) -> (Netlist, BTreeMap<String, Vec<NodeId>>) {
        (self.netlist, self.taps)
    }

    /// Ladder tap `k` of `net` (0 = near end, `segments` = far end).
    pub fn tap(&self, net: &str, k: usize) -> Option<NodeId> {
        self.taps.get(net).and_then(|v| v.get(k).copied())
    }

    /// Number of taps on `net` (`segments + 1` for emitted signal nets).
    pub fn num_taps(&self, net: &str) -> usize {
        self.taps.get(net).map(Vec::len).unwrap_or(0)
    }

    /// Signal nets with ladders, in name order.
    pub fn signal_nets(&self) -> impl Iterator<Item = &str> {
        self.taps.keys().map(String::as_str)
    }
}

/// Emits the distributed-RC deck for a printed stack.
///
/// Each signal track of total resistance `R` and capacitance components
/// `(C_ground, C_couple)` becomes `segments` series resistors of
/// `R/segments` with per-tap shunt capacitors; end taps get half weight
/// (π-model). Rail-adjacent coupling is folded to ground; signal-signal
/// coupling (adjacent tracks only) becomes tap-to-tap capacitors.
///
/// # Errors
///
/// * [`ExtractError::ZeroSegments`];
/// * extraction-model geometry errors;
/// * circuit-construction errors (wrapped as [`ExtractError::Circuit`]).
///
/// # Example
///
/// ```
/// use mpvar_extract::{emit_rc_deck, RcDeckSpec};
/// use mpvar_litho::{apply_draw, Draw};
/// use mpvar_geometry::{Nm, Track, TrackStack};
/// use mpvar_tech::{preset::n10, PatterningOption};
///
/// let tech = n10();
/// let drawn = TrackStack::new(vec![
///     Track::new("VSS", Nm(0),  Nm(24), Nm(0), Nm(1300))?,
///     Track::new("BL",  Nm(48), Nm(26), Nm(0), Nm(1300))?,
///     Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1300))?,
/// ])?;
/// let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv))?;
/// let deck = emit_rc_deck(&printed, tech.metal(1).unwrap(), &RcDeckSpec {
///     segments: 4,
///     ..RcDeckSpec::default()
/// })?;
/// assert_eq!(deck.num_taps("BL"), 5);
/// assert_eq!(deck.num_taps("VSS"), 0); // rails are ground
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn emit_rc_deck(
    stack: &PerturbedStack,
    spec: &MetalSpec,
    deck_spec: &RcDeckSpec,
) -> Result<RcDeck, ExtractError> {
    if deck_spec.segments == 0 {
        return Err(ExtractError::ZeroSegments);
    }
    let parasitics = extract_stack(stack, spec)?;
    let nseg = deck_spec.segments;

    let mut netlist = Netlist::new();
    let mut taps: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();

    // Create ladders for signal tracks.
    for p in &parasitics {
        if deck_spec.is_rail(p.net()) {
            continue;
        }
        let mut nodes = Vec::with_capacity(nseg + 1);
        for k in 0..=nseg {
            nodes.push(netlist.node(&format!("{}_{k}", p.net())));
        }
        let r_seg = p.resistance_ohm() / nseg as f64;
        for k in 0..nseg {
            netlist.add_resistor(&format!("R_{}_{k}", p.net()), nodes[k], nodes[k + 1], r_seg)?;
        }
        taps.insert(p.net().to_string(), nodes);
    }

    // Shunt and coupling capacitors.
    for (i, p) in parasitics.iter().enumerate() {
        if deck_spec.is_rail(p.net()) {
            continue;
        }
        let nodes = &taps[p.net()];

        // Ground share: plate+fringe plus rail-adjacent coupling.
        let mut c_ground = p.c_ground_f();
        let below_is_signal = i > 0 && !deck_spec.is_rail(stack.track(i - 1).net());
        let above_is_signal = i + 1 < stack.len() && !deck_spec.is_rail(stack.track(i + 1).net());
        if !below_is_signal {
            c_ground += p.c_couple_below_f();
        }
        if !above_is_signal {
            c_ground += p.c_couple_above_f();
        }

        add_distributed_caps(
            &mut netlist,
            &format!("Cg_{}", p.net()),
            nodes,
            None,
            c_ground,
        )?;

        // Signal-signal coupling: emit once, from the lower track.
        if above_is_signal {
            let upper = stack.track(i + 1).net().to_string();
            let upper_nodes = taps[&upper].clone();
            add_distributed_caps(
                &mut netlist,
                &format!("Cc_{}_{upper}", p.net()),
                nodes,
                Some(&upper_nodes),
                p.c_couple_above_f(),
            )?;
        }
    }

    Ok(RcDeck { netlist, taps })
}

/// Distributes `c_total` across the taps with π-model end weights. With
/// `other` given, capacitors go tap-to-tap; otherwise tap-to-ground.
fn add_distributed_caps(
    netlist: &mut Netlist,
    prefix: &str,
    nodes: &[NodeId],
    other: Option<&[NodeId]>,
    c_total: f64,
) -> Result<(), ExtractError> {
    if c_total <= 0.0 {
        return Ok(());
    }
    let nseg = nodes.len() - 1;
    // π-weights: end taps get half a segment's share.
    let c_seg = c_total / nseg as f64;
    for (k, &node) in nodes.iter().enumerate() {
        let weight = if k == 0 || k == nseg { 0.5 } else { 1.0 };
        let c = c_seg * weight;
        let target = match other {
            Some(o) => o[k],
            None => Netlist::GROUND,
        };
        netlist.add_capacitor(&format!("{prefix}_{k}"), node, target, c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_geometry::{Nm, Track, TrackStack};
    use mpvar_litho::{apply_draw, Draw};
    use mpvar_spice::{Element, Transient};
    use mpvar_tech::preset::n10;
    use mpvar_tech::PatterningOption;

    fn printed_stack() -> PerturbedStack {
        let drawn = TrackStack::new(vec![
            Track::new("VSS", Nm(0), Nm(24), Nm(0), Nm(1300)).unwrap(),
            Track::new("BL", Nm(48), Nm(26), Nm(0), Nm(1300)).unwrap(),
            Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1300)).unwrap(),
            Track::new("BLB", Nm(144), Nm(26), Nm(0), Nm(1300)).unwrap(),
            Track::new("VSS2", Nm(192), Nm(24), Nm(0), Nm(1300)).unwrap(),
        ])
        .unwrap();
        apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap()
    }

    fn spec() -> MetalSpec {
        n10().metal(1).unwrap().clone()
    }

    #[test]
    fn ladder_structure() {
        let deck = emit_rc_deck(
            &printed_stack(),
            &spec(),
            &RcDeckSpec {
                segments: 8,
                ..RcDeckSpec::default()
            },
        )
        .unwrap();
        assert_eq!(deck.num_taps("BL"), 9);
        assert_eq!(deck.num_taps("BLB"), 9);
        assert_eq!(deck.num_taps("VSS"), 0);
        assert!(deck.tap("BL", 0).is_some());
        assert!(deck.tap("BL", 9).is_none());
        let nets: Vec<&str> = deck.signal_nets().collect();
        assert_eq!(nets, vec!["BL", "BLB"]);
    }

    #[test]
    fn total_resistance_preserved() {
        let stack = printed_stack();
        let s = spec();
        let parasitics = extract_stack(&stack, &s).unwrap();
        let bl = parasitics.iter().find(|p| p.net() == "BL").unwrap();
        let deck = emit_rc_deck(
            &stack,
            &s,
            &RcDeckSpec {
                segments: 10,
                ..RcDeckSpec::default()
            },
        )
        .unwrap();
        let total_r: f64 = deck
            .netlist()
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::Resistor { name, ohms, .. } if name.starts_with("R_BL_") => Some(*ohms),
                _ => None,
            })
            .sum();
        assert!((total_r - bl.resistance_ohm()).abs() / bl.resistance_ohm() < 1e-12);
    }

    #[test]
    fn total_capacitance_preserved() {
        let stack = printed_stack();
        let s = spec();
        let parasitics = extract_stack(&stack, &s).unwrap();
        let bl = parasitics.iter().find(|p| p.net() == "BL").unwrap();
        let deck = emit_rc_deck(
            &stack,
            &s,
            &RcDeckSpec {
                segments: 6,
                ..RcDeckSpec::default()
            },
        )
        .unwrap();
        // BL neighbours are both rails: all of C_bl is to ground.
        let total_c: f64 = deck
            .netlist()
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::Capacitor { name, farads, .. } if name.starts_with("Cg_BL_") => {
                    Some(*farads)
                }
                _ => None,
            })
            .sum();
        assert!(
            (total_c - bl.c_total_f()).abs() / bl.c_total_f() < 1e-12,
            "{total_c} vs {}",
            bl.c_total_f()
        );
    }

    #[test]
    fn signal_signal_coupling_emitted_between_adjacent_signals() {
        // A stack where BL and BLB are adjacent (no rail between).
        let drawn = TrackStack::new(vec![
            Track::new("BL", Nm(0), Nm(26), Nm(0), Nm(1300)).unwrap(),
            Track::new("BLB", Nm(48), Nm(26), Nm(0), Nm(1300)).unwrap(),
        ])
        .unwrap();
        let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap();
        let deck = emit_rc_deck(
            &printed,
            &spec(),
            &RcDeckSpec {
                segments: 3,
                ..RcDeckSpec::default()
            },
        )
        .unwrap();
        let coupling_caps = deck
            .netlist()
            .elements()
            .iter()
            .filter(|e| e.name().starts_with("Cc_BL_BLB"))
            .count();
        assert_eq!(coupling_caps, 4); // one per tap
    }

    #[test]
    fn deck_simulates_as_rc_line() {
        // Drive tap 0 of BL with a step through a source resistor and
        // check the far end settles; wave propagation sanity.
        let stack = printed_stack();
        let s = spec();
        let mut deck = emit_rc_deck(
            &stack,
            &s,
            &RcDeckSpec {
                segments: 8,
                ..RcDeckSpec::default()
            },
        )
        .unwrap();
        let near = deck.tap("BL", 0).unwrap();
        let far = deck.tap("BL", 8).unwrap();
        let vin = deck.netlist_mut().node("vin");
        deck.netlist_mut()
            .add_vsource(
                "VIN",
                vin,
                Netlist::GROUND,
                mpvar_spice::Waveform::pulse(0.0, 0.7, 0.0, 1e-12, 1e-12, 1.0, 0.0).unwrap(),
            )
            .unwrap();
        deck.netlist_mut()
            .add_resistor("RSRC", vin, near, 1e3)
            .unwrap();
        let tran = Transient::new(deck.netlist()).unwrap();
        let r = tran.run(1e-13, 2e-10).unwrap();
        let v_far = r.sample(far, 2e-10).unwrap();
        assert!(v_far > 0.65, "far end charged: {v_far}");
        // Far end lags the near end early on.
        let v_near_early = r.sample(near, 2e-13).unwrap();
        let v_far_early = r.sample(far, 2e-13).unwrap();
        assert!(v_near_early >= v_far_early);
    }

    #[test]
    fn zero_segments_rejected() {
        let r = emit_rc_deck(
            &printed_stack(),
            &spec(),
            &RcDeckSpec {
                segments: 0,
                ..RcDeckSpec::default()
            },
        );
        assert!(matches!(r, Err(ExtractError::ZeroSegments)));
    }

    #[test]
    fn custom_rail_prefixes() {
        let deck_spec = RcDeckSpec {
            segments: 2,
            rail_prefixes: vec!["BLB".into(), "VSS".into(), "VDD".into()],
        };
        let deck = emit_rc_deck(&printed_stack(), &spec(), &deck_spec).unwrap();
        // BLB is now a rail: only BL gets a ladder.
        let nets: Vec<&str> = deck.signal_nets().collect();
        assert_eq!(nets, vec!["BL"]);
    }
}
