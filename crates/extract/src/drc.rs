//! Design-rule checks (DRC-lite): minimum width and spacing.
//!
//! Two check surfaces:
//!
//! * [`check_layout`] — drawn-layout checks against the tech's per-metal
//!   minimum width and space, over a flattened cell;
//! * [`check_printed_stack`] — printed-geometry checks after a
//!   variation draw: flags gaps that fall below a process floor, the
//!   physical events the Monte-Carlo engine screens out as yield loss.

use mpvar_geometry::{Layout, Nm, Rect};
use mpvar_litho::PerturbedStack;
use mpvar_tech::{MetalSpec, TechDb};

use crate::error::ExtractError;

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct DrcViolation {
    /// Which rule fired.
    pub kind: DrcViolationKind,
    /// Metal level the rule belongs to.
    pub metal_level: u8,
    /// Human-readable location/net context.
    pub context: String,
}

/// The rule classes checked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrcViolationKind {
    /// A shape narrower than the layer minimum (nm: actual, required).
    MinWidth {
        /// Measured width, nm.
        actual_nm: f64,
        /// Required minimum, nm.
        required_nm: f64,
    },
    /// Two shapes closer than the layer minimum space (nm: actual,
    /// required).
    MinSpace {
        /// Measured spacing, nm.
        actual_nm: f64,
        /// Required minimum, nm.
        required_nm: f64,
    },
}

impl std::fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            DrcViolationKind::MinWidth {
                actual_nm,
                required_nm,
            } => write!(
                f,
                "metal{} min-width: {actual_nm:.2}nm < {required_nm:.2}nm at {}",
                self.metal_level, self.context
            ),
            DrcViolationKind::MinSpace {
                actual_nm,
                required_nm,
            } => write!(
                f,
                "metal{} min-space: {actual_nm:.2}nm < {required_nm:.2}nm at {}",
                self.metal_level, self.context
            ),
        }
    }
}

/// Checks the flattened `top` cell of `layout` against the drawn-layer
/// rules of `tech` (minimum width as the smaller bbox dimension, minimum
/// space between same-layer shapes whose projections overlap).
///
/// # Errors
///
/// [`ExtractError::Circuit`] wrapping flattening failures (unknown cell,
/// recursive hierarchy).
pub fn check_layout(
    layout: &Layout,
    top: &str,
    tech: &TechDb,
) -> Result<Vec<DrcViolation>, ExtractError> {
    let shapes = layout
        .flatten(top)
        .map_err(|e| ExtractError::Circuit(e.to_string()))?;
    let mut violations = Vec::new();

    for metal in tech.metals() {
        let level = metal.level();
        let min_w = metal.min_width();
        let min_s = metal.min_space();
        let on_layer: Vec<(&mpvar_geometry::Shape, Rect)> = shapes
            .iter()
            .filter(|s| s.layer().metal_level() == Some(level))
            .map(|s| (s, s.bbox()))
            .collect();

        // Min width: the smaller bbox dimension of each shape.
        for (s, bb) in &on_layer {
            let w = bb.width().min(bb.height());
            if w < min_w {
                violations.push(DrcViolation {
                    kind: DrcViolationKind::MinWidth {
                        actual_nm: w.to_f64(),
                        required_nm: min_w.to_f64(),
                    },
                    metal_level: level,
                    context: format!("{} {}", s.net().unwrap_or("<unlabelled>"), bb),
                });
            }
        }

        // Min space: pairwise gaps where projections overlap.
        for i in 0..on_layer.len() {
            for j in i + 1..on_layer.len() {
                let (sa, a) = &on_layer[i];
                let (sb, b) = &on_layer[j];
                if a.intersects(b) {
                    continue; // overlapping same-layer shapes merge
                }
                let gap = rect_gap(a, b);
                if let Some(gap) = gap {
                    if gap > Nm(0) && gap < min_s {
                        violations.push(DrcViolation {
                            kind: DrcViolationKind::MinSpace {
                                actual_nm: gap.to_f64(),
                                required_nm: min_s.to_f64(),
                            },
                            metal_level: level,
                            context: format!(
                                "{} vs {}",
                                sa.net().unwrap_or("<unlabelled>"),
                                sb.net().unwrap_or("<unlabelled>")
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(violations)
}

/// The edge-to-edge gap between two disjoint rectangles whose spans
/// overlap on the orthogonal axis; `None` when they are diagonal
/// neighbours (no facing edges).
fn rect_gap(a: &Rect, b: &Rect) -> Option<Nm> {
    let x_overlap = a.x0() < b.x1() && b.x0() < a.x1();
    let y_overlap = a.y0() < b.y1() && b.y0() < a.y1();
    if x_overlap && !y_overlap {
        Some(a.vertical_gap(b))
    } else if y_overlap && !x_overlap {
        let gap = if b.x0() >= a.x1() {
            b.x0() - a.x1()
        } else {
            a.x0() - b.x1()
        };
        Some(gap)
    } else {
        None
    }
}

/// Checks a *printed* stack against a post-litho process floor:
/// `floor_fraction` of the drawn minimum space (a typical short-risk
/// screen uses 0.4–0.6). Widths are checked against the same fraction of
/// the drawn minimum width.
pub fn check_printed_stack(
    stack: &PerturbedStack,
    spec: &MetalSpec,
    floor_fraction: f64,
) -> Vec<DrcViolation> {
    let min_w = spec.min_width().to_f64() * floor_fraction;
    let min_s = spec.min_space().to_f64() * floor_fraction;
    let mut violations = Vec::new();
    for (i, t) in stack.iter().enumerate() {
        if t.width_nm() < min_w {
            violations.push(DrcViolation {
                kind: DrcViolationKind::MinWidth {
                    actual_nm: t.width_nm(),
                    required_nm: min_w,
                },
                metal_level: spec.level(),
                context: t.net().to_string(),
            });
        }
        if let Some(gap) = stack.gap_above_nm(i) {
            if gap < min_s {
                violations.push(DrcViolation {
                    kind: DrcViolationKind::MinSpace {
                        actual_nm: gap,
                        required_nm: min_s,
                    },
                    metal_level: spec.level(),
                    context: format!("{} vs {}", t.net(), stack.track(i + 1).net()),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_geometry::{Cell, Layer, Shape, Track, TrackStack};
    use mpvar_litho::{apply_draw, Draw, Le3Draw};
    use mpvar_tech::preset::n10;

    fn layout_with(shapes: Vec<Shape>) -> Layout {
        let mut cell = Cell::new("top");
        for s in shapes {
            cell.add_shape(s);
        }
        [cell].into_iter().collect()
    }

    fn m1_rect(x0: i64, y0: i64, x1: i64, y1: i64, net: &str) -> Shape {
        Shape::rect(
            Layer::metal(1),
            Rect::new(Nm(x0), Nm(y0), Nm(x1), Nm(y1)).unwrap(),
        )
        .with_net(net)
    }

    #[test]
    fn clean_layout_passes() {
        // Two 24nm-wide wires at 24nm space: exactly at rule.
        let layout = layout_with(vec![
            m1_rect(0, 0, 1000, 24, "a"),
            m1_rect(0, 48, 1000, 72, "b"),
        ]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn min_width_flagged() {
        let layout = layout_with(vec![m1_rect(0, 0, 1000, 20, "thin")]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, DrcViolationKind::MinWidth { .. }));
        assert!(v[0].to_string().contains("thin"));
    }

    #[test]
    fn min_space_flagged_vertically_and_horizontally() {
        // Vertical spacing violation.
        let layout = layout_with(vec![
            m1_rect(0, 0, 1000, 24, "a"),
            m1_rect(0, 40, 1000, 64, "b"), // 16nm gap < 24nm
        ]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0].kind,
            DrcViolationKind::MinSpace { actual_nm, .. } if (actual_nm - 16.0).abs() < 1e-9
        ));

        // Horizontal (end-to-end) spacing violation.
        let layout = layout_with(vec![
            m1_rect(0, 0, 100, 24, "a"),
            m1_rect(110, 0, 200, 24, "b"), // 10nm end gap
        ]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn diagonal_neighbours_not_flagged() {
        let layout = layout_with(vec![
            m1_rect(0, 0, 100, 24, "a"),
            m1_rect(105, 30, 200, 54, "b"), // diagonal: no facing edges
        ]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn overlapping_shapes_not_flagged_as_space() {
        let layout = layout_with(vec![
            m1_rect(0, 0, 100, 24, "a"),
            m1_rect(50, 0, 200, 24, "a"),
        ]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn other_layers_ignored() {
        let layout = layout_with(vec![Shape::rect(
            Layer::gate(),
            Rect::new(Nm(0), Nm(0), Nm(5), Nm(5)).unwrap(),
        )]);
        let v = check_layout(&layout, "top", &n10()).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn unknown_top_reported() {
        let layout = Layout::new();
        assert!(check_layout(&layout, "nope", &n10()).is_err());
    }

    fn sram_row(bl_width: i64) -> Layout {
        let m1 = Layer::metal(1);
        let mut cell = Cell::new("row");
        for (i, net) in ["VSS", "BL", "VDD", "BLB"].iter().enumerate() {
            let w = if i % 2 == 0 { 24 } else { bl_width };
            let y = 48 * i as i64;
            cell.add_shape(
                Shape::rect(
                    m1,
                    Rect::new(Nm(0), Nm(y - w / 2), Nm(1300), Nm(y - w / 2 + w)).unwrap(),
                )
                .with_net(*net),
            );
        }
        [cell].into_iter().collect()
    }

    #[test]
    fn minimum_width_sram_row_is_drc_clean() {
        let v = check_layout(&sram_row(24), "row", &n10()).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_minimum_bitline_needs_multiple_patterning() {
        // The paper's 26nm bit line at the 48nm pitch leaves only 23nm of
        // space — illegal under SINGLE-patterning same-mask rules, which
        // is precisely why the layer is multiple-patterned: adjacent
        // tracks land on different masks (LE3) or are self-aligned
        // (SADP), relaxing the same-mask space constraint.
        let v = check_layout(&sram_row(26), "row", &n10()).unwrap();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(
            |x| matches!(x.kind, DrcViolationKind::MinSpace { actual_nm, .. }
                if (actual_nm - 23.0).abs() < 1e-9)
        ));
    }

    #[test]
    fn printed_stack_floor_check() {
        let tech = n10();
        let spec = tech.metal(1).unwrap();
        let drawn = TrackStack::new(vec![
            Track::new("VSS", Nm(0), Nm(24), Nm(0), Nm(1000)).unwrap(),
            Track::new("BL", Nm(48), Nm(26), Nm(0), Nm(1000)).unwrap(),
            Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1000)).unwrap(),
        ])
        .unwrap();
        // Nominal print: clean at a 0.5 floor.
        let nominal =
            apply_draw(&drawn, &Draw::nominal(mpvar_tech::PatterningOption::Le3)).unwrap();
        assert!(check_printed_stack(&nominal, spec, 0.5).is_empty());

        // Extreme overlay squeeze: both BL gaps go to 23-3-8 = 12nm,
        // flagged at a 0.6 floor (14.4nm).
        let squeezed = apply_draw(
            &drawn,
            &Draw::Le3(Le3Draw {
                cd_nm: [3.0, 3.0, 3.0],
                overlay_nm: [8.0, 0.0, -8.0],
            }),
        )
        .unwrap();
        let v = check_printed_stack(&squeezed, spec, 0.6);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .all(|x| matches!(x.kind, DrcViolationKind::MinSpace { .. })));
    }
}
