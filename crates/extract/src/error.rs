//! Error type for the extraction crate.

use std::error::Error;
use std::fmt;

/// Errors from parasitic extraction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// A geometric input was outside the model's validity range.
    InvalidGeometry {
        /// Parameter name.
        name: &'static str,
        /// Offending value (nm unless stated otherwise).
        value: f64,
        /// Constraint description.
        constraint: &'static str,
    },
    /// A track index was out of range for the stack.
    TrackOutOfRange {
        /// Requested index.
        index: usize,
        /// Stack length.
        len: usize,
    },
    /// Deck emission was asked for zero segments.
    ZeroSegments,
    /// An underlying circuit error while emitting the deck.
    Circuit(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::InvalidGeometry {
                name,
                value,
                constraint,
            } => write!(f, "geometry `{name}` = {value} is invalid: {constraint}"),
            ExtractError::TrackOutOfRange { index, len } => {
                write!(f, "track index {index} out of range for stack of {len}")
            }
            ExtractError::ZeroSegments => {
                write!(f, "rc deck needs at least one segment per track")
            }
            ExtractError::Circuit(msg) => write!(f, "circuit construction failed: {msg}"),
        }
    }
}

impl Error for ExtractError {}

impl From<mpvar_spice::SpiceError> for ExtractError {
    fn from(e: mpvar_spice::SpiceError) -> Self {
        ExtractError::Circuit(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ExtractError::TrackOutOfRange { index: 5, len: 3 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExtractError>();
    }
}
