//! Parasitic extraction: the paper's "parameterized LPE tool".
//!
//! Maps printed wire geometry ([`PerturbedStack`](mpvar_litho::PerturbedStack))
//! plus technology data ([`MetalSpec`](mpvar_tech::MetalSpec)) to electrical
//! parasitics:
//!
//! * [`resistance`] — trapezoidal-cross-section wire resistance with
//!   width-dependent Cu resistivity (size effects);
//! * [`capacitance`] — per-unit-length ground (plate + fringe) and
//!   coupling (plate + fringe) capacitance, with neighbour shielding;
//! * [`wire`] — per-track parasitic rollup ([`WireParasitics`]) and
//!   relative-variation helpers (the `R_var`/`C_var` multipliers of the
//!   paper's eq. 4);
//! * [`deck`] — distributed-RC "LPE deck" emission: a π-segment ladder
//!   netlist per track with explicit coupling capacitors, ready for
//!   `mpvar-spice`.
//!
//! # Example
//!
//! ```
//! use mpvar_extract::prelude::*;
//! use mpvar_litho::{apply_draw, Draw};
//! use mpvar_geometry::{Nm, Track, TrackStack};
//! use mpvar_tech::preset::n10;
//!
//! let tech = n10();
//! let m1 = tech.metal(1).expect("n10 has metal1");
//! let drawn = TrackStack::new(vec![
//!     Track::new("VSS", Nm(0),  Nm(24), Nm(0), Nm(1000))?,
//!     Track::new("BL",  Nm(48), Nm(26), Nm(0), Nm(1000))?,
//!     Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1000))?,
//! ])?;
//! let printed = apply_draw(&drawn, &Draw::nominal(mpvar_tech::PatterningOption::Euv))?;
//! let bl = extract_track(&printed, 1, m1)?;
//! assert!(bl.resistance_ohm() > 0.0);
//! assert!(bl.coupling_fraction() > 0.3); // coupling dominates at min pitch
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacitance;
pub mod deck;
pub mod drc;
pub mod error;
pub mod resistance;
pub mod wire;

pub use capacitance::{coupling_cap_f_per_m, ground_cap_f_per_m, CapacitanceBreakdown};
pub use deck::{emit_rc_deck, RcDeck, RcDeckSpec};
pub use drc::{check_layout, check_printed_stack, DrcViolation, DrcViolationKind};
pub use error::ExtractError;
pub use resistance::{cross_section_area_nm2, wire_resistance_ohm};
pub use wire::{extract_stack, extract_track, RelativeVariation, WireParasitics};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::capacitance::{coupling_cap_f_per_m, ground_cap_f_per_m};
    pub use crate::deck::{emit_rc_deck, RcDeck, RcDeckSpec};
    pub use crate::error::ExtractError;
    pub use crate::resistance::wire_resistance_ohm;
    pub use crate::wire::{extract_stack, extract_track, RelativeVariation, WireParasitics};
}
