//! Wire resistance from the trapezoidal damascene cross-section.
//!
//! A damascene trench etched with sidewall taper `theta` (from vertical)
//! has a bottom width `w` and a top width `w + 2 t tan(theta)`; its
//! cross-section area is `t (w + t tan(theta))`. The paper's tech inputs
//! include "layer thickness, tapering angles, material properties, etch
//! and CMP parameters" — all of which enter here: etch bias adjusts the
//! printed width, CMP dishing reduces the effective thickness (via
//! [`MetalSpec::effective_thickness_nm`]), and the conductor's
//! width-dependent resistivity captures Cu size effects.

use mpvar_tech::MetalSpec;

use crate::error::ExtractError;

/// Trapezoidal cross-section area in nm² for a printed bottom width
/// `width_nm` on layer `spec`.
///
/// # Errors
///
/// [`ExtractError::InvalidGeometry`] when the width (after etch bias) is
/// not strictly positive.
pub fn cross_section_area_nm2(spec: &MetalSpec, width_nm: f64) -> Result<f64, ExtractError> {
    let w = width_nm + spec.etch_bias_nm();
    if !w.is_finite() || w <= 0.0 {
        return Err(ExtractError::InvalidGeometry {
            name: "width_nm",
            value: w,
            constraint: "printed width (incl. etch bias) must be positive",
        });
    }
    let t = spec.effective_thickness_nm();
    let tan_taper = spec.taper_deg().to_radians().tan();
    Ok(t * (w + t * tan_taper))
}

/// Resistance in ohms of a wire of printed width `width_nm` and length
/// `length_nm` on layer `spec`.
///
/// # Errors
///
/// [`ExtractError::InvalidGeometry`] for a non-positive width or length.
///
/// # Example
///
/// ```
/// use mpvar_extract::wire_resistance_ohm;
/// use mpvar_tech::preset::n10;
///
/// let tech = n10();
/// let m1 = tech.metal(1).expect("n10 has metal1");
/// // One 130nm-long bit-line segment: a few ohms at N10 dimensions.
/// let r = wire_resistance_ohm(m1, 26.0, 130.0)?;
/// assert!(r > 1.0 && r < 20.0, "r = {r}");
/// # Ok::<(), mpvar_extract::ExtractError>(())
/// ```
pub fn wire_resistance_ohm(
    spec: &MetalSpec,
    width_nm: f64,
    length_nm: f64,
) -> Result<f64, ExtractError> {
    if !length_nm.is_finite() || length_nm <= 0.0 {
        return Err(ExtractError::InvalidGeometry {
            name: "length_nm",
            value: length_nm,
            constraint: "must be positive",
        });
    }
    let area_nm2 = cross_section_area_nm2(spec, width_nm)?;
    // Size effects evaluated at the mean trapezoid width.
    let t = spec.effective_thickness_nm();
    let mean_width = width_nm + spec.etch_bias_nm() + t * spec.taper_deg().to_radians().tan();
    let rho = spec.conductor().resistivity_at_width(mean_width);
    // R = rho * L / A with L in m and A in m^2.
    Ok(rho * (length_nm * 1e-9) / (area_nm2 * 1e-18))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_geometry::Nm;
    use mpvar_tech::preset::n10;
    use mpvar_tech::{Conductor, Dielectric};

    fn m1() -> MetalSpec {
        n10().metal(1).unwrap().clone()
    }

    #[test]
    fn area_includes_taper() {
        let spec = m1(); // taper 4 deg, thickness 42
        let a = cross_section_area_nm2(&spec, 24.0).unwrap();
        let rect = 42.0 * 24.0;
        assert!(a > rect, "taper widens the cross-section");
        assert!(a < rect * 1.3);
    }

    #[test]
    fn zero_taper_matches_rectangle() {
        let spec = MetalSpec::builder(1)
            .pitch(Nm(48))
            .min_width(Nm(24))
            .thickness_nm(42.0)
            .taper_deg(0.0)
            .dielectric_below_nm(40.0)
            .dielectric_above_nm(40.0)
            .conductor(Conductor::new(1.9e-8, 30.0).unwrap())
            .dielectric(Dielectric::new(2.9).unwrap())
            .build()
            .unwrap();
        let a = cross_section_area_nm2(&spec, 24.0).unwrap();
        assert!((a - 42.0 * 24.0).abs() < 1e-9);
    }

    #[test]
    fn resistance_scales_with_length() {
        let spec = m1();
        let r1 = wire_resistance_ohm(&spec, 26.0, 100.0).unwrap();
        let r2 = wire_resistance_ohm(&spec, 26.0, 200.0).unwrap();
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resistance_falls_with_width_superlinearly() {
        // Wider wire: more area AND lower resistivity (size effect), so
        // R drops faster than 1/w.
        let spec = m1();
        let r24 = wire_resistance_ohm(&spec, 24.0, 1000.0).unwrap();
        let r48 = wire_resistance_ohm(&spec, 48.0, 1000.0).unwrap();
        assert!(r48 < r24 / 2.0, "r24 {r24} r48 {r48}");
    }

    #[test]
    fn cd_plus_3nm_drops_resistance_about_ten_percent() {
        // The paper's Table I reports R_bl -10.36% for CD +3sigma (+3nm).
        // Our physical model lands in the same regime (10-20% drop).
        let spec = m1();
        let r_nom = wire_resistance_ohm(&spec, 26.0, 130.0).unwrap();
        let r_wide = wire_resistance_ohm(&spec, 29.0, 130.0).unwrap();
        let delta = r_wide / r_nom - 1.0;
        assert!(delta < -0.08 && delta > -0.22, "delta = {delta}");
    }

    #[test]
    fn etch_bias_shifts_width() {
        let narrow_bias = MetalSpec::builder(1)
            .pitch(Nm(48))
            .min_width(Nm(24))
            .thickness_nm(42.0)
            .taper_deg(4.0)
            .etch_bias_nm(-2.0)
            .dielectric_below_nm(40.0)
            .dielectric_above_nm(40.0)
            .conductor(Conductor::new(1.9e-8, 30.0).unwrap())
            .dielectric(Dielectric::new(2.9).unwrap())
            .build()
            .unwrap();
        let r_biased = wire_resistance_ohm(&narrow_bias, 26.0, 130.0).unwrap();
        let r_plain = wire_resistance_ohm(&m1(), 26.0, 130.0).unwrap();
        assert!(r_biased > r_plain);
    }

    #[test]
    fn dishing_raises_resistance() {
        let dished = MetalSpec::builder(1)
            .pitch(Nm(48))
            .min_width(Nm(24))
            .thickness_nm(42.0)
            .taper_deg(4.0)
            .cmp_dishing_nm(8.0)
            .dielectric_below_nm(40.0)
            .dielectric_above_nm(40.0)
            .conductor(Conductor::new(1.9e-8, 30.0).unwrap())
            .dielectric(Dielectric::new(2.9).unwrap())
            .build()
            .unwrap();
        let r_dished = wire_resistance_ohm(&dished, 26.0, 130.0).unwrap();
        let r_plain = wire_resistance_ohm(&m1(), 26.0, 130.0).unwrap();
        assert!(r_dished > r_plain);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let spec = m1();
        assert!(wire_resistance_ohm(&spec, 0.0, 100.0).is_err());
        assert!(wire_resistance_ohm(&spec, -5.0, 100.0).is_err());
        assert!(wire_resistance_ohm(&spec, 26.0, 0.0).is_err());
        assert!(wire_resistance_ohm(&spec, f64::NAN, 100.0).is_err());
        assert!(cross_section_area_nm2(&spec, f64::INFINITY).is_err());
    }

    #[test]
    fn n10_bitline_per_cell_magnitude() {
        // Sanity: a 130nm cell-pitch bit-line segment should be a few
        // ohms — the regime where n*R_bl stays below the FET resistance
        // for all array sizes in the paper's Fig. 4.
        let r = wire_resistance_ohm(&m1(), 26.0, 130.0).unwrap();
        assert!(r > 2.0 && r < 12.0, "r = {r}");
    }
}
