//! Per-track parasitic rollup and relative-variation helpers.

use mpvar_litho::PerturbedStack;
use mpvar_tech::MetalSpec;

use crate::capacitance::capacitance_breakdown;
use crate::error::ExtractError;
use crate::resistance::wire_resistance_ohm;

/// Extracted parasitics of one printed track.
#[derive(Debug, Clone, PartialEq)]
pub struct WireParasitics {
    net: String,
    length_nm: f64,
    resistance_ohm: f64,
    c_ground_f: f64,
    c_couple_below_f: f64,
    c_couple_above_f: f64,
}

impl WireParasitics {
    /// Reassembles an extraction result from its stored scalar parts —
    /// the inverse of reading every accessor, used by the `mpvar-study`
    /// artifact codec to round-trip persisted results bit-exactly.
    /// Values are taken verbatim; no re-derivation or validation
    /// happens, so this must only be fed values that came from a real
    /// extraction.
    pub fn from_parts(
        net: String,
        length_nm: f64,
        resistance_ohm: f64,
        c_ground_f: f64,
        c_couple_below_f: f64,
        c_couple_above_f: f64,
    ) -> WireParasitics {
        WireParasitics {
            net,
            length_nm,
            resistance_ohm,
            c_ground_f,
            c_couple_below_f,
            c_couple_above_f,
        }
    }

    /// Net label of the extracted track.
    pub fn net(&self) -> &str {
        &self.net
    }

    /// Extracted wire length, nm.
    pub fn length_nm(&self) -> f64 {
        self.length_nm
    }

    /// End-to-end wire resistance, Ω.
    pub fn resistance_ohm(&self) -> f64 {
        self.resistance_ohm
    }

    /// Capacitance to ground (plate + fringe), F.
    pub fn c_ground_f(&self) -> f64 {
        self.c_ground_f
    }

    /// Coupling capacitance to the lower neighbour, F.
    pub fn c_couple_below_f(&self) -> f64 {
        self.c_couple_below_f
    }

    /// Coupling capacitance to the upper neighbour, F.
    pub fn c_couple_above_f(&self) -> f64 {
        self.c_couple_above_f
    }

    /// Total capacitance (ground + both couplings), F — the paper's
    /// `C_bl` when the track is a bit line (neighbouring rails are AC
    /// ground during a read).
    pub fn c_total_f(&self) -> f64 {
        self.c_ground_f + self.c_couple_below_f + self.c_couple_above_f
    }

    /// Fraction of the total capacitance that is lateral coupling.
    pub fn coupling_fraction(&self) -> f64 {
        (self.c_couple_below_f + self.c_couple_above_f) / self.c_total_f()
    }
}

/// `R_var` / `C_var` multipliers relative to a nominal extraction —
/// exactly the inputs of the paper's analytical formula (eq. 4), where
/// variation is "expressed in percentage (1 + x%)".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeVariation {
    /// Resistance multiplier (1.0 = nominal).
    pub r_var: f64,
    /// Capacitance multiplier (1.0 = nominal).
    pub c_var: f64,
}

impl RelativeVariation {
    /// Computes multipliers of `perturbed` relative to `nominal`.
    pub fn between(nominal: &WireParasitics, perturbed: &WireParasitics) -> RelativeVariation {
        RelativeVariation {
            r_var: perturbed.resistance_ohm() / nominal.resistance_ohm(),
            c_var: perturbed.c_total_f() / nominal.c_total_f(),
        }
    }

    /// Resistance change in percent (`+10.0` = 10% higher than nominal).
    pub fn r_percent(&self) -> f64 {
        (self.r_var - 1.0) * 100.0
    }

    /// Capacitance change in percent.
    pub fn c_percent(&self) -> f64 {
        (self.c_var - 1.0) * 100.0
    }
}

/// Extracts the parasitics of track `index` in a printed stack.
///
/// # Errors
///
/// [`ExtractError::TrackOutOfRange`] for a bad index, plus the
/// geometry-validity errors of the R/C models.
///
/// # Example
///
/// See the crate-level example.
pub fn extract_track(
    stack: &PerturbedStack,
    index: usize,
    spec: &MetalSpec,
) -> Result<WireParasitics, ExtractError> {
    if index >= stack.len() {
        return Err(ExtractError::TrackOutOfRange {
            index,
            len: stack.len(),
        });
    }
    let t = stack.track(index);
    let length_m_factor = t.length_nm() * 1e-9;

    let resistance_ohm = wire_resistance_ohm(spec, t.width_nm(), t.length_nm())?;
    let breakdown = capacitance_breakdown(
        spec,
        t.width_nm(),
        stack.gap_below_nm(index),
        stack.gap_above_nm(index),
    )?;

    Ok(WireParasitics {
        net: t.net().to_string(),
        length_nm: t.length_nm(),
        resistance_ohm,
        c_ground_f: breakdown.ground_f_per_m * length_m_factor,
        c_couple_below_f: breakdown.couple_below_f_per_m * length_m_factor,
        c_couple_above_f: breakdown.couple_above_f_per_m * length_m_factor,
    })
}

/// Extracts every track of the stack, in order.
///
/// # Errors
///
/// Propagates the first per-track failure.
pub fn extract_stack(
    stack: &PerturbedStack,
    spec: &MetalSpec,
) -> Result<Vec<WireParasitics>, ExtractError> {
    (0..stack.len())
        .map(|i| extract_track(stack, i, spec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_geometry::{Nm, Track, TrackStack};
    use mpvar_litho::{apply_draw, Draw, EuvDraw, Le3Draw};
    use mpvar_tech::preset::n10;
    use mpvar_tech::PatterningOption;

    fn stack_and_spec() -> (TrackStack, MetalSpec) {
        let drawn = TrackStack::new(vec![
            Track::new("VSS", Nm(0), Nm(24), Nm(0), Nm(1300)).unwrap(),
            Track::new("BL", Nm(48), Nm(26), Nm(0), Nm(1300)).unwrap(),
            Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1300)).unwrap(),
        ])
        .unwrap();
        (drawn, n10().metal(1).unwrap().clone())
    }

    fn nominal_bl() -> WireParasitics {
        let (drawn, spec) = stack_and_spec();
        let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap();
        extract_track(&printed, 1, &spec).unwrap()
    }

    #[test]
    fn nominal_extraction_magnitudes() {
        let bl = nominal_bl();
        // 1.3um of bit line: tens of ohms, a fraction of a femtofarad.
        assert!(bl.resistance_ohm() > 20.0 && bl.resistance_ohm() < 100.0);
        let c_ff = bl.c_total_f() * 1e15;
        assert!(c_ff > 0.1 && c_ff < 0.5, "c = {c_ff} fF");
        assert_eq!(bl.net(), "BL");
        assert_eq!(bl.length_nm(), 1300.0);
        assert!(bl.coupling_fraction() > 0.5);
    }

    #[test]
    fn components_sum_to_total() {
        let bl = nominal_bl();
        let sum = bl.c_ground_f() + bl.c_couple_below_f() + bl.c_couple_above_f();
        assert!((sum - bl.c_total_f()).abs() < 1e-24);
    }

    #[test]
    fn euv_cd_increase_raises_c_and_lowers_r() {
        let (drawn, spec) = stack_and_spec();
        let nominal = nominal_bl();
        let printed = apply_draw(&drawn, &Draw::Euv(EuvDraw { cd_nm: 3.0 })).unwrap();
        let wide = extract_track(&printed, 1, &spec).unwrap();
        let var = RelativeVariation::between(&nominal, &wide);
        assert!(var.c_var > 1.0, "C up: {}", var.c_var);
        assert!(var.r_var < 1.0, "R down: {}", var.r_var);
        assert!(var.c_percent() > 0.0);
        assert!(var.r_percent() < 0.0);
    }

    #[test]
    fn le3_overlay_squeeze_raises_coupling_strongly() {
        let (drawn, spec) = stack_and_spec();
        let nominal = nominal_bl();
        // VSS(A) up 8, VDD(C) down 8, everything +3nm CD: the paper's
        // worst-case style squeeze on BL (mask B).
        let draw = Draw::Le3(Le3Draw {
            cd_nm: [3.0, 3.0, 3.0],
            overlay_nm: [8.0, 0.0, -8.0],
        });
        let printed = apply_draw(&drawn, &draw).unwrap();
        let squeezed = extract_track(&printed, 1, &spec).unwrap();
        let var = RelativeVariation::between(&nominal, &squeezed);
        assert!(
            var.c_percent() > 30.0 && var.c_percent() < 90.0,
            "dC = {}%",
            var.c_percent()
        );
        assert!(var.r_percent() < -5.0, "dR = {}%", var.r_percent());
    }

    #[test]
    fn boundary_track_has_one_sided_coupling() {
        let (drawn, spec) = stack_and_spec();
        let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap();
        let vss = extract_track(&printed, 0, &spec).unwrap();
        assert_eq!(vss.c_couple_below_f(), 0.0);
        assert!(vss.c_couple_above_f() > 0.0);
    }

    #[test]
    fn extract_stack_covers_all_tracks() {
        let (drawn, spec) = stack_and_spec();
        let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap();
        let all = extract_stack(&printed, &spec).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].net(), "VSS");
        assert_eq!(all[2].net(), "VDD");
        // Adjacent coupling is symmetric: C(BL->VSS) == C(VSS->BL)
        // because both are computed from the same gap.
        assert!((all[0].c_couple_above_f() - all[1].c_couple_below_f()).abs() < 1e-24);
    }

    #[test]
    fn out_of_range_index() {
        let (drawn, spec) = stack_and_spec();
        let printed = apply_draw(&drawn, &Draw::nominal(PatterningOption::Euv)).unwrap();
        assert!(matches!(
            extract_track(&printed, 7, &spec),
            Err(ExtractError::TrackOutOfRange { .. })
        ));
    }

    #[test]
    fn relative_variation_identity() {
        let bl = nominal_bl();
        let var = RelativeVariation::between(&bl, &bl);
        assert!((var.r_var - 1.0).abs() < 1e-12);
        assert!((var.c_var - 1.0).abs() < 1e-12);
        assert!(var.r_percent().abs() < 1e-9);
    }
}
