//! Hierarchical cell / instance layout database.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::point::Point;
use crate::rect::Rect;
use crate::shape::Shape;
use crate::transform::Orientation;

/// A placed reference to another cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instance {
    cell: String,
    origin: Point,
    orientation: Orientation,
}

impl Instance {
    /// Creates an instance of `cell` at `origin` with orientation `R0`.
    pub fn new(cell: impl Into<String>, origin: Point) -> Self {
        Self {
            cell: cell.into(),
            origin,
            orientation: Orientation::R0,
        }
    }

    /// Sets the orientation (builder style).
    #[must_use]
    pub fn with_orientation(mut self, orientation: Orientation) -> Self {
        self.orientation = orientation;
        self
    }

    /// Referenced cell name.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// Placement origin.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Placement orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }
}

/// A layout cell: local shapes plus placed sub-cell instances.
///
/// # Example
///
/// ```
/// use mpvar_geometry::prelude::*;
///
/// let mut bitcell = Cell::new("bitcell");
/// bitcell.add_shape(Shape::rect(Layer::metal(1), Rect::new(Nm(0), Nm(0), Nm(120), Nm(24))?));
///
/// let mut array = Cell::new("array");
/// array.add_instance(Instance::new("bitcell", Point::new(Nm(0), Nm(0))));
/// array.add_instance(Instance::new("bitcell", Point::new(Nm(120), Nm(0))));
/// assert_eq!(array.instances().len(), 2);
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    name: String,
    shapes: Vec<Shape>,
    instances: Vec<Instance>,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            shapes: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Local shapes (not including sub-instances).
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Placed sub-cell instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Adds a shape.
    pub fn add_shape(&mut self, shape: Shape) {
        self.shapes.push(shape);
    }

    /// Adds an instance.
    pub fn add_instance(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Bounding box of local shapes only; `None` for a shapeless cell.
    pub fn local_bbox(&self) -> Option<Rect> {
        let mut it = self.shapes.iter().map(Shape::bbox);
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.union(&r)))
    }
}

/// A layout database: a set of named cells.
///
/// Cells are stored in a `BTreeMap` so iteration (and therefore netlist
/// and file output) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    cells: BTreeMap<String, Cell>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell.
    ///
    /// # Errors
    ///
    /// [`GeometryError::DuplicateCell`] if a cell with that name exists.
    pub fn add_cell(&mut self, cell: Cell) -> Result<(), GeometryError> {
        if self.cells.contains_key(cell.name()) {
            return Err(GeometryError::DuplicateCell {
                name: cell.name().to_string(),
            });
        }
        self.cells.insert(cell.name().to_string(), cell);
        Ok(())
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Mutable lookup.
    pub fn cell_mut(&mut self, name: &str) -> Option<&mut Cell> {
        self.cells.get_mut(name)
    }

    /// Iterates cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the layout holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Flattens `top` into a list of shapes in top-level coordinates.
    ///
    /// Instance transforms compose depth-first; net labels survive
    /// flattening, which is what the extractor consumes.
    ///
    /// # Errors
    ///
    /// * [`GeometryError::UnknownCell`] if `top` or any referenced cell is
    ///   missing;
    /// * [`GeometryError::RecursiveHierarchy`] if the instance graph has a
    ///   cycle.
    pub fn flatten(&self, top: &str) -> Result<Vec<Shape>, GeometryError> {
        let mut out = Vec::new();
        let mut stack = HashSet::new();
        self.flatten_into(top, Orientation::R0, Point::ORIGIN, &mut stack, &mut out)?;
        Ok(out)
    }

    fn flatten_into(
        &self,
        name: &str,
        orient: Orientation,
        offset: Point,
        stack: &mut HashSet<String>,
        out: &mut Vec<Shape>,
    ) -> Result<(), GeometryError> {
        let cell = self
            .cells
            .get(name)
            .ok_or_else(|| GeometryError::UnknownCell {
                name: name.to_string(),
            })?;
        if !stack.insert(name.to_string()) {
            return Err(GeometryError::RecursiveHierarchy {
                name: name.to_string(),
            });
        }
        for s in &cell.shapes {
            out.push(s.place(orient, offset));
        }
        for inst in &cell.instances {
            let child_orient = inst.orientation().then(orient);
            let child_offset = orient.apply(inst.origin()) + offset;
            self.flatten_into(inst.cell(), child_orient, child_offset, stack, out)?;
        }
        stack.remove(name);
        Ok(())
    }

    /// Bounding box of the flattened `top` cell.
    ///
    /// # Errors
    ///
    /// Same as [`Layout::flatten`]; additionally reports `top` as unknown
    /// when it flattens to zero shapes.
    pub fn bbox(&self, top: &str) -> Result<Rect, GeometryError> {
        let shapes = self.flatten(top)?;
        let mut it = shapes.iter().map(Shape::bbox);
        let first = it.next().ok_or_else(|| GeometryError::UnknownCell {
            name: format!("{top} (no shapes)"),
        })?;
        Ok(it.fold(first, |acc, r| acc.union(&r)))
    }
}

impl FromIterator<Cell> for Layout {
    /// Collects cells into a layout; later duplicates replace earlier
    /// cells silently (use [`Layout::add_cell`] for checked insertion).
    fn from_iter<I: IntoIterator<Item = Cell>>(iter: I) -> Self {
        let mut l = Layout::new();
        for c in iter {
            l.cells.insert(c.name().to_string(), c);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::units::Nm;

    fn rect_shape(x0: i64, y0: i64, x1: i64, y1: i64) -> Shape {
        Shape::rect(
            Layer::metal(1),
            Rect::new(Nm(x0), Nm(y0), Nm(x1), Nm(y1)).unwrap(),
        )
    }

    fn simple_layout() -> Layout {
        let mut leaf = Cell::new("leaf");
        leaf.add_shape(rect_shape(0, 0, 10, 2).with_net("BL"));
        let mut top = Cell::new("top");
        top.add_instance(Instance::new("leaf", (0, 0).into()));
        top.add_instance(Instance::new("leaf", (0, 10).into()));
        let mut l = Layout::new();
        l.add_cell(leaf).unwrap();
        l.add_cell(top).unwrap();
        l
    }

    #[test]
    fn duplicate_cells_rejected() {
        let mut l = Layout::new();
        l.add_cell(Cell::new("a")).unwrap();
        assert!(matches!(
            l.add_cell(Cell::new("a")),
            Err(GeometryError::DuplicateCell { .. })
        ));
    }

    #[test]
    fn flatten_applies_offsets() {
        let l = simple_layout();
        let shapes = l.flatten("top").unwrap();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].bbox().y0(), Nm(0));
        assert_eq!(shapes[1].bbox().y0(), Nm(10));
        assert_eq!(shapes[1].net(), Some("BL"));
    }

    #[test]
    fn flatten_nested_two_levels() {
        let mut l = simple_layout();
        let mut supertop = Cell::new("supertop");
        supertop.add_instance(Instance::new("top", (100, 0).into()));
        l.add_cell(supertop).unwrap();
        let shapes = l.flatten("supertop").unwrap();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].bbox().x0(), Nm(100));
    }

    #[test]
    fn flatten_with_orientation() {
        let mut l = Layout::new();
        let mut leaf = Cell::new("leaf");
        leaf.add_shape(rect_shape(0, 0, 10, 2));
        l.add_cell(leaf).unwrap();
        let mut top = Cell::new("top");
        top.add_instance(Instance::new("leaf", (0, 0).into()).with_orientation(Orientation::R90));
        l.add_cell(top).unwrap();
        let shapes = l.flatten("top").unwrap();
        assert_eq!(shapes[0].bbox().width(), Nm(2));
        assert_eq!(shapes[0].bbox().height(), Nm(10));
    }

    #[test]
    fn unknown_cell_errors() {
        let l = simple_layout();
        assert!(matches!(
            l.flatten("nope"),
            Err(GeometryError::UnknownCell { .. })
        ));
    }

    #[test]
    fn recursion_detected() {
        let mut l = Layout::new();
        let mut a = Cell::new("a");
        a.add_instance(Instance::new("b", (0, 0).into()));
        let mut b = Cell::new("b");
        b.add_instance(Instance::new("a", (0, 0).into()));
        l.add_cell(a).unwrap();
        l.add_cell(b).unwrap();
        assert!(matches!(
            l.flatten("a"),
            Err(GeometryError::RecursiveHierarchy { .. })
        ));
    }

    #[test]
    fn sibling_reuse_is_not_recursion() {
        // The same leaf used twice by one parent must flatten fine.
        let l = simple_layout();
        assert!(l.flatten("top").is_ok());
    }

    #[test]
    fn bbox_spans_flattened_shapes() {
        let l = simple_layout();
        let bb = l.bbox("top").unwrap();
        assert_eq!(bb.y0(), Nm(0));
        assert_eq!(bb.y1(), Nm(12));
    }

    #[test]
    fn local_bbox() {
        let mut c = Cell::new("c");
        assert!(c.local_bbox().is_none());
        c.add_shape(rect_shape(0, 0, 4, 4));
        c.add_shape(rect_shape(10, 10, 14, 14));
        assert_eq!(
            c.local_bbox().unwrap(),
            Rect::new(Nm(0), Nm(0), Nm(14), Nm(14)).unwrap()
        );
    }

    #[test]
    fn deterministic_iteration() {
        let mut l = Layout::new();
        l.add_cell(Cell::new("zeta")).unwrap();
        l.add_cell(Cell::new("alpha")).unwrap();
        let names: Vec<&str> = l.iter().map(Cell::name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
