//! Error type for the geometry crate.

use std::error::Error;
use std::fmt;

use crate::units::Nm;

/// Errors produced by geometric constructors and the layout database.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A rectangle had non-positive extent in x or y.
    DegenerateRect {
        /// Width as supplied.
        width: Nm,
        /// Height as supplied.
        height: Nm,
    },
    /// A polygon needs at least three vertices.
    TooFewVertices {
        /// Vertices supplied.
        got: usize,
    },
    /// A track was created with a non-positive width.
    NonPositiveWidth {
        /// Width as supplied.
        width: Nm,
    },
    /// A track span was empty or inverted.
    EmptySpan {
        /// Span start.
        x0: Nm,
        /// Span end.
        x1: Nm,
    },
    /// A referenced cell does not exist in the layout.
    UnknownCell {
        /// The missing cell name.
        name: String,
    },
    /// A cell with this name already exists in the layout.
    DuplicateCell {
        /// The duplicated cell name.
        name: String,
    },
    /// Instance graph contains a cycle (a cell transitively instantiates
    /// itself), so it cannot be flattened.
    RecursiveHierarchy {
        /// The cell at which the cycle was detected.
        name: String,
    },
    /// Text-GDS parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// Tracks in a stack must be sorted by centerline and non-overlapping.
    TrackOrdering {
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::DegenerateRect { width, height } => {
                write!(
                    f,
                    "rectangle must have positive extent, got {width} x {height}"
                )
            }
            GeometryError::TooFewVertices { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
            GeometryError::NonPositiveWidth { width } => {
                write!(f, "track width must be positive, got {width}")
            }
            GeometryError::EmptySpan { x0, x1 } => {
                write!(f, "track span is empty: [{x0}, {x1}]")
            }
            GeometryError::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            GeometryError::DuplicateCell { name } => write!(f, "duplicate cell `{name}`"),
            GeometryError::RecursiveHierarchy { name } => {
                write!(f, "recursive hierarchy detected at cell `{name}`")
            }
            GeometryError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GeometryError::TrackOrdering { message } => {
                write!(f, "invalid track stack: {message}")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeometryError::UnknownCell {
            name: "sram".into(),
        };
        assert!(e.to_string().contains("sram"));
        let e = GeometryError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
