//! "TGDS": a line-oriented text serialization of layouts.
//!
//! The paper's LPE tool consumes GDSII. Binary GDSII adds nothing to the
//! physics, so `mpvar` uses an equivalent text format that round-trips the
//! same information (cells, instances with orientation, shapes with layer
//! and net label):
//!
//! ```text
//! tgds 1
//! cell bitcell
//!   rect metal1 0 0 120 24 net=BL
//!   poly gate 0 0 10 0 0 10
//! endcell
//! cell top
//!   inst bitcell 0 0 R0
//! endcell
//! ```
//!
//! Coordinates are integer nanometres. `net=` is optional on shapes.

use crate::cell::{Cell, Instance, Layout};
use crate::error::GeometryError;
use crate::layer::Layer;
use crate::point::Point;
use crate::shape::{Geometry, Shape};
use crate::transform::Orientation;
use crate::units::Nm;

/// Serializes a layout to TGDS text.
///
/// Cells are emitted in name order, so output is deterministic.
///
/// # Example
///
/// ```
/// use mpvar_geometry::prelude::*;
/// use mpvar_geometry::gds;
///
/// let mut cell = Cell::new("c");
/// cell.add_shape(Shape::rect(Layer::metal(1), Rect::new(Nm(0), Nm(0), Nm(4), Nm(2))?));
/// let layout: Layout = [cell].into_iter().collect();
/// let text = gds::to_text(&layout);
/// let back = gds::from_text(&text)?;
/// assert_eq!(layout, back);
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
pub fn to_text(layout: &Layout) -> String {
    let mut out = String::from("tgds 1\n");
    for cell in layout.iter() {
        out.push_str(&format!("cell {}\n", cell.name()));
        for s in cell.shapes() {
            match s.geometry() {
                Geometry::Rect(r) => {
                    out.push_str(&format!(
                        "  rect {} {} {} {} {}",
                        s.layer(),
                        r.x0().0,
                        r.y0().0,
                        r.x1().0,
                        r.y1().0
                    ));
                }
                Geometry::Polygon(p) => {
                    out.push_str(&format!("  poly {}", s.layer()));
                    for v in p.vertices() {
                        out.push_str(&format!(" {} {}", v.x.0, v.y.0));
                    }
                }
            }
            if let Some(net) = s.net() {
                out.push_str(&format!(" net={net}"));
            }
            out.push('\n');
        }
        for i in cell.instances() {
            out.push_str(&format!(
                "  inst {} {} {} {}\n",
                i.cell(),
                i.origin().x.0,
                i.origin().y.0,
                i.orientation()
            ));
        }
        out.push_str("endcell\n");
    }
    out
}

/// Parses TGDS text into a layout.
///
/// # Errors
///
/// [`GeometryError::Parse`] with a 1-based line number for any syntax
/// problem, and the usual geometry validation errors for degenerate
/// shapes. [`GeometryError::DuplicateCell`] for repeated cell names.
pub fn from_text(text: &str) -> Result<Layout, GeometryError> {
    let mut layout = Layout::new();
    let mut current: Option<Cell> = None;

    let err = |line: usize, message: &str| GeometryError::Parse {
        line,
        message: message.to_string(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let keyword = tok.next().expect("non-empty line has a token");
        match keyword {
            "tgds" => {
                let version = tok.next().ok_or_else(|| err(lineno, "missing version"))?;
                if version != "1" {
                    return Err(err(lineno, &format!("unsupported tgds version {version}")));
                }
            }
            "cell" => {
                if current.is_some() {
                    return Err(err(lineno, "nested `cell` without `endcell`"));
                }
                let name = tok.next().ok_or_else(|| err(lineno, "missing cell name"))?;
                current = Some(Cell::new(name));
            }
            "endcell" => {
                let cell = current
                    .take()
                    .ok_or_else(|| err(lineno, "`endcell` without open cell"))?;
                layout.add_cell(cell)?;
            }
            "rect" => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`rect` outside a cell"))?;
                let layer_name = tok.next().ok_or_else(|| err(lineno, "missing layer"))?;
                let layer = Layer::parse_name(layer_name)
                    .ok_or_else(|| err(lineno, &format!("unknown layer `{layer_name}`")))?;
                let mut coords = [0i64; 4];
                for c in &mut coords {
                    let t = tok
                        .next()
                        .ok_or_else(|| err(lineno, "missing coordinate"))?;
                    *c = t
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad coordinate `{t}`")))?;
                }
                let rect = crate::rect::Rect::new(
                    Nm(coords[0]),
                    Nm(coords[1]),
                    Nm(coords[2]),
                    Nm(coords[3]),
                )?;
                let mut shape = Shape::rect(layer, rect);
                if let Some(extra) = tok.next() {
                    shape = apply_net(shape, extra, lineno)?;
                }
                cell.add_shape(shape);
            }
            "poly" => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`poly` outside a cell"))?;
                let layer_name = tok.next().ok_or_else(|| err(lineno, "missing layer"))?;
                let layer = Layer::parse_name(layer_name)
                    .ok_or_else(|| err(lineno, &format!("unknown layer `{layer_name}`")))?;
                let rest: Vec<&str> = tok.collect();
                let (coord_toks, net_tok) = match rest.last() {
                    Some(last) if last.starts_with("net=") => {
                        (&rest[..rest.len() - 1], Some(*last))
                    }
                    _ => (&rest[..], None),
                };
                if coord_toks.len() % 2 != 0 {
                    return Err(err(lineno, "odd number of polygon coordinates"));
                }
                let mut vertices = Vec::with_capacity(coord_toks.len() / 2);
                for pair in coord_toks.chunks(2) {
                    let x: i64 = pair[0]
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad coordinate `{}`", pair[0])))?;
                    let y: i64 = pair[1]
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad coordinate `{}`", pair[1])))?;
                    vertices.push(Point::new(Nm(x), Nm(y)));
                }
                let mut shape = Shape::polygon(layer, vertices)?;
                if let Some(nt) = net_tok {
                    shape = apply_net(shape, nt, lineno)?;
                }
                cell.add_shape(shape);
            }
            "inst" => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`inst` outside a cell"))?;
                let target = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing instance cell"))?;
                let x: i64 = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing x"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad x coordinate"))?;
                let y: i64 = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing y"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad y coordinate"))?;
                let orient_name = tok.next().unwrap_or("R0");
                let orientation = Orientation::parse_name(orient_name)
                    .ok_or_else(|| err(lineno, &format!("unknown orientation `{orient_name}`")))?;
                cell.add_instance(
                    Instance::new(target, Point::new(Nm(x), Nm(y))).with_orientation(orientation),
                );
            }
            other => {
                return Err(err(lineno, &format!("unknown keyword `{other}`")));
            }
        }
    }

    if current.is_some() {
        return Err(GeometryError::Parse {
            line: text.lines().count(),
            message: "unterminated cell at end of input".to_string(),
        });
    }
    Ok(layout)
}

fn apply_net(shape: Shape, token: &str, lineno: usize) -> Result<Shape, GeometryError> {
    match token.strip_prefix("net=") {
        Some(net) if !net.is_empty() => Ok(shape.with_net(net)),
        _ => Err(GeometryError::Parse {
            line: lineno,
            message: format!("expected `net=<name>`, got `{token}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn sample_layout() -> Layout {
        let mut bitcell = Cell::new("bitcell");
        bitcell.add_shape(
            Shape::rect(
                Layer::metal(1),
                Rect::new(Nm(0), Nm(0), Nm(120), Nm(24)).unwrap(),
            )
            .with_net("BL"),
        );
        bitcell.add_shape(
            Shape::polygon(
                Layer::gate(),
                vec![(0, 0).into(), (10, 0).into(), (0, 10).into()],
            )
            .unwrap(),
        );
        let mut top = Cell::new("top");
        top.add_instance(Instance::new("bitcell", (0, 0).into()));
        top.add_instance(
            Instance::new("bitcell", (0, 48).into()).with_orientation(Orientation::MX),
        );
        [bitcell, top].into_iter().collect()
    }

    #[test]
    fn roundtrip() {
        let layout = sample_layout();
        let text = to_text(&layout);
        let back = from_text(&text).unwrap();
        assert_eq!(layout, back);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "tgds 1\n# a comment\n\ncell a\n  rect metal1 0 0 2 2\nendcell\n";
        let layout = from_text(text).unwrap();
        assert_eq!(layout.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "tgds 1\ncell a\n  rect metal1 0 0 X 2\nendcell\n";
        match from_text(text) {
            Err(GeometryError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_keyword() {
        assert!(matches!(
            from_text("tgds 1\nbogus\n"),
            Err(GeometryError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_shape_outside_cell() {
        assert!(from_text("tgds 1\nrect metal1 0 0 1 1\n").is_err());
    }

    #[test]
    fn rejects_unterminated_cell() {
        assert!(from_text("tgds 1\ncell a\n").is_err());
    }

    #[test]
    fn rejects_nested_cell() {
        assert!(from_text("tgds 1\ncell a\ncell b\n").is_err());
    }

    #[test]
    fn rejects_unsupported_version() {
        assert!(from_text("tgds 99\n").is_err());
    }

    #[test]
    fn rejects_bad_net_token() {
        assert!(from_text("tgds 1\ncell a\n  rect metal1 0 0 1 1 net=\nendcell\n").is_err());
        assert!(from_text("tgds 1\ncell a\n  rect metal1 0 0 1 1 junk\nendcell\n").is_err());
    }

    #[test]
    fn instance_default_orientation() {
        let text = "tgds 1\ncell a\nendcell\ncell b\n  inst a 5 6\nendcell\n";
        let layout = from_text(text).unwrap();
        let inst = &layout.cell("b").unwrap().instances()[0];
        assert_eq!(inst.orientation(), Orientation::R0);
        assert_eq!(inst.origin(), Point::new(Nm(5), Nm(6)));
    }

    #[test]
    fn poly_with_net_label() {
        let text = "tgds 1\ncell a\n  poly metal1 0 0 4 0 0 4 net=BLB\nendcell\n";
        let layout = from_text(text).unwrap();
        assert_eq!(layout.cell("a").unwrap().shapes()[0].net(), Some("BLB"));
    }

    #[test]
    fn duplicate_cell_rejected() {
        let text = "tgds 1\ncell a\nendcell\ncell a\nendcell\n";
        assert!(matches!(
            from_text(text),
            Err(GeometryError::DuplicateCell { .. })
        ));
    }
}
