//! Process layers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of a process layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// Active/diffusion (FEOL).
    Diffusion,
    /// Gate poly or replacement-metal gate (FEOL).
    Gate,
    /// Diffusion/gate contact.
    Contact,
    /// A metal routing layer; the index is the metal level (1 = metal1).
    Metal(u8),
    /// A via layer connecting `Metal(n)` and `Metal(n + 1)`.
    Via(u8),
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Diffusion => write!(f, "diff"),
            LayerKind::Gate => write!(f, "gate"),
            LayerKind::Contact => write!(f, "cont"),
            LayerKind::Metal(n) => write!(f, "metal{n}"),
            LayerKind::Via(n) => write!(f, "via{n}"),
        }
    }
}

/// A process layer identifier.
///
/// A thin, copyable handle pairing a [`LayerKind`] with a GDS-style
/// numeric id, so layouts can be round-tripped through the text-GDS
/// format without a side table.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Layer, LayerKind};
///
/// let m1 = Layer::metal(1);
/// assert_eq!(m1.kind(), LayerKind::Metal(1));
/// assert_eq!(m1.to_string(), "metal1");
/// assert!(m1.is_metal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Layer {
    kind: LayerKind,
}

impl Layer {
    /// Creates a layer of the given kind.
    pub fn new(kind: LayerKind) -> Self {
        Self { kind }
    }

    /// Metal layer `n` (1-based).
    pub fn metal(n: u8) -> Self {
        Self::new(LayerKind::Metal(n))
    }

    /// Via layer between metal `n` and metal `n + 1`.
    pub fn via(n: u8) -> Self {
        Self::new(LayerKind::Via(n))
    }

    /// The diffusion layer.
    pub fn diffusion() -> Self {
        Self::new(LayerKind::Diffusion)
    }

    /// The gate layer.
    pub fn gate() -> Self {
        Self::new(LayerKind::Gate)
    }

    /// The contact layer.
    pub fn contact() -> Self {
        Self::new(LayerKind::Contact)
    }

    /// This layer's kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// `true` for any metal routing layer.
    pub fn is_metal(&self) -> bool {
        matches!(self.kind, LayerKind::Metal(_))
    }

    /// The metal level if this is a metal layer.
    pub fn metal_level(&self) -> Option<u8> {
        match self.kind {
            LayerKind::Metal(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric GDS-style id used by the text-GDS format.
    pub fn gds_id(&self) -> u16 {
        match self.kind {
            LayerKind::Diffusion => 1,
            LayerKind::Gate => 2,
            LayerKind::Contact => 3,
            LayerKind::Metal(n) => 10 + n as u16 * 2,
            LayerKind::Via(n) => 11 + n as u16 * 2,
        }
    }

    /// Inverse of [`Layer::gds_id`].
    pub fn from_gds_id(id: u16) -> Option<Layer> {
        match id {
            1 => Some(Layer::diffusion()),
            2 => Some(Layer::gate()),
            3 => Some(Layer::contact()),
            n if n >= 12 && n % 2 == 0 => Some(Layer::metal(((n - 10) / 2) as u8)),
            n if n >= 13 => Some(Layer::via(((n - 11) / 2) as u8)),
            _ => None,
        }
    }

    /// Parses the textual layer name used by [`fmt::Display`].
    pub fn parse_name(name: &str) -> Option<Layer> {
        match name {
            "diff" => Some(Layer::diffusion()),
            "gate" => Some(Layer::gate()),
            "cont" => Some(Layer::contact()),
            _ => {
                if let Some(n) = name.strip_prefix("metal") {
                    n.parse().ok().map(Layer::metal)
                } else if let Some(n) = name.strip_prefix("via") {
                    n.parse().ok().map(Layer::via)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kinds() {
        assert_eq!(Layer::metal(1).kind(), LayerKind::Metal(1));
        assert_eq!(Layer::via(2).kind(), LayerKind::Via(2));
        assert!(Layer::metal(3).is_metal());
        assert!(!Layer::gate().is_metal());
        assert_eq!(Layer::metal(4).metal_level(), Some(4));
        assert_eq!(Layer::contact().metal_level(), None);
    }

    #[test]
    fn gds_id_roundtrip() {
        let layers = [
            Layer::diffusion(),
            Layer::gate(),
            Layer::contact(),
            Layer::metal(1),
            Layer::metal(2),
            Layer::metal(10),
            Layer::via(1),
            Layer::via(9),
        ];
        for l in layers {
            assert_eq!(Layer::from_gds_id(l.gds_id()), Some(l), "{l}");
        }
        assert_eq!(Layer::from_gds_id(0), None);
        assert_eq!(Layer::from_gds_id(7), None);
    }

    #[test]
    fn name_roundtrip() {
        for l in [
            Layer::diffusion(),
            Layer::metal(1),
            Layer::via(3),
            Layer::gate(),
        ] {
            assert_eq!(Layer::parse_name(&l.to_string()), Some(l));
        }
        assert_eq!(Layer::parse_name("bogus"), None);
        assert_eq!(Layer::parse_name("metalx"), None);
    }

    #[test]
    fn ordering_is_stable() {
        // Deterministic iteration order matters for netlist reproducibility.
        let mut v = vec![Layer::metal(2), Layer::gate(), Layer::metal(1)];
        v.sort();
        assert_eq!(v, vec![Layer::gate(), Layer::metal(1), Layer::metal(2)]);
    }
}
