//! Integer-nanometre layout geometry for the `mpvar` workspace.
//!
//! The paper's flow starts from a GDSII layout of a 6T SRAM cell
//! (Fig. 1b) whose metal1 is a stack of unidirectional horizontal tracks.
//! This crate provides the layout substrate for that flow:
//!
//! * [`units`] — the [`Nm`] newtype: all coordinates are
//!   integer nanometres, so geometry is exact and hashable;
//! * [`point`], [`rect`], [`polygon`] — primitives with exact predicates;
//! * [`transform`] — the eight GDSII orientations applied to geometry;
//! * [`layer`] — process layers (metal1, metal2, vias, FEOL);
//! * [`shape`], [`cell`] — a hierarchical cell/instance layout database
//!   with flattening;
//! * [`track`] — the unidirectional-wire abstraction the litho and
//!   extraction crates operate on (a wire = a track with a width, a span
//!   and a net label);
//! * [`gds`] — a line-oriented text serialization of layouts ("TGDS"),
//!   standing in for binary GDSII.
//!
//! # Example
//!
//! ```
//! use mpvar_geometry::prelude::*;
//!
//! let m1 = Layer::metal(1);
//! let mut cell = Cell::new("bitcell");
//! let wire = Rect::new(Nm(0), Nm(0), Nm(120), Nm(24))?;
//! cell.add_shape(Shape::rect(m1, wire).with_net("BL"));
//! assert_eq!(cell.shapes().len(), 1);
//! # Ok::<(), mpvar_geometry::GeometryError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod error;
pub mod gds;
pub mod layer;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod shape;
pub mod track;
pub mod transform;
pub mod units;

pub use cell::{Cell, Instance, Layout};
pub use error::GeometryError;
pub use layer::{Layer, LayerKind};
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use shape::{Geometry, Shape};
pub use track::{Track, TrackStack};
pub use transform::Orientation;
pub use units::Nm;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::cell::{Cell, Instance, Layout};
    pub use crate::error::GeometryError;
    pub use crate::layer::{Layer, LayerKind};
    pub use crate::point::Point;
    pub use crate::polygon::Polygon;
    pub use crate::rect::Rect;
    pub use crate::shape::{Geometry, Shape};
    pub use crate::track::{Track, TrackStack};
    pub use crate::transform::Orientation;
    pub use crate::units::Nm;
}
