//! 2D points in integer nanometres.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::units::Nm;

/// A 2D point (or displacement vector) in integer nanometres.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Point};
///
/// let p = Point::new(Nm(10), Nm(20));
/// let q = p + Point::new(Nm(1), Nm(-2));
/// assert_eq!(q, Point::new(Nm(11), Nm(18)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Nm,
    /// Vertical coordinate.
    pub y: Nm,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: Nm(0), y: Nm(0) };

    /// Creates a point from coordinates.
    pub fn new(x: Nm, y: Nm) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`, in nm².
    ///
    /// Returned as `i128` to avoid overflow for chip-scale coordinates.
    pub fn distance_sq(self, other: Point) -> i128 {
        let dx = (self.x.0 - other.x.0) as i128;
        let dy = (self.y.0 - other.y.0) as i128;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(self, other: Point) -> Nm {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Point {
        Point::new(Nm(x), Nm(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_ops() {
        let p: Point = (3, 4).into();
        assert_eq!(p.x, Nm(3));
        assert_eq!(p + Point::new(Nm(1), Nm(1)), (4, 5).into());
        assert_eq!(p - Point::new(Nm(3), Nm(4)), Point::ORIGIN);
    }

    #[test]
    fn distances() {
        let a: Point = (0, 0).into();
        let b: Point = (3, 4).into();
        assert_eq!(a.distance_sq(b), 25);
        assert_eq!(a.manhattan_distance(b), Nm(7));
        assert_eq!(b.manhattan_distance(a), Nm(7));
    }

    #[test]
    fn distance_sq_no_overflow_at_chip_scale() {
        // 3 cm die in nm is 3e7; squared ~ 1e15 each axis — fits i128.
        let a: Point = (0, 0).into();
        let b: Point = (30_000_000, 30_000_000).into();
        assert_eq!(a.distance_sq(b), 2 * (30_000_000i128 * 30_000_000i128));
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(Nm(1), Nm(2)).to_string(), "(1nm, 2nm)");
    }
}
