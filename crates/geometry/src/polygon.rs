//! Simple polygons (used for tapered/distorted wire outlines).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::point::Point;
use crate::rect::Rect;
use crate::units::Nm;

/// A simple polygon given by its vertex loop (implicitly closed).
///
/// Layout distortion under multiple-patterning variability (paper Fig. 2)
/// turns rectangular wires into jogged outlines; `Polygon` captures those.
/// Vertices are stored in the order given; the signed area convention is
/// positive for counter-clockwise loops.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Point, Polygon};
///
/// let tri = Polygon::new(vec![
///     Point::new(Nm(0), Nm(0)),
///     Point::new(Nm(10), Nm(0)),
///     Point::new(Nm(0), Nm(10)),
/// ])?;
/// assert_eq!(tri.area_nm2(), 50);
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex loop.
    ///
    /// # Errors
    ///
    /// [`GeometryError::TooFewVertices`] with fewer than three vertices.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeometryError> {
        if vertices.len() < 3 {
            return Err(GeometryError::TooFewVertices {
                got: vertices.len(),
            });
        }
        Ok(Self { vertices })
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: construction guarantees at least three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Twice the signed area (shoelace sum), positive when
    /// counter-clockwise. Exposed for orientation tests.
    pub fn signed_area2(&self) -> i128 {
        let n = self.vertices.len();
        let mut acc: i128 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x.0 as i128 * b.y.0 as i128 - b.x.0 as i128 * a.y.0 as i128;
        }
        acc
    }

    /// Unsigned area in nm² (rounded down for odd shoelace sums).
    pub fn area_nm2(&self) -> i128 {
        self.signed_area2().abs() / 2
    }

    /// `true` when vertices wind counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area2() > 0
    }

    /// Axis-aligned bounding box.
    ///
    /// # Panics
    ///
    /// Never panics: polygons always have ≥ 3 vertices, and a degenerate
    /// (zero-extent) bounding box is widened to 1nm.
    pub fn bbox(&self) -> Rect {
        let mut x0 = Nm(i64::MAX);
        let mut y0 = Nm(i64::MAX);
        let mut x1 = Nm(i64::MIN);
        let mut y1 = Nm(i64::MIN);
        for v in &self.vertices {
            x0 = x0.min(v.x);
            y0 = y0.min(v.y);
            x1 = x1.max(v.x);
            y1 = y1.max(v.y);
        }
        let x1 = if x0 == x1 { x1 + Nm(1) } else { x1 };
        let y1 = if y0 == y1 { y1 + Nm(1) } else { y1 };
        Rect::new(x0, y0, x1, y1).expect("bbox widened to nonzero extent")
    }

    /// Translates all vertices by `d`.
    pub fn translate(&self, d: Point) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&v| v + d).collect(),
        }
    }

    /// Builds the rectangle's vertex loop (counter-clockwise).
    pub fn from_rect(r: &Rect) -> Polygon {
        Polygon {
            vertices: vec![
                r.ll(),
                Point::new(r.x1(), r.y0()),
                r.ur(),
                Point::new(r.x0(), r.y1()),
            ],
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poly[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(Nm(x), Nm(y))
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Polygon::new(vec![]).is_err());
        assert!(Polygon::new(vec![p(0, 0), p(1, 1)]).is_err());
    }

    #[test]
    fn triangle_area_and_winding() {
        let ccw = Polygon::new(vec![p(0, 0), p(10, 0), p(0, 10)]).unwrap();
        assert_eq!(ccw.area_nm2(), 50);
        assert!(ccw.is_ccw());
        let cw = Polygon::new(vec![p(0, 0), p(0, 10), p(10, 0)]).unwrap();
        assert_eq!(cw.area_nm2(), 50);
        assert!(!cw.is_ccw());
    }

    #[test]
    fn rect_roundtrip_area() {
        let r = Rect::new(Nm(0), Nm(0), Nm(100), Nm(24)).unwrap();
        let poly = Polygon::from_rect(&r);
        assert_eq!(poly.area_nm2(), r.area_nm2());
        assert!(poly.is_ccw());
        assert_eq!(poly.bbox(), r);
    }

    #[test]
    fn jogged_wire_area() {
        // An L-shaped (jogged) wire: 20x4 plus 4x6 notch extension.
        let l = Polygon::new(vec![
            p(0, 0),
            p(20, 0),
            p(20, 10),
            p(16, 10),
            p(16, 4),
            p(0, 4),
        ])
        .unwrap();
        assert_eq!(l.area_nm2(), 20 * 4 + 4 * 6);
    }

    #[test]
    fn translate_preserves_area() {
        let t = Polygon::new(vec![p(0, 0), p(10, 0), p(0, 10)]).unwrap();
        let moved = t.translate(p(100, -50));
        assert_eq!(moved.area_nm2(), t.area_nm2());
        assert_eq!(moved.vertices()[0], p(100, -50));
    }

    #[test]
    fn bbox_of_collinear_points_is_widened() {
        let line = Polygon::new(vec![p(0, 0), p(10, 0), p(20, 0)]).unwrap();
        let bb = line.bbox();
        assert_eq!(bb.height(), Nm(1));
        assert_eq!(bb.width(), Nm(20));
    }

    #[test]
    fn display_lists_vertices() {
        let t = Polygon::new(vec![p(0, 0), p(1, 0), p(0, 1)]).unwrap();
        assert!(t.to_string().starts_with("poly["));
    }
}
