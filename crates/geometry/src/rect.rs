//! Axis-aligned rectangles.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::point::Point;
use crate::units::Nm;

/// An axis-aligned rectangle with strictly positive extent.
///
/// Stored as lower-left / upper-right corners; constructors normalize
/// corner order, and degenerate (zero-area) rectangles are rejected so the
/// extraction code can rely on every shape having a real cross-section.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Rect};
///
/// let r = Rect::new(Nm(0), Nm(0), Nm(100), Nm(24))?;
/// assert_eq!(r.width(), Nm(100));
/// assert_eq!(r.height(), Nm(24));
/// assert_eq!(r.area_nm2(), 2400);
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    ll: Point,
    ur: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners given as coordinates.
    ///
    /// Corner order is normalized automatically.
    ///
    /// # Errors
    ///
    /// [`GeometryError::DegenerateRect`] when width or height is zero.
    pub fn new(x0: Nm, y0: Nm, x1: Nm, y1: Nm) -> Result<Self, GeometryError> {
        let (xl, xr) = (x0.min(x1), x0.max(x1));
        let (yb, yt) = (y0.min(y1), y0.max(y1));
        if xl == xr || yb == yt {
            return Err(GeometryError::DegenerateRect {
                width: xr - xl,
                height: yt - yb,
            });
        }
        Ok(Self {
            ll: Point::new(xl, yb),
            ur: Point::new(xr, yt),
        })
    }

    /// Creates a rectangle from two corner points.
    ///
    /// # Errors
    ///
    /// Same as [`Rect::new`].
    pub fn from_corners(a: Point, b: Point) -> Result<Self, GeometryError> {
        Self::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle centred at `(cx, cy)` with the given size.
    ///
    /// # Errors
    ///
    /// Same as [`Rect::new`]; note odd sizes lose half a nanometre to
    /// integer division.
    pub fn centered(cx: Nm, cy: Nm, width: Nm, height: Nm) -> Result<Self, GeometryError> {
        Self::new(
            cx - width / 2,
            cy - height / 2,
            cx - width / 2 + width,
            cy - height / 2 + height,
        )
    }

    /// Lower-left corner.
    pub fn ll(&self) -> Point {
        self.ll
    }

    /// Upper-right corner.
    pub fn ur(&self) -> Point {
        self.ur
    }

    /// Left edge x.
    pub fn x0(&self) -> Nm {
        self.ll.x
    }

    /// Right edge x.
    pub fn x1(&self) -> Nm {
        self.ur.x
    }

    /// Bottom edge y.
    pub fn y0(&self) -> Nm {
        self.ll.y
    }

    /// Top edge y.
    pub fn y1(&self) -> Nm {
        self.ur.y
    }

    /// Horizontal extent.
    pub fn width(&self) -> Nm {
        self.ur.x - self.ll.x
    }

    /// Vertical extent.
    pub fn height(&self) -> Nm {
        self.ur.y - self.ll.y
    }

    /// Center point (integer division).
    pub fn center(&self) -> Point {
        Point::new((self.ll.x + self.ur.x) / 2, (self.ll.y + self.ur.y) / 2)
    }

    /// Area in nm², as `i128` to avoid overflow.
    pub fn area_nm2(&self) -> i128 {
        self.width().0 as i128 * self.height().0 as i128
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.ll.x && p.x <= self.ur.x && p.y >= self.ll.y && p.y <= self.ur.y
    }

    /// `true` if the two rectangles share interior area (touching edges do
    /// not count as intersection).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.ll.x < other.ur.x
            && other.ll.x < self.ur.x
            && self.ll.y < other.ur.y
            && other.ll.y < self.ur.y
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Rect::new(
            self.ll.x.max(other.ll.x),
            self.ll.y.max(other.ll.y),
            self.ur.x.min(other.ur.x),
            self.ur.y.min(other.ur.y),
        )
        .ok()
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            ll: Point::new(self.ll.x.min(other.ll.x), self.ll.y.min(other.ll.y)),
            ur: Point::new(self.ur.x.max(other.ur.x), self.ur.y.max(other.ur.y)),
        }
    }

    /// Grows (or shrinks, for negative `d`) the rectangle by `d` on every
    /// side.
    ///
    /// # Errors
    ///
    /// [`GeometryError::DegenerateRect`] if shrinking collapses the
    /// rectangle.
    pub fn expand(&self, d: Nm) -> Result<Rect, GeometryError> {
        Rect::new(self.ll.x - d, self.ll.y - d, self.ur.x + d, self.ur.y + d)
    }

    /// Translates by a displacement vector.
    pub fn translate(&self, d: Point) -> Rect {
        Rect {
            ll: self.ll + d,
            ur: self.ur + d,
        }
    }

    /// Vertical gap between this rectangle and `other` (0 if they overlap
    /// vertically). Useful for track spacing queries.
    pub fn vertical_gap(&self, other: &Rect) -> Nm {
        if other.ll.y >= self.ur.y {
            other.ll.y - self.ur.y
        } else if self.ll.y >= other.ur.y {
            self.ll.y - other.ur.y
        } else {
            Nm(0)
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.ll, self.ur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Nm(x0), Nm(y0), Nm(x1), Nm(y1)).unwrap()
    }

    #[test]
    fn normalizes_corners() {
        let a = r(10, 20, 0, 0);
        assert_eq!(a.ll(), Point::new(Nm(0), Nm(0)));
        assert_eq!(a.ur(), Point::new(Nm(10), Nm(20)));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Rect::new(Nm(0), Nm(0), Nm(0), Nm(5)).is_err());
        assert!(Rect::new(Nm(0), Nm(0), Nm(5), Nm(0)).is_err());
    }

    #[test]
    fn accessors() {
        let a = r(2, 3, 12, 9);
        assert_eq!(a.width(), Nm(10));
        assert_eq!(a.height(), Nm(6));
        assert_eq!(a.center(), Point::new(Nm(7), Nm(6)));
        assert_eq!(a.area_nm2(), 60);
        assert_eq!(a.x0(), Nm(2));
        assert_eq!(a.y1(), Nm(9));
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains((0, 0).into()));
        assert!(a.contains((10, 10).into()));
        assert!(a.contains((5, 5).into()));
        assert!(!a.contains((11, 5).into()));
    }

    #[test]
    fn intersection_semantics() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 15, 15);
        let c = r(10, 0, 20, 10); // shares only an edge with a
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(5, 5, 10, 10));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = r(0, 0, 1, 1);
        let b = r(10, 10, 12, 12);
        let u = a.union(&b);
        assert_eq!(u, r(0, 0, 12, 12));
    }

    #[test]
    fn expand_and_shrink() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.expand(Nm(2)).unwrap(), r(-2, -2, 12, 12));
        assert_eq!(a.expand(Nm(-2)).unwrap(), r(2, 2, 8, 8));
        assert!(a.expand(Nm(-5)).is_err());
    }

    #[test]
    fn translate_moves() {
        let a = r(0, 0, 10, 10).translate((5, -3).into());
        assert_eq!(a, r(5, -3, 15, 7));
    }

    #[test]
    fn vertical_gap_between_tracks() {
        let lower = r(0, 0, 100, 24);
        let upper = r(0, 48, 100, 72);
        assert_eq!(lower.vertical_gap(&upper), Nm(24));
        assert_eq!(upper.vertical_gap(&lower), Nm(24));
        let overlapping = r(0, 10, 100, 30);
        assert_eq!(lower.vertical_gap(&overlapping), Nm(0));
    }

    #[test]
    fn centered_constructor() {
        let a = Rect::centered(Nm(0), Nm(0), Nm(10), Nm(4)).unwrap();
        assert_eq!(a, r(-5, -2, 5, 2));
    }
}
