//! Layout shapes: a geometry on a layer, optionally labelled with a net.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::layer::Layer;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::transform::Orientation;

/// The geometric body of a shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Geometry {
    /// An axis-aligned rectangle (the common case for wires).
    Rect(Rect),
    /// A simple polygon (distorted wire outlines).
    Polygon(Polygon),
}

impl Geometry {
    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        match self {
            Geometry::Rect(r) => *r,
            Geometry::Polygon(p) => p.bbox(),
        }
    }

    /// Area in nm².
    pub fn area_nm2(&self) -> i128 {
        match self {
            Geometry::Rect(r) => r.area_nm2(),
            Geometry::Polygon(p) => p.area_nm2(),
        }
    }

    /// Translates the geometry.
    pub fn translate(&self, d: Point) -> Geometry {
        match self {
            Geometry::Rect(r) => Geometry::Rect(r.translate(d)),
            Geometry::Polygon(p) => Geometry::Polygon(p.translate(d)),
        }
    }

    /// Applies an orientation about the origin.
    pub fn orient(&self, o: Orientation) -> Geometry {
        match self {
            Geometry::Rect(r) => Geometry::Rect(o.apply_rect(r)),
            Geometry::Polygon(p) => {
                let verts = p.vertices().iter().map(|&v| o.apply(v)).collect();
                Geometry::Polygon(Polygon::new(verts).expect("orientation preserves vertex count"))
            }
        }
    }
}

/// A shape: geometry on a layer, optionally carrying a net label.
///
/// Net labels drive LVS-free netlist extraction: every metal1 shape in the
/// SRAM layouts is labelled (`BL`, `BLB`, `VDD`, `VSS`, ...), so the
/// extractor can connect parasitics per net without a full connectivity
/// engine.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Layer, Nm, Rect, Shape};
///
/// let bl = Shape::rect(Layer::metal(1), Rect::new(Nm(0), Nm(0), Nm(128), Nm(26))?)
///     .with_net("BL");
/// assert_eq!(bl.net(), Some("BL"));
/// assert_eq!(bl.layer(), Layer::metal(1));
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    layer: Layer,
    geometry: Geometry,
    net: Option<String>,
}

impl Shape {
    /// Creates a shape from any geometry.
    pub fn new(layer: Layer, geometry: Geometry) -> Self {
        Self {
            layer,
            geometry,
            net: None,
        }
    }

    /// Creates a rectangular shape.
    pub fn rect(layer: Layer, rect: Rect) -> Self {
        Self::new(layer, Geometry::Rect(rect))
    }

    /// Creates a polygonal shape.
    ///
    /// # Errors
    ///
    /// Propagates [`Polygon::new`] vertex-count validation.
    pub fn polygon(layer: Layer, vertices: Vec<Point>) -> Result<Self, GeometryError> {
        Ok(Self::new(layer, Geometry::Polygon(Polygon::new(vertices)?)))
    }

    /// Attaches a net label (builder style).
    #[must_use]
    pub fn with_net(mut self, net: impl Into<String>) -> Self {
        self.net = Some(net.into());
        self
    }

    /// The layer this shape is drawn on.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// The geometric body.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The net label, if any.
    pub fn net(&self) -> Option<&str> {
        self.net.as_deref()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        self.geometry.bbox()
    }

    /// Area in nm².
    pub fn area_nm2(&self) -> i128 {
        self.geometry.area_nm2()
    }

    /// Returns the shape translated by `d` (net label preserved).
    pub fn translate(&self, d: Point) -> Shape {
        Shape {
            layer: self.layer,
            geometry: self.geometry.translate(d),
            net: self.net.clone(),
        }
    }

    /// Returns the shape transformed by orientation `o` then translated by
    /// `d` — the instance-placement transform.
    pub fn place(&self, o: Orientation, d: Point) -> Shape {
        Shape {
            layer: self.layer,
            geometry: self.geometry.orient(o).translate(d),
            net: self.net.clone(),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.layer, self.bbox())?;
        if let Some(n) = &self.net {
            write!(f, " net={n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Nm;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Nm(x0), Nm(y0), Nm(x1), Nm(y1)).unwrap()
    }

    #[test]
    fn rect_shape_basics() {
        let s = Shape::rect(Layer::metal(1), r(0, 0, 10, 2)).with_net("BL");
        assert_eq!(s.layer(), Layer::metal(1));
        assert_eq!(s.net(), Some("BL"));
        assert_eq!(s.area_nm2(), 20);
        assert_eq!(s.bbox(), r(0, 0, 10, 2));
    }

    #[test]
    fn polygon_shape_validation() {
        assert!(Shape::polygon(Layer::gate(), vec![]).is_err());
        let tri = Shape::polygon(
            Layer::gate(),
            vec![(0, 0).into(), (4, 0).into(), (0, 4).into()],
        )
        .unwrap();
        assert_eq!(tri.area_nm2(), 8);
    }

    #[test]
    fn translate_keeps_net() {
        let s = Shape::rect(Layer::metal(2), r(0, 0, 4, 4)).with_net("WL");
        let t = s.translate((10, 0).into());
        assert_eq!(t.net(), Some("WL"));
        assert_eq!(t.bbox(), r(10, 0, 14, 4));
    }

    #[test]
    fn placement_transform() {
        let s = Shape::rect(Layer::metal(1), r(0, 0, 10, 2));
        let placed = s.place(Orientation::R90, (100, 0).into());
        // R90 maps [0,0,10,2] to [-2,0,0,10]; translate x+100.
        assert_eq!(placed.bbox(), r(98, 0, 100, 10));
    }

    #[test]
    fn geometry_bbox_of_polygon() {
        let g = Geometry::Polygon(
            Polygon::new(vec![(0, 0).into(), (8, 0).into(), (4, 6).into()]).unwrap(),
        );
        assert_eq!(g.bbox(), r(0, 0, 8, 6));
    }

    #[test]
    fn display_mentions_layer_and_net() {
        let s = Shape::rect(Layer::metal(1), r(0, 0, 1, 1)).with_net("VSS");
        let out = s.to_string();
        assert!(out.contains("metal1"));
        assert!(out.contains("net=VSS"));
    }
}
