//! Unidirectional-wire (track) abstraction.
//!
//! The SRAM layout studied in the paper uses *unidirectional* horizontal
//! metal1: every wire is a horizontal track with a centerline, a width and
//! a span. The litho crate perturbs tracks (CD changes width, overlay
//! shifts centerlines, SADP redefines both); the extraction crate turns
//! perturbed tracks into R/C. This module holds the unperturbed, drawn
//! representation in exact integer nanometres.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::rect::Rect;
use crate::units::Nm;

/// A horizontal wire: net label, centerline `y`, width, and x-span.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Track};
///
/// let bl = Track::new("BL", Nm(24), Nm(26), Nm(0), Nm(1280))?;
/// assert_eq!(bl.width(), Nm(26));
/// assert_eq!(bl.length(), Nm(1280));
/// assert_eq!(bl.bottom(), Nm(11)); // 24 - 26/2
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Track {
    net: String,
    y_center: Nm,
    width: Nm,
    x0: Nm,
    x1: Nm,
}

impl Track {
    /// Creates a track.
    ///
    /// # Errors
    ///
    /// * [`GeometryError::NonPositiveWidth`] when `width <= 0`;
    /// * [`GeometryError::EmptySpan`] when `x0 >= x1`.
    pub fn new(
        net: impl Into<String>,
        y_center: Nm,
        width: Nm,
        x0: Nm,
        x1: Nm,
    ) -> Result<Self, GeometryError> {
        if width <= Nm(0) {
            return Err(GeometryError::NonPositiveWidth { width });
        }
        if x0 >= x1 {
            return Err(GeometryError::EmptySpan { x0, x1 });
        }
        Ok(Self {
            net: net.into(),
            y_center,
            width,
            x0,
            x1,
        })
    }

    /// Net label.
    pub fn net(&self) -> &str {
        &self.net
    }

    /// Centerline y-coordinate.
    pub fn y_center(&self) -> Nm {
        self.y_center
    }

    /// Drawn width.
    pub fn width(&self) -> Nm {
        self.width
    }

    /// Span start.
    pub fn x0(&self) -> Nm {
        self.x0
    }

    /// Span end.
    pub fn x1(&self) -> Nm {
        self.x1
    }

    /// Wire length along the track.
    pub fn length(&self) -> Nm {
        self.x1 - self.x0
    }

    /// Bottom edge `y_center - width/2`.
    pub fn bottom(&self) -> Nm {
        self.y_center - self.width / 2
    }

    /// Top edge (bottom + width, exact even for odd widths).
    pub fn top(&self) -> Nm {
        self.bottom() + self.width
    }

    /// The track outline as a rectangle.
    pub fn to_rect(&self) -> Rect {
        Rect::new(self.x0, self.bottom(), self.x1, self.top())
            .expect("track invariants guarantee positive extent")
    }

    /// Edge-to-edge vertical spacing to a higher track (`other` above
    /// `self`); negative when they overlap.
    pub fn spacing_to(&self, other: &Track) -> Nm {
        if other.y_center >= self.y_center {
            other.bottom() - self.top()
        } else {
            self.bottom() - other.top()
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @y={} w={} [{}..{}]",
            self.net, self.y_center, self.width, self.x0, self.x1
        )
    }
}

/// An ordered stack of parallel horizontal tracks.
///
/// Construction validates that tracks are sorted bottom-to-top by
/// centerline and do not overlap, which the patterning and extraction
/// models rely on.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Track, TrackStack};
///
/// let stack = TrackStack::new(vec![
///     Track::new("VSS", Nm(0),  Nm(24), Nm(0), Nm(100))?,
///     Track::new("BL",  Nm(48), Nm(26), Nm(0), Nm(100))?,
///     Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(100))?,
/// ])?;
/// assert_eq!(stack.len(), 3);
/// assert_eq!(stack.index_of_net("BL"), Some(1));
/// assert_eq!(stack.spacing(0, 1), Nm(23)); // 48-13 - 12-0 ... edge gap
/// # Ok::<(), mpvar_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackStack {
    tracks: Vec<Track>,
}

impl TrackStack {
    /// Creates a validated stack.
    ///
    /// # Errors
    ///
    /// [`GeometryError::TrackOrdering`] when tracks are unsorted by
    /// centerline or physically overlap.
    pub fn new(tracks: Vec<Track>) -> Result<Self, GeometryError> {
        for w in tracks.windows(2) {
            if w[1].y_center() < w[0].y_center() {
                return Err(GeometryError::TrackOrdering {
                    message: format!(
                        "track `{}` (y={}) is below preceding `{}` (y={})",
                        w[1].net(),
                        w[1].y_center(),
                        w[0].net(),
                        w[0].y_center()
                    ),
                });
            }
            if w[0].spacing_to(&w[1]) < Nm(0) {
                return Err(GeometryError::TrackOrdering {
                    message: format!(
                        "tracks `{}` and `{}` overlap (spacing {})",
                        w[0].net(),
                        w[1].net(),
                        w[0].spacing_to(&w[1])
                    ),
                });
            }
        }
        Ok(Self { tracks })
    }

    /// The tracks, bottom to top.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The track at `i`.
    pub fn get(&self, i: usize) -> Option<&Track> {
        self.tracks.get(i)
    }

    /// Index of the first track labelled `net`.
    pub fn index_of_net(&self, net: &str) -> Option<usize> {
        self.tracks.iter().position(|t| t.net() == net)
    }

    /// Indices of every track labelled `net`.
    pub fn indices_of_net(&self, net: &str) -> Vec<usize> {
        self.tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.net() == net)
            .map(|(i, _)| i)
            .collect()
    }

    /// Edge-to-edge spacing between tracks `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn spacing(&self, i: usize, j: usize) -> Nm {
        self.tracks[i].spacing_to(&self.tracks[j])
    }

    /// The neighbours of track `i`: `(below, above)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> (Option<&Track>, Option<&Track>) {
        assert!(i < self.tracks.len(), "track index out of range");
        let below = if i > 0 { self.tracks.get(i - 1) } else { None };
        (below, self.tracks.get(i + 1))
    }

    /// Center-to-center pitch between consecutive tracks `i` and `i+1`.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1` is out of range.
    pub fn pitch(&self, i: usize) -> Nm {
        self.tracks[i + 1].y_center() - self.tracks[i].y_center()
    }

    /// Iterator over tracks.
    pub fn iter(&self) -> std::slice::Iter<'_, Track> {
        self.tracks.iter()
    }

    /// Replicates this stack `copies` times upward with period `pitch`,
    /// producing the track pattern of an array of abutted cells.
    ///
    /// # Errors
    ///
    /// [`GeometryError::TrackOrdering`] if `pitch` is too small, making
    /// replicas overlap.
    pub fn tile_vertical(&self, copies: usize, pitch: Nm) -> Result<TrackStack, GeometryError> {
        let mut out = Vec::with_capacity(self.tracks.len() * copies);
        for k in 0..copies {
            let dy = pitch * k as i64;
            for t in &self.tracks {
                out.push(Track {
                    net: t.net.clone(),
                    y_center: t.y_center + dy,
                    width: t.width,
                    x0: t.x0,
                    x1: t.x1,
                });
            }
        }
        TrackStack::new(out)
    }
}

impl<'a> IntoIterator for &'a TrackStack {
    type Item = &'a Track;
    type IntoIter = std::slice::Iter<'a, Track>;

    fn into_iter(self) -> Self::IntoIter {
        self.tracks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(net: &str, y: i64, w: i64) -> Track {
        Track::new(net, Nm(y), Nm(w), Nm(0), Nm(1000)).unwrap()
    }

    #[test]
    fn track_validation() {
        assert!(Track::new("x", Nm(0), Nm(0), Nm(0), Nm(10)).is_err());
        assert!(Track::new("x", Nm(0), Nm(-2), Nm(0), Nm(10)).is_err());
        assert!(Track::new("x", Nm(0), Nm(4), Nm(10), Nm(10)).is_err());
        assert!(Track::new("x", Nm(0), Nm(4), Nm(10), Nm(5)).is_err());
    }

    #[test]
    fn track_edges() {
        let tr = t("BL", 48, 26);
        assert_eq!(tr.bottom(), Nm(35));
        assert_eq!(tr.top(), Nm(61));
        assert_eq!(tr.length(), Nm(1000));
        let r = tr.to_rect();
        assert_eq!(r.height(), Nm(26));
    }

    #[test]
    fn odd_width_track_preserves_width() {
        let tr = t("BL", 48, 25);
        assert_eq!(tr.top() - tr.bottom(), Nm(25));
    }

    #[test]
    fn spacing_symmetric() {
        let a = t("VSS", 0, 24);
        let b = t("BL", 48, 24);
        assert_eq!(a.spacing_to(&b), Nm(24));
        assert_eq!(b.spacing_to(&a), Nm(24));
    }

    #[test]
    fn stack_validation() {
        // Unsorted.
        assert!(TrackStack::new(vec![t("a", 48, 24), t("b", 0, 24)]).is_err());
        // Overlapping.
        assert!(TrackStack::new(vec![t("a", 0, 24), t("b", 20, 24)]).is_err());
        // Abutting is allowed (spacing 0).
        assert!(TrackStack::new(vec![t("a", 0, 24), t("b", 24, 24)]).is_ok());
    }

    #[test]
    fn net_queries() {
        let s = TrackStack::new(vec![t("VSS", 0, 24), t("BL", 48, 26), t("VSS", 96, 24)]).unwrap();
        assert_eq!(s.index_of_net("BL"), Some(1));
        assert_eq!(s.index_of_net("nope"), None);
        assert_eq!(s.indices_of_net("VSS"), vec![0, 2]);
    }

    #[test]
    fn neighbor_queries() {
        let s = TrackStack::new(vec![t("a", 0, 24), t("b", 48, 24), t("c", 96, 24)]).unwrap();
        let (below, above) = s.neighbors(1);
        assert_eq!(below.unwrap().net(), "a");
        assert_eq!(above.unwrap().net(), "c");
        let (below, above) = s.neighbors(0);
        assert!(below.is_none());
        assert_eq!(above.unwrap().net(), "b");
        let (_, above) = s.neighbors(2);
        assert!(above.is_none());
    }

    #[test]
    fn pitch_between_tracks() {
        let s = TrackStack::new(vec![t("a", 0, 24), t("b", 48, 24)]).unwrap();
        assert_eq!(s.pitch(0), Nm(48));
    }

    #[test]
    fn tiling_replicates_pattern() {
        let s = TrackStack::new(vec![t("VSS", 0, 24), t("BL", 48, 24)]).unwrap();
        let tiled = s.tile_vertical(3, Nm(96)).unwrap();
        assert_eq!(tiled.len(), 6);
        assert_eq!(tiled.get(2).unwrap().net(), "VSS");
        assert_eq!(tiled.get(2).unwrap().y_center(), Nm(96));
        assert_eq!(tiled.get(5).unwrap().y_center(), Nm(240));
    }

    #[test]
    fn tiling_rejects_overlapping_period() {
        let s = TrackStack::new(vec![t("VSS", 0, 24), t("BL", 48, 24)]).unwrap();
        assert!(s.tile_vertical(2, Nm(50)).is_err());
    }

    #[test]
    fn iteration() {
        let s = TrackStack::new(vec![t("a", 0, 24), t("b", 48, 24)]).unwrap();
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }
}
