//! GDSII-style orientations (rotations and mirrored rotations).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::rect::Rect;
use crate::units::Nm;

/// One of the eight axis-aligned orientations used for cell instances.
///
/// `R*` are counter-clockwise rotations; `M*` mirror about the x-axis
/// first (GDS "reflect") and then rotate.
///
/// # Example
///
/// ```
/// use mpvar_geometry::{Nm, Orientation, Point};
///
/// let p = Point::new(Nm(1), Nm(0));
/// assert_eq!(Orientation::R90.apply(p), Point::new(Nm(0), Nm(1)));
/// assert_eq!(Orientation::MX.apply(p), p); // x-axis point is fixed by MX
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
    /// Mirror about the x-axis (flip y).
    MX,
    /// Mirror then rotate 90°.
    MX90,
    /// Mirror about the y-axis (flip x) — equals MX then R180.
    MY,
    /// Mirror about y then rotate 90°.
    MY90,
}

impl Orientation {
    /// All eight orientations, in declaration order.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MX90,
        Orientation::MY,
        Orientation::MY90,
    ];

    /// Applies the orientation to a point (about the origin).
    pub fn apply(self, p: Point) -> Point {
        let (x, y) = (p.x, p.y);
        let (mx, my) = match self {
            Orientation::R0 | Orientation::R90 | Orientation::R180 | Orientation::R270 => (x, y),
            Orientation::MX | Orientation::MX90 => (x, -y),
            Orientation::MY | Orientation::MY90 => (-x, y),
        };
        match self {
            Orientation::R0 | Orientation::MX | Orientation::MY => Point::new(mx, my),
            Orientation::R90 | Orientation::MX90 | Orientation::MY90 => Point::new(-my, mx),
            Orientation::R180 => Point::new(-mx, -my),
            Orientation::R270 => Point::new(my, -mx),
        }
    }

    /// Applies the orientation to a rectangle (about the origin).
    pub fn apply_rect(self, r: &Rect) -> Rect {
        let a = self.apply(r.ll());
        let b = self.apply(r.ur());
        Rect::from_corners(a, b).expect("orientation preserves extent")
    }

    /// Composes two orientations: `self.then(other)` applies `self` first.
    pub fn then(self, other: Orientation) -> Orientation {
        // Probe with two points that distinguish all eight orientations.
        let p1 = Point::new(Nm(1), Nm(0));
        let p2 = Point::new(Nm(0), Nm(1));
        let t1 = other.apply(self.apply(p1));
        let t2 = other.apply(self.apply(p2));
        *Orientation::ALL
            .iter()
            .find(|o| o.apply(p1) == t1 && o.apply(p2) == t2)
            .expect("composition of orientations is an orientation")
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orientation {
        *Orientation::ALL
            .iter()
            .find(|o| self.then(**o) == Orientation::R0)
            .expect("every orientation has an inverse")
    }

    /// `true` when the orientation involves a mirror.
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orientation::MX | Orientation::MX90 | Orientation::MY | Orientation::MY90
        )
    }

    /// Parses the textual name used by [`fmt::Display`].
    pub fn parse_name(s: &str) -> Option<Orientation> {
        match s {
            "R0" => Some(Orientation::R0),
            "R90" => Some(Orientation::R90),
            "R180" => Some(Orientation::R180),
            "R270" => Some(Orientation::R270),
            "MX" => Some(Orientation::MX),
            "MX90" => Some(Orientation::MX90),
            "MY" => Some(Orientation::MY),
            "MY90" => Some(Orientation::MY90),
            _ => None,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MX => "MX",
            Orientation::MX90 => "MX90",
            Orientation::MY => "MY",
            Orientation::MY90 => "MY90",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(Nm(x), Nm(y))
    }

    #[test]
    fn rotations() {
        let v = p(2, 1);
        assert_eq!(Orientation::R0.apply(v), p(2, 1));
        assert_eq!(Orientation::R90.apply(v), p(-1, 2));
        assert_eq!(Orientation::R180.apply(v), p(-2, -1));
        assert_eq!(Orientation::R270.apply(v), p(1, -2));
    }

    #[test]
    fn mirrors() {
        let v = p(2, 1);
        assert_eq!(Orientation::MX.apply(v), p(2, -1));
        assert_eq!(Orientation::MY.apply(v), p(-2, 1));
        assert_eq!(Orientation::MX90.apply(v), p(1, 2));
        assert_eq!(Orientation::MY90.apply(v), p(-1, -2));
    }

    #[test]
    fn composition_closure_and_inverse() {
        let v = p(3, 5);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let composed = a.then(b);
                assert_eq!(composed.apply(v), b.apply(a.apply(v)), "{a} then {b}");
            }
            assert_eq!(a.then(a.inverse()), Orientation::R0, "{a}");
        }
    }

    #[test]
    fn rect_transform_preserves_area() {
        let r = Rect::new(Nm(1), Nm(2), Nm(11), Nm(6)).unwrap();
        for o in Orientation::ALL {
            let t = o.apply_rect(&r);
            assert_eq!(t.area_nm2(), r.area_nm2(), "{o}");
        }
    }

    #[test]
    fn rotation_by_90_swaps_extents() {
        let r = Rect::new(Nm(0), Nm(0), Nm(10), Nm(4)).unwrap();
        let t = Orientation::R90.apply_rect(&r);
        assert_eq!(t.width(), Nm(4));
        assert_eq!(t.height(), Nm(10));
    }

    #[test]
    fn name_roundtrip() {
        for o in Orientation::ALL {
            assert_eq!(Orientation::parse_name(&o.to_string()), Some(o));
        }
        assert_eq!(Orientation::parse_name("R45"), None);
    }

    #[test]
    fn mirrored_flag() {
        assert!(!Orientation::R90.is_mirrored());
        assert!(Orientation::MY90.is_mirrored());
    }
}
