//! The integer-nanometre length unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A length in integer nanometres.
///
/// All layout coordinates in `mpvar` are integer nanometres, which makes
/// geometric predicates exact (no epsilon comparisons) and types hashable.
/// Sub-nanometre process-variation deltas (e.g. a 1.5nm spacer 3σ) only
/// appear *after* variation is applied, at which point geometry is
/// converted to `f64` metres via [`Nm::to_meters`]; the litho crate works
/// in `f64` nanometres for perturbed dimensions.
///
/// # Example
///
/// ```
/// use mpvar_geometry::Nm;
///
/// let pitch = Nm(48);
/// let half = pitch / 2;
/// assert_eq!(half, Nm(24));
/// assert_eq!((pitch * 3).0, 144);
/// assert!((Nm(1).to_meters() - 1e-9).abs() < 1e-24);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nm(pub i64);

impl Nm {
    /// Zero length.
    pub const ZERO: Nm = Nm(0);

    /// Converts to SI metres.
    pub fn to_meters(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Converts to microns.
    pub fn to_microns(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Converts to `f64` nanometres (for variation math).
    pub fn to_f64(self) -> f64 {
        self.0 as f64
    }

    /// Builds an `Nm` from `f64` nanometres, rounding to the nearest
    /// integer nanometre.
    pub fn from_f64_rounded(nm: f64) -> Nm {
        Nm(nm.round() as i64)
    }

    /// Absolute value.
    pub fn abs(self) -> Nm {
        Nm(self.0.abs())
    }

    /// The smaller of two lengths.
    pub fn min(self, other: Nm) -> Nm {
        Nm(self.0.min(other.0))
    }

    /// The larger of two lengths.
    pub fn max(self, other: Nm) -> Nm {
        Nm(self.0.max(other.0))
    }

    /// `true` if the length is negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for Nm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

impl Add for Nm {
    type Output = Nm;
    fn add(self, rhs: Nm) -> Nm {
        Nm(self.0 + rhs.0)
    }
}

impl AddAssign for Nm {
    fn add_assign(&mut self, rhs: Nm) {
        self.0 += rhs.0;
    }
}

impl Sub for Nm {
    type Output = Nm;
    fn sub(self, rhs: Nm) -> Nm {
        Nm(self.0 - rhs.0)
    }
}

impl SubAssign for Nm {
    fn sub_assign(&mut self, rhs: Nm) {
        self.0 -= rhs.0;
    }
}

impl Neg for Nm {
    type Output = Nm;
    fn neg(self) -> Nm {
        Nm(-self.0)
    }
}

impl Mul<i64> for Nm {
    type Output = Nm;
    fn mul(self, rhs: i64) -> Nm {
        Nm(self.0 * rhs)
    }
}

impl Mul<Nm> for i64 {
    type Output = Nm;
    fn mul(self, rhs: Nm) -> Nm {
        Nm(self * rhs.0)
    }
}

impl Div<i64> for Nm {
    type Output = Nm;
    fn div(self, rhs: i64) -> Nm {
        Nm(self.0 / rhs)
    }
}

impl Rem<i64> for Nm {
    type Output = Nm;
    fn rem(self, rhs: i64) -> Nm {
        Nm(self.0 % rhs)
    }
}

impl Sum for Nm {
    fn sum<I: Iterator<Item = Nm>>(iter: I) -> Nm {
        iter.fold(Nm::ZERO, Add::add)
    }
}

impl From<i64> for Nm {
    fn from(v: i64) -> Nm {
        Nm(v)
    }
}

impl From<Nm> for i64 {
    fn from(v: Nm) -> i64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Nm(3) + Nm(4), Nm(7));
        assert_eq!(Nm(3) - Nm(4), Nm(-1));
        assert_eq!(-Nm(5), Nm(-5));
        assert_eq!(Nm(6) * 2, Nm(12));
        assert_eq!(3 * Nm(6), Nm(18));
        assert_eq!(Nm(7) / 2, Nm(3));
        assert_eq!(Nm(7) % 2, Nm(1));
    }

    #[test]
    fn assign_ops() {
        let mut x = Nm(10);
        x += Nm(5);
        assert_eq!(x, Nm(15));
        x -= Nm(20);
        assert_eq!(x, Nm(-5));
    }

    #[test]
    fn conversions() {
        assert!((Nm(48).to_meters() - 48e-9).abs() < 1e-22);
        assert!((Nm(1500).to_microns() - 1.5).abs() < 1e-12);
        assert_eq!(Nm::from_f64_rounded(23.4), Nm(23));
        assert_eq!(Nm::from_f64_rounded(23.6), Nm(24));
        assert_eq!(Nm::from_f64_rounded(-1.5), Nm(-2));
        assert_eq!(i64::from(Nm(9)), 9);
        assert_eq!(Nm::from(9i64), Nm(9));
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(Nm(1) < Nm(2));
        assert_eq!(Nm(3).min(Nm(5)), Nm(3));
        assert_eq!(Nm(3).max(Nm(5)), Nm(5));
        assert_eq!(Nm(-3).abs(), Nm(3));
        assert!(Nm(-1).is_negative());
        assert!(!Nm(0).is_negative());
    }

    #[test]
    fn sum_and_display() {
        let total: Nm = [Nm(1), Nm(2), Nm(3)].into_iter().sum();
        assert_eq!(total, Nm(6));
        assert_eq!(Nm(48).to_string(), "48nm");
    }
}
