//! Property-based tests of the geometric primitives.

use proptest::prelude::*;

use mpvar_geometry::{gds, Cell, Instance, Layer, Layout, Nm, Orientation, Point, Rect, Shape};

fn arb_point() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(Nm(x), Nm(y)))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -10_000i64..10_000,
        -10_000i64..10_000,
        1i64..5_000,
        1i64..5_000,
    )
        .prop_map(|(x, y, w, h)| {
            Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h)).expect("positive extent")
        })
}

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(Orientation::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Orientation composition is closed and associative; inverses work.
    #[test]
    fn orientation_group_laws(
        a in arb_orientation(),
        b in arb_orientation(),
        c in arb_orientation(),
        p in arb_point(),
    ) {
        // Associativity through application.
        let left = c.apply(b.apply(a.apply(p)));
        let right = a.then(b).then(c).apply(p);
        prop_assert_eq!(left, right);
        // Inverse.
        prop_assert_eq!(a.inverse().apply(a.apply(p)), p);
        // Application preserves L2 norm.
        let origin = Point::ORIGIN;
        prop_assert_eq!(p.distance_sq(origin), a.apply(p).distance_sq(origin));
    }

    /// Rect intersection is commutative, contained in both, and the
    /// union contains both operands.
    #[test]
    fn rect_lattice_laws(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area_nm2() <= a.area_nm2());
            prop_assert!(i.area_nm2() <= b.area_nm2());
            prop_assert!(a.contains(i.ll()) && a.contains(i.ur()));
            prop_assert!(b.contains(i.ll()) && b.contains(i.ur()));
        }
        let u = a.union(&b);
        prop_assert!(u.area_nm2() >= a.area_nm2().max(b.area_nm2()));
        prop_assert!(u.contains(a.ll()) && u.contains(b.ur()));
    }

    /// Translation preserves area and relative containment.
    #[test]
    fn rect_translation_invariants(r in arb_rect(), d in arb_point()) {
        let t = r.translate(d);
        prop_assert_eq!(t.area_nm2(), r.area_nm2());
        prop_assert_eq!(t.width(), r.width());
        prop_assert_eq!(t.height(), r.height());
    }

    /// Orientation transforms of rects preserve area.
    #[test]
    fn rect_orientation_preserves_area(r in arb_rect(), o in arb_orientation()) {
        prop_assert_eq!(o.apply_rect(&r).area_nm2(), r.area_nm2());
    }

    /// Flattening an instance equals transforming the flattened child.
    #[test]
    fn flatten_commutes_with_placement(
        r in arb_rect(),
        o in arb_orientation(),
        d in arb_point(),
    ) {
        let mut leaf = Cell::new("leaf");
        leaf.add_shape(Shape::rect(Layer::metal(1), r));
        let mut top = Cell::new("top");
        top.add_instance(Instance::new("leaf", d).with_orientation(o));
        let mut layout = Layout::new();
        layout.add_cell(leaf).expect("fresh name");
        layout.add_cell(top).expect("fresh name");
        let flat = layout.flatten("top").expect("flattens");
        prop_assert_eq!(flat.len(), 1);
        let expected = o.apply_rect(&r).translate(d);
        prop_assert_eq!(flat[0].bbox(), expected);
    }

    /// TGDS round-trips arbitrary single-cell layouts.
    #[test]
    fn tgds_roundtrip(rects in prop::collection::vec(arb_rect(), 1..20)) {
        let mut cell = Cell::new("c");
        for (i, r) in rects.iter().enumerate() {
            let mut s = Shape::rect(Layer::metal(1 + (i % 3) as u8), *r);
            if i % 2 == 0 {
                s = s.with_net(format!("net{i}"));
            }
            cell.add_shape(s);
        }
        let layout: Layout = [cell].into_iter().collect();
        let text = gds::to_text(&layout);
        let back = gds::from_text(&text).expect("parses back");
        prop_assert_eq!(layout, back);
    }
}
