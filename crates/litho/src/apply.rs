//! Applying a variation draw to drawn geometry: the patterning physics.

use mpvar_geometry::{Track, TrackStack};

use crate::decompose::{le3_mask_of, sadp_role_of, SadpRole};
use crate::draw::Draw;
use crate::error::LithoError;
use crate::perturbed::{PerturbedStack, PerturbedTrack};

/// Prints the drawn `stack` under variation `draw`, producing the
/// post-lithography geometry.
///
/// Per-option behaviour (paper §II, Fig. 2):
///
/// * **LE3** — track `i` belongs to mask `i mod 3`; its width grows by
///   that mask's CD error and its centerline shifts by the mask's
///   overlay error.
/// * **EUV** — every width grows by the single mask's CD error; centers
///   are unmoved.
/// * **SADP** — even-index tracks are mandrels: width grows by the core
///   CD error around a fixed center. Spacers of thickness `drawn gap +
///   spacer error` grow on every mandrel sidewall; odd-index tracks fill
///   the space left between spacers, so each of their gaps equals the
///   spacer thickness exactly and their width absorbs both errors with
///   opposite sign. A spacer-defined track at the top (or bottom) of the
///   stack uses a periodic-image mandrel — the mandrel below reflected
///   about the track center — matching an array that continues beyond
///   the analysed window.
///
/// # Errors
///
/// * [`LithoError::NonFiniteDraw`] for NaN/inf parameters;
/// * [`LithoError::CollapsedLine`] when variation drives a width to zero;
/// * [`LithoError::ShortedLines`] when adjacent printed lines touch;
/// * [`LithoError::UndecomposableStack`] for SADP on an empty stack.
pub fn apply_draw(stack: &TrackStack, draw: &Draw) -> Result<PerturbedStack, LithoError> {
    draw.validate()?;
    match draw {
        Draw::Le3(d) => {
            let tracks = stack
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mask = le3_mask_of(i);
                    let width = t.width().to_f64() + d.cd_nm[mask.index()];
                    let center = t.y_center().to_f64() + d.overlay_nm[mask.index()];
                    PerturbedTrack::new(
                        t.net(),
                        center - width / 2.0,
                        center + width / 2.0,
                        t.length().to_f64(),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            PerturbedStack::new(tracks)
        }
        Draw::Euv(d) => {
            let tracks = stack
                .iter()
                .map(|t| {
                    let width = t.width().to_f64() + d.cd_nm;
                    let center = t.y_center().to_f64();
                    PerturbedTrack::new(
                        t.net(),
                        center - width / 2.0,
                        center + width / 2.0,
                        t.length().to_f64(),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            PerturbedStack::new(tracks)
        }
        Draw::Sadp(d) => apply_sadp(stack, d.core_cd_nm, d.spacer_nm),
        Draw::Le2(d) => {
            // Two-mask coloring: track i is on mask i mod 2; only mask B
            // carries an overlay error (A is the reference).
            let tracks = stack
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mask = i % 2;
                    let width = t.width().to_f64() + d.cd_nm[mask];
                    let shift = if mask == 1 { d.overlay_nm } else { 0.0 };
                    let center = t.y_center().to_f64() + shift;
                    PerturbedTrack::new(
                        t.net(),
                        center - width / 2.0,
                        center + width / 2.0,
                        t.length().to_f64(),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            PerturbedStack::new(tracks)
        }
    }
}

/// Printed edges `(bottom, top)` of the mandrel at index `i` (center
/// fixed, width grown by the core CD error).
fn mandrel_edges(t: &Track, core_cd_nm: f64) -> (f64, f64) {
    let width = t.width().to_f64() + core_cd_nm;
    let center = t.y_center().to_f64();
    (center - width / 2.0, center + width / 2.0)
}

fn apply_sadp(
    stack: &TrackStack,
    core_cd_nm: f64,
    spacer_nm: f64,
) -> Result<PerturbedStack, LithoError> {
    if stack.is_empty() {
        return Err(LithoError::UndecomposableStack {
            reason: "empty stack".into(),
        });
    }
    let tracks = stack.tracks();
    let mut printed = Vec::with_capacity(tracks.len());

    for (i, t) in tracks.iter().enumerate() {
        match sadp_role_of(i) {
            SadpRole::MandrelDefined => {
                let (bottom, top) = mandrel_edges(t, core_cd_nm);
                printed.push(PerturbedTrack::new(
                    t.net(),
                    bottom,
                    top,
                    t.length().to_f64(),
                )?);
            }
            SadpRole::SpacerDefined => {
                // Edge from the mandrel below (always exists: index 0 is
                // a mandrel).
                let below = &tracks[i - 1];
                let spacer_below = below.spacing_to(t).to_f64() + spacer_nm;
                let (_, below_top) = mandrel_edges(below, core_cd_nm);
                let bottom = below_top + spacer_below;

                // Edge from the mandrel above, real or periodic image.
                let top = if let Some(above) = tracks.get(i + 1) {
                    let spacer_above = t.spacing_to(above).to_f64() + spacer_nm;
                    let (above_bottom, _) = mandrel_edges(above, core_cd_nm);
                    above_bottom - spacer_above
                } else {
                    // Periodic image: reflect the mandrel below about this
                    // track's drawn center.
                    let t_center = t.y_center().to_f64();
                    let below_center = below.y_center().to_f64();
                    let image_center = 2.0 * t_center - below_center;
                    let image_width = below.width().to_f64() + core_cd_nm;
                    let image_bottom = image_center - image_width / 2.0;
                    let spacer_above = t.spacing_to(below).to_f64() + spacer_nm;
                    image_bottom - spacer_above
                };

                printed.push(PerturbedTrack::new(
                    t.net(),
                    bottom,
                    top,
                    t.length().to_f64(),
                )?);
            }
        }
    }
    PerturbedStack::new(printed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw::{EuvDraw, Le3Draw, SadpDraw};
    use mpvar_geometry::Nm;

    /// The paper's SRAM metal1 stack for one cell plus the next cell's
    /// first rail: VSS(24) BL(26) VDD(24) BLB(26) VSS(24) at 48nm pitch.
    fn sram_stack() -> TrackStack {
        TrackStack::new(vec![
            Track::new("VSS", Nm(0), Nm(24), Nm(0), Nm(1000)).unwrap(),
            Track::new("BL", Nm(48), Nm(26), Nm(0), Nm(1000)).unwrap(),
            Track::new("VDD", Nm(96), Nm(24), Nm(0), Nm(1000)).unwrap(),
            Track::new("BLB", Nm(144), Nm(26), Nm(0), Nm(1000)).unwrap(),
            Track::new("VSS2", Nm(192), Nm(24), Nm(0), Nm(1000)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn nominal_draw_reproduces_drawn_geometry() {
        let stack = sram_stack();
        for option in mpvar_tech::PatterningOption::ALL {
            let printed = apply_draw(&stack, &Draw::nominal(option)).unwrap();
            for (drawn, p) in stack.iter().zip(printed.iter()) {
                assert!(
                    (p.width_nm() - drawn.width().to_f64()).abs() < 1e-9,
                    "{option}: width of {}",
                    drawn.net()
                );
                assert!(
                    (p.center_nm() - drawn.y_center().to_f64()).abs() < 1e-9,
                    "{option}: center of {}",
                    drawn.net()
                );
            }
        }
    }

    #[test]
    fn euv_cd_widens_all_lines_and_shrinks_gaps() {
        let stack = sram_stack();
        let printed = apply_draw(&stack, &Draw::Euv(EuvDraw { cd_nm: 3.0 })).unwrap();
        for (i, t) in stack.iter().enumerate() {
            assert!((printed.track(i).width_nm() - t.width().to_f64() - 3.0).abs() < 1e-9);
        }
        // Nominal BL gaps are 23nm; CD +3 shrinks each by 3 (1.5 per edge).
        let bl = printed.index_of_net("BL").unwrap();
        assert!((printed.gap_below_nm(bl).unwrap() - 20.0).abs() < 1e-9);
        assert!((printed.gap_above_nm(bl).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn le3_worst_case_squeezes_bitline() {
        // BL is at index 1 (mask B). The paper's worst case shifts its
        // neighbours toward it with OL and widens everything with CD.
        // Neighbours of BL: VSS (A, below), VDD (C, above). Shift B? BL
        // itself is on B. Worst for BL's gaps: move BL up toward VDD
        // (ol_b +) while VDD moves down (ol_c -)... Here we directly
        // check geometry arithmetic, not the corner search.
        let stack = sram_stack();
        let d = Le3Draw {
            cd_nm: [3.0, 3.0, 3.0],
            overlay_nm: [0.0, 4.0, -4.0],
        };
        let printed = apply_draw(&stack, &Draw::Le3(d)).unwrap();
        let bl = printed.index_of_net("BL").unwrap();
        // Gap below: drawn 23, minus CD (1.5+1.5), plus BL's own +4
        // upward shift away from VSS.
        assert!((printed.gap_below_nm(bl).unwrap() - (23.0 - 3.0 + 4.0)).abs() < 1e-9);
        // Gap above: drawn 23, minus CD 3, minus the 8nm relative
        // approach (BL up 4, VDD down 4).
        assert!((printed.gap_above_nm(bl).unwrap() - (23.0 - 3.0 - 8.0)).abs() < 1e-9);
    }

    #[test]
    fn le3_same_mask_tracks_move_together() {
        let stack = sram_stack();
        let d = Le3Draw {
            cd_nm: [0.0; 3],
            overlay_nm: [2.0, 0.0, 0.0],
        };
        let printed = apply_draw(&stack, &Draw::Le3(d)).unwrap();
        // Tracks 0 and 3 are both mask A: both shift by +2.
        assert!((printed.track(0).center_nm() - 2.0).abs() < 1e-9);
        assert!((printed.track(3).center_nm() - 146.0).abs() < 1e-9);
        // Track 1 (mask B) unmoved.
        assert!((printed.track(1).center_nm() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn sadp_gaps_equal_spacer_thickness() {
        let stack = sram_stack();
        let d = SadpDraw {
            core_cd_nm: -3.0,
            spacer_nm: -0.5,
        };
        let printed = apply_draw(&stack, &Draw::Sadp(d)).unwrap();
        let bl = printed.index_of_net("BL").unwrap();
        // Every gap adjacent to a spacer-defined line is exactly
        // drawn_gap + spacer error = 23 - 0.5 = 22.5: self-alignment.
        assert!((printed.gap_below_nm(bl).unwrap() - 22.5).abs() < 1e-9);
        assert!((printed.gap_above_nm(bl).unwrap() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn sadp_spacer_defined_width_anticorrelates() {
        let stack = sram_stack();
        // Core shrink and spacer shrink both WIDEN the spacer-defined BL:
        // width = 2*pitch - mandrel - 2*spacer.
        let d = SadpDraw {
            core_cd_nm: -3.0,
            spacer_nm: -0.5,
        };
        let printed = apply_draw(&stack, &Draw::Sadp(d)).unwrap();
        let bl = printed.index_of_net("BL").unwrap();
        // Mandrel widths 24-3=21 (±1.5 per edge); spacers 22.5.
        // BL spans from VSS top + 22.5 to VDD bottom - 22.5:
        // VSS top = 12 - 1.5 = 10.5; VDD bottom = 84 + 1.5 = 85.5.
        // Width = (85.5 - 22.5) - (10.5 + 22.5) = 63 - 33 = 30.
        assert!(
            (printed.track(bl).width_nm() - 30.0).abs() < 1e-9,
            "width {}",
            printed.track(bl).width_nm()
        );
        // Rails got narrower while BL got wider: anti-correlation.
        let vss = printed.index_of_net("VSS").unwrap();
        assert!(printed.track(vss).width_nm() < 24.0);
        assert!(printed.track(bl).width_nm() > 26.0);
    }

    #[test]
    fn sadp_periodic_image_matches_interior() {
        // In a long tiled stack, the last BLB (no mandrel above) must get
        // the same width as an interior BLB under the same draw.
        let base = sram_stack();
        let d = Draw::Sadp(SadpDraw {
            core_cd_nm: 2.0,
            spacer_nm: 0.8,
        });
        let printed = apply_draw(&base, &d).unwrap();
        // Stack without the trailing VSS2: BLB becomes the boundary track.
        let truncated = TrackStack::new(base.tracks()[..4].to_vec()).unwrap();
        let printed_trunc = apply_draw(&truncated, &d).unwrap();
        let interior = printed.index_of_net("BLB").unwrap();
        let boundary = printed_trunc.index_of_net("BLB").unwrap();
        assert!(
            (printed.track(interior).width_nm() - printed_trunc.track(boundary).width_nm()).abs()
                < 1e-9
        );
    }

    #[test]
    fn le2_overlay_moves_gaps_antisymmetrically() {
        // With two masks, BOTH neighbours of a mask-B line are mask A:
        // shifting B closes one gap exactly as much as it opens the
        // other — the defining LELE behaviour.
        use crate::draw::Le2Draw;
        let stack = sram_stack();
        let printed = apply_draw(
            &stack,
            &Draw::Le2(Le2Draw {
                cd_nm: [0.0, 0.0],
                overlay_nm: 5.0,
            }),
        )
        .unwrap();
        let bl = printed.index_of_net("BL").unwrap(); // index 1: mask B
        assert!((printed.gap_below_nm(bl).unwrap() - 28.0).abs() < 1e-9);
        assert!((printed.gap_above_nm(bl).unwrap() - 18.0).abs() < 1e-9);
        // Widths untouched by pure overlay.
        for (drawn, p) in stack.iter().zip(printed.iter()) {
            assert!((p.width_nm() - drawn.width().to_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn le2_per_mask_cd() {
        use crate::draw::Le2Draw;
        let stack = sram_stack();
        let printed = apply_draw(
            &stack,
            &Draw::Le2(Le2Draw {
                cd_nm: [2.0, -1.0],
                overlay_nm: 0.0,
            }),
        )
        .unwrap();
        // Even indices (VSS, VDD, VSS2) on mask A (+2), odd (BL, BLB) on
        // mask B (-1).
        assert!((printed.track(0).width_nm() - 26.0).abs() < 1e-9);
        assert!((printed.track(1).width_nm() - 25.0).abs() < 1e-9);
        assert!((printed.track(2).width_nm() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn collapsing_draw_is_an_error() {
        let stack = sram_stack();
        let r = apply_draw(&stack, &Draw::Euv(EuvDraw { cd_nm: -26.0 }));
        assert!(matches!(r, Err(LithoError::CollapsedLine { .. })));
    }

    #[test]
    fn shorting_draw_is_an_error() {
        let stack = sram_stack();
        let d = Le3Draw {
            cd_nm: [0.0; 3],
            overlay_nm: [0.0, 24.0, 0.0], // BL slams into VDD
        };
        assert!(matches!(
            apply_draw(&stack, &Draw::Le3(d)),
            Err(LithoError::ShortedLines { .. })
        ));
    }

    #[test]
    fn non_finite_draw_rejected() {
        let stack = sram_stack();
        let d = Draw::Euv(EuvDraw { cd_nm: f64::NAN });
        assert!(matches!(
            apply_draw(&stack, &d),
            Err(LithoError::NonFiniteDraw { .. })
        ));
    }

    #[test]
    fn sadp_empty_stack_rejected() {
        let empty = TrackStack::new(vec![]).unwrap();
        assert!(matches!(
            apply_draw(&empty, &Draw::Sadp(SadpDraw::default())),
            Err(LithoError::UndecomposableStack { .. })
        ));
        // LE3/EUV on empty stacks are fine (empty result).
        assert!(apply_draw(&empty, &Draw::nominal(mpvar_tech::PatterningOption::Euv)).is_ok());
    }
}
