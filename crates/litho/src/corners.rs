//! Worst-case corner enumeration (paper §II.B).
//!
//! "Using all combinations of CD and OL errors as input parameters, we
//! identified the worst case scenario for each option with respect to
//! C_bl increase." — this module produces exactly those combinations:
//! every active variation parameter of an option at its −3σ / +3σ
//! extreme (optionally also 0), with mask A's overlay pinned to zero
//! (B and C are aligned to A).

use mpvar_tech::{PatterningOption, VariationBudget};

use crate::draw::{Draw, EuvDraw, Le2Draw, Le3Draw, SadpDraw};

/// Corner-enumeration configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CornerSpec {
    /// When `true`, each parameter takes values {−3σ, 0, +3σ}; when
    /// `false` only the ±3σ extremes (the paper's search space).
    pub include_zero: bool,
}

fn levels(three_sigma: f64, spec: CornerSpec) -> Vec<f64> {
    if three_sigma == 0.0 {
        vec![0.0]
    } else if spec.include_zero {
        vec![-three_sigma, 0.0, three_sigma]
    } else {
        vec![-three_sigma, three_sigma]
    }
}

/// Enumerates every corner draw of `option` under `budget`.
///
/// The count is `L^p` with `L` the per-parameter level count and `p` the
/// number of active parameters (LE3: 3 CDs + 2 overlays; SADP: core CD +
/// spacer; EUV: 1 CD). Parameters with a zero budget contribute a single
/// zero level.
///
/// # Example
///
/// ```
/// use mpvar_litho::{corner_draws, CornerSpec};
/// use mpvar_tech::{PatterningOption, VariationBudget};
///
/// let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0)?;
/// let corners = corner_draws(PatterningOption::Le3, &budget, CornerSpec::default());
/// assert_eq!(corners.len(), 2usize.pow(5)); // 3 CD + 2 OL at +/-3sigma
/// # Ok::<(), mpvar_tech::TechError>(())
/// ```
pub fn corner_draws(
    option: PatterningOption,
    budget: &VariationBudget,
    spec: CornerSpec,
) -> Vec<Draw> {
    match option {
        PatterningOption::Le3 => {
            let cd = levels(budget.cd_three_sigma_nm(), spec);
            let ol = levels(budget.overlay_three_sigma_nm(), spec);
            let mut out = Vec::new();
            for &ca in &cd {
                for &cb in &cd {
                    for &cc in &cd {
                        for &ob in &ol {
                            for &oc in &ol {
                                out.push(Draw::Le3(Le3Draw {
                                    cd_nm: [ca, cb, cc],
                                    overlay_nm: [0.0, ob, oc],
                                }));
                            }
                        }
                    }
                }
            }
            out
        }
        PatterningOption::Sadp => {
            let cd = levels(budget.cd_three_sigma_nm(), spec);
            let sp = levels(budget.spacer_three_sigma_nm(), spec);
            let mut out = Vec::new();
            for &c in &cd {
                for &s in &sp {
                    out.push(Draw::Sadp(SadpDraw {
                        core_cd_nm: c,
                        spacer_nm: s,
                    }));
                }
            }
            out
        }
        PatterningOption::Euv => levels(budget.cd_three_sigma_nm(), spec)
            .into_iter()
            .map(|c| Draw::Euv(EuvDraw { cd_nm: c }))
            .collect(),
        PatterningOption::Le2 => {
            let cd = levels(budget.cd_three_sigma_nm(), spec);
            let ol = levels(budget.overlay_three_sigma_nm(), spec);
            let mut out = Vec::new();
            for &ca in &cd {
                for &cb in &cd {
                    for &o in &ol {
                        out.push(Draw::Le2(Le2Draw {
                            cd_nm: [ca, cb],
                            overlay_nm: o,
                        }));
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> (VariationBudget, VariationBudget, VariationBudget) {
        (
            VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap(),
            VariationBudget::paper_default(PatterningOption::Sadp, 8.0).unwrap(),
            VariationBudget::paper_default(PatterningOption::Euv, 8.0).unwrap(),
        )
    }

    #[test]
    fn corner_counts() {
        let (le3, sadp, euv) = budgets();
        let spec = CornerSpec::default();
        assert_eq!(corner_draws(PatterningOption::Le3, &le3, spec).len(), 32);
        assert_eq!(corner_draws(PatterningOption::Sadp, &sadp, spec).len(), 4);
        assert_eq!(corner_draws(PatterningOption::Euv, &euv, spec).len(), 2);

        let spec0 = CornerSpec { include_zero: true };
        assert_eq!(corner_draws(PatterningOption::Le3, &le3, spec0).len(), 243);
        assert_eq!(corner_draws(PatterningOption::Sadp, &sadp, spec0).len(), 9);
        assert_eq!(corner_draws(PatterningOption::Euv, &euv, spec0).len(), 3);
    }

    #[test]
    fn le3_mask_a_overlay_always_zero() {
        let (le3, _, _) = budgets();
        for d in corner_draws(PatterningOption::Le3, &le3, CornerSpec::default()) {
            match d {
                Draw::Le3(d) => assert_eq!(d.overlay_nm[0], 0.0),
                _ => panic!("wrong option"),
            }
        }
    }

    #[test]
    fn zero_budget_collapses_axis() {
        // EUV has no overlay; the budget carries 0 -> only CD varies.
        let b = VariationBudget::new(3.0, 0.0, 0.0).unwrap();
        let draws = corner_draws(PatterningOption::Euv, &b, CornerSpec::default());
        assert_eq!(draws.len(), 2);
        // A fully-zero budget gives exactly the nominal draw.
        let z = VariationBudget::new(0.0, 0.0, 0.0).unwrap();
        let draws = corner_draws(PatterningOption::Le3, &z, CornerSpec::default());
        assert_eq!(draws.len(), 1);
        assert_eq!(draws[0], Draw::nominal(PatterningOption::Le3));
    }

    #[test]
    fn corners_take_extreme_values() {
        let (le3, _, _) = budgets();
        let draws = corner_draws(PatterningOption::Le3, &le3, CornerSpec::default());
        // Every CD is +/-3; every B/C overlay is +/-8.
        for d in &draws {
            if let Draw::Le3(d) = d {
                for cd in d.cd_nm {
                    assert_eq!(cd.abs(), 3.0);
                }
                assert_eq!(d.overlay_nm[1].abs(), 8.0);
                assert_eq!(d.overlay_nm[2].abs(), 8.0);
            }
        }
        // All combinations are distinct.
        let mut keys: Vec<String> = draws.iter().map(|d| format!("{d:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 32);
    }
}
