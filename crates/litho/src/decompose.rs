//! Mask decomposition: assigning drawn tracks to patterning steps.

use std::fmt;

/// One of the three LE3 exposure masks.
///
/// The paper (Fig. 2) colors the parallel metal1 tracks across three
/// litho-etch steps; for a regular unidirectional stack the canonical
/// assignment cycles A, B, C bottom-to-top ([`le3_mask_of`]). Masks B and
/// C are aligned to A, so their overlay errors are independent and A's
/// overlay is the reference (zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Le3Mask {
    /// Reference mask (zero overlay by definition).
    A,
    /// Second mask, aligned to A.
    B,
    /// Third mask, aligned to A.
    C,
}

impl Le3Mask {
    /// All masks in exposure order.
    pub const ALL: [Le3Mask; 3] = [Le3Mask::A, Le3Mask::B, Le3Mask::C];

    /// Index 0/1/2 for parameter arrays.
    pub fn index(self) -> usize {
        match self {
            Le3Mask::A => 0,
            Le3Mask::B => 1,
            Le3Mask::C => 2,
        }
    }
}

impl fmt::Display for Le3Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Le3Mask::A => write!(f, "A"),
            Le3Mask::B => write!(f, "B"),
            Le3Mask::C => write!(f, "C"),
        }
    }
}

/// The LE3 mask of the track at stack index `i` (round-robin coloring).
///
/// # Example
///
/// ```
/// use mpvar_litho::{le3_mask_of, Le3Mask};
///
/// assert_eq!(le3_mask_of(0), Le3Mask::A);
/// assert_eq!(le3_mask_of(1), Le3Mask::B);
/// assert_eq!(le3_mask_of(2), Le3Mask::C);
/// assert_eq!(le3_mask_of(3), Le3Mask::A);
/// ```
pub fn le3_mask_of(i: usize) -> Le3Mask {
    Le3Mask::ALL[i % 3]
}

/// A track's role in the SADP flow.
///
/// With a mandrel pitch of twice the track pitch, alternate tracks are
/// printed by the core (mandrel) mask and the remaining tracks are
/// defined by the space left between spacers grown on adjacent mandrels.
/// The paper's design puts the **bit lines on spacer-defined tracks**
/// ("spacer-defined bit lines for SADP", §II.A), which
/// [`sadp_role_of`] reproduces for the `[VSS, BL, VDD, BLB]` stack:
/// even indices are mandrels (rails), odd indices are spacer-defined
/// (bit lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SadpRole {
    /// Printed directly by the core mask; carries the core CD error.
    MandrelDefined,
    /// Defined by the gap between spacers; width anti-correlates with
    /// core CD and spacer thickness.
    SpacerDefined,
}

impl fmt::Display for SadpRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SadpRole::MandrelDefined => write!(f, "mandrel"),
            SadpRole::SpacerDefined => write!(f, "spacer"),
        }
    }
}

/// The SADP role of the track at stack index `i` (even = mandrel).
///
/// # Example
///
/// ```
/// use mpvar_litho::{sadp_role_of, SadpRole};
///
/// assert_eq!(sadp_role_of(0), SadpRole::MandrelDefined); // VSS rail
/// assert_eq!(sadp_role_of(1), SadpRole::SpacerDefined);  // BL
/// ```
pub fn sadp_role_of(i: usize) -> SadpRole {
    if i.is_multiple_of(2) {
        SadpRole::MandrelDefined
    } else {
        SadpRole::SpacerDefined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le3_coloring_cycles() {
        let colors: Vec<Le3Mask> = (0..9).map(le3_mask_of).collect();
        assert_eq!(colors[0], Le3Mask::A);
        assert_eq!(colors[4], Le3Mask::B);
        assert_eq!(colors[8], Le3Mask::C);
        // No two adjacent tracks share a mask.
        for w in colors.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn le3_mask_indices() {
        for (i, m) in Le3Mask::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn sadp_alternation() {
        for i in 0..8 {
            let role = sadp_role_of(i);
            if i % 2 == 0 {
                assert_eq!(role, SadpRole::MandrelDefined);
            } else {
                assert_eq!(role, SadpRole::SpacerDefined);
            }
        }
    }

    #[test]
    fn bitlines_are_spacer_defined_in_sram_stack() {
        // Stack order VSS, BL, VDD, BLB repeating: BL at 1, BLB at 3.
        assert_eq!(sadp_role_of(1), SadpRole::SpacerDefined);
        assert_eq!(sadp_role_of(3), SadpRole::SpacerDefined);
        assert_eq!(sadp_role_of(0), SadpRole::MandrelDefined);
        assert_eq!(sadp_role_of(2), SadpRole::MandrelDefined);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Le3Mask::B.to_string(), "B");
        assert_eq!(SadpRole::SpacerDefined.to_string(), "spacer");
    }
}
