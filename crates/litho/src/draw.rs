//! Process-variation draws: one sampled (or corner) realization of the
//! variation parameters of a patterning option.

use mpvar_tech::PatterningOption;

use crate::error::LithoError;

/// One realization of LE3 variation.
///
/// `cd_nm[m]` is mask `m`'s CD error (added to every linewidth on that
/// mask); `overlay_nm[m]` is the mask's vertical overlay shift. Mask A is
/// the alignment reference, so `overlay_nm[0]` is 0 in paper-conform
/// draws (the type does not force it, enabling sensitivity studies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Le3Draw {
    /// CD error per mask (A, B, C), nm.
    pub cd_nm: [f64; 3],
    /// Overlay shift per mask (A, B, C), nm; positive = shifted up.
    pub overlay_nm: [f64; 3],
}

/// One realization of SADP variation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SadpDraw {
    /// Core (mandrel) mask CD error, nm.
    pub core_cd_nm: f64,
    /// Spacer thickness error, nm (deposition-controlled, common to all
    /// spacers on the wafer).
    pub spacer_nm: f64,
}

/// One realization of LELE (double litho-etch) variation — an `mpvar`
/// extension beyond the paper's options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Le2Draw {
    /// CD error per mask (A, B), nm.
    pub cd_nm: [f64; 2],
    /// Overlay shift of mask B relative to A, nm; positive = up.
    pub overlay_nm: f64,
}

/// One realization of single-patterning EUV variation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EuvDraw {
    /// Mask CD error, nm (common to all lines on the single mask).
    pub cd_nm: f64,
}

/// A variation draw for any patterning option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Draw {
    /// LE3 realization.
    Le3(Le3Draw),
    /// SADP realization.
    Sadp(SadpDraw),
    /// EUV realization.
    Euv(EuvDraw),
    /// LELE realization (extension).
    Le2(Le2Draw),
}

impl Draw {
    /// The patterning option this draw belongs to.
    pub fn option(&self) -> PatterningOption {
        match self {
            Draw::Le3(_) => PatterningOption::Le3,
            Draw::Sadp(_) => PatterningOption::Sadp,
            Draw::Euv(_) => PatterningOption::Euv,
            Draw::Le2(_) => PatterningOption::Le2,
        }
    }

    /// The nominal (all-zero) draw for `option`.
    pub fn nominal(option: PatterningOption) -> Draw {
        match option {
            PatterningOption::Le3 => Draw::Le3(Le3Draw::default()),
            PatterningOption::Sadp => Draw::Sadp(SadpDraw::default()),
            PatterningOption::Euv => Draw::Euv(EuvDraw::default()),
            PatterningOption::Le2 => Draw::Le2(Le2Draw::default()),
        }
    }

    /// All scalar parameters of the draw, for diagnostics and tests.
    pub fn parameters(&self) -> Vec<(&'static str, f64)> {
        match self {
            Draw::Le3(d) => vec![
                ("cd_a", d.cd_nm[0]),
                ("cd_b", d.cd_nm[1]),
                ("cd_c", d.cd_nm[2]),
                ("ol_a", d.overlay_nm[0]),
                ("ol_b", d.overlay_nm[1]),
                ("ol_c", d.overlay_nm[2]),
            ],
            Draw::Sadp(d) => vec![("cd_core", d.core_cd_nm), ("spacer", d.spacer_nm)],
            Draw::Euv(d) => vec![("cd", d.cd_nm)],
            Draw::Le2(d) => vec![
                ("cd_a", d.cd_nm[0]),
                ("cd_b", d.cd_nm[1]),
                ("ol_b", d.overlay_nm),
            ],
        }
    }

    /// Sets one named parameter (names as returned by
    /// [`Draw::parameters`]), returning whether the name matched. Used
    /// by sensitivity sweeps that perturb one axis at a time.
    pub fn set_parameter(&mut self, name: &str, value: f64) -> bool {
        match self {
            Draw::Le3(d) => match name {
                "cd_a" => d.cd_nm[0] = value,
                "cd_b" => d.cd_nm[1] = value,
                "cd_c" => d.cd_nm[2] = value,
                "ol_a" => d.overlay_nm[0] = value,
                "ol_b" => d.overlay_nm[1] = value,
                "ol_c" => d.overlay_nm[2] = value,
                _ => return false,
            },
            Draw::Sadp(d) => match name {
                "cd_core" => d.core_cd_nm = value,
                "spacer" => d.spacer_nm = value,
                _ => return false,
            },
            Draw::Euv(d) => match name {
                "cd" => d.cd_nm = value,
                _ => return false,
            },
            Draw::Le2(d) => match name {
                "cd_a" => d.cd_nm[0] = value,
                "cd_b" => d.cd_nm[1] = value,
                "ol_b" => d.overlay_nm = value,
                _ => return false,
            },
        }
        true
    }

    /// Validates that every parameter is finite.
    ///
    /// # Errors
    ///
    /// [`LithoError::NonFiniteDraw`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), LithoError> {
        for (name, value) in self.parameters() {
            if !value.is_finite() {
                return Err(LithoError::NonFiniteDraw { name, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_draws_are_zero() {
        for option in PatterningOption::ALL_WITH_EXTENSIONS {
            let d = Draw::nominal(option);
            assert_eq!(d.option(), option);
            assert!(d.parameters().iter().all(|&(_, v)| v == 0.0));
            assert!(d.validate().is_ok());
        }
    }

    #[test]
    fn parameter_names_unique() {
        for option in PatterningOption::ALL_WITH_EXTENSIONS {
            let params = Draw::nominal(option).parameters();
            let mut names: Vec<&str> = params.iter().map(|&(n, _)| n).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), params.len());
        }
    }

    #[test]
    fn set_parameter_roundtrips_every_name() {
        for option in PatterningOption::ALL_WITH_EXTENSIONS {
            let mut d = Draw::nominal(option);
            for (name, _) in Draw::nominal(option).parameters() {
                assert!(d.set_parameter(name, 1.25), "{option}: {name}");
            }
            for (name, v) in d.parameters() {
                assert_eq!(v, 1.25, "{option}: {name}");
            }
            assert!(!d.set_parameter("bogus", 1.0));
        }
    }

    #[test]
    fn validate_catches_nan() {
        let d = Draw::Le3(Le3Draw {
            cd_nm: [0.0, f64::NAN, 0.0],
            overlay_nm: [0.0; 3],
        });
        assert!(matches!(
            d.validate(),
            Err(LithoError::NonFiniteDraw { name: "cd_b", .. })
        ));
        let d = Draw::Sadp(SadpDraw {
            core_cd_nm: 0.0,
            spacer_nm: f64::INFINITY,
        });
        assert!(d.validate().is_err());
    }
}
