//! Error type for the lithography crate.

use std::error::Error;
use std::fmt;

use mpvar_tech::PatterningOption;

/// Errors from patterning decomposition and variation application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LithoError {
    /// A draw of one patterning option was applied where another was
    /// required.
    DrawMismatch {
        /// The option the draw belongs to.
        got: PatterningOption,
        /// The option that was expected.
        expected: PatterningOption,
    },
    /// Printed geometry became physically impossible (a line of
    /// non-positive width after variation).
    CollapsedLine {
        /// Net of the collapsed line.
        net: String,
        /// Width after variation, nm.
        width_nm: f64,
    },
    /// Printed geometry shorted two lines (non-positive gap) and the
    /// caller asked for strict checking.
    ShortedLines {
        /// Lower net.
        lower: String,
        /// Upper net.
        upper: String,
        /// Gap after variation, nm.
        gap_nm: f64,
    },
    /// SADP needs an alternating mandrel/spacer stack; this stack cannot
    /// be decomposed (e.g. fewer than 2 tracks).
    UndecomposableStack {
        /// Human-readable reason.
        reason: String,
    },
    /// A variation parameter was non-finite.
    NonFiniteDraw {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::DrawMismatch { got, expected } => {
                write!(f, "draw is for `{got}` but `{expected}` was expected")
            }
            LithoError::CollapsedLine { net, width_nm } => {
                write!(f, "line `{net}` collapsed to {width_nm:.3}nm width")
            }
            LithoError::ShortedLines {
                lower,
                upper,
                gap_nm,
            } => write!(
                f,
                "lines `{lower}` and `{upper}` shorted (gap {gap_nm:.3}nm)"
            ),
            LithoError::UndecomposableStack { reason } => {
                write!(f, "stack cannot be decomposed: {reason}")
            }
            LithoError::NonFiniteDraw { name, value } => {
                write!(f, "draw parameter `{name}` is not finite: {value}")
            }
        }
    }
}

impl Error for LithoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LithoError::ShortedLines {
            lower: "VSS".into(),
            upper: "BL".into(),
            gap_nm: -0.5,
        };
        let s = e.to_string();
        assert!(s.contains("VSS") && s.contains("BL"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LithoError>();
    }
}
