//! Line-edge roughness (LER): stochastic width variation *along* a wire.
//!
//! The paper's variation model is per-mask/per-wafer (CD, overlay,
//! spacer); LER is the complementary, intrinsically stochastic component
//! — resist and etch noise make the printed width fluctuate along the
//! line with a finite correlation length. `mpvar` models the per-segment
//! width deviation as a stationary AR(1) process:
//!
//! ```text
//! delta[0] ~ N(0, sigma²)
//! delta[k] = rho * delta[k-1] + sqrt(1 - rho²) * N(0, sigma²)
//! ```
//!
//! where `rho = exp(-L_seg / L_corr)` links the segment pitch to the
//! physical correlation length. Because resistance goes as `1/w`, LER
//! *raises* the expected wire resistance (Jensen's inequality) on top of
//! adding spread — an effect the extension experiment quantifies.

use mpvar_stats::{Gaussian, RngStream, StatsError};

use crate::error::LithoError;

/// An AR(1) line-edge-roughness model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LerModel {
    sigma_nm: f64,
    correlation_length_nm: f64,
}

impl LerModel {
    /// Creates a model from the 1σ width deviation and the correlation
    /// length, both in nm. Typical 193i/EUV resist LER: σ of 0.5–1.5nm
    /// with 10–40nm correlation length.
    ///
    /// # Errors
    ///
    /// [`LithoError::NonFiniteDraw`] for non-finite or negative inputs.
    pub fn new(sigma_nm: f64, correlation_length_nm: f64) -> Result<Self, LithoError> {
        for (name, v) in [
            ("ler_sigma_nm", sigma_nm),
            ("ler_correlation_length_nm", correlation_length_nm),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(LithoError::NonFiniteDraw { name, value: v });
            }
        }
        Ok(Self {
            sigma_nm,
            correlation_length_nm,
        })
    }

    /// The 1σ width deviation, nm.
    pub fn sigma_nm(&self) -> f64 {
        self.sigma_nm
    }

    /// The correlation length, nm.
    pub fn correlation_length_nm(&self) -> f64 {
        self.correlation_length_nm
    }

    /// The AR(1) coefficient for segments of `segment_length_nm`.
    pub fn rho(&self, segment_length_nm: f64) -> f64 {
        if self.correlation_length_nm == 0.0 {
            0.0
        } else {
            (-segment_length_nm / self.correlation_length_nm).exp()
        }
    }

    /// Samples a width-deviation profile for `segments` segments of
    /// `segment_length_nm` each.
    ///
    /// # Errors
    ///
    /// Propagates sampler failures; returns all-zero for a zero-sigma
    /// model.
    pub fn sample_profile(
        &self,
        segments: usize,
        segment_length_nm: f64,
        rng: &mut RngStream,
    ) -> Result<Vec<f64>, StatsError> {
        if self.sigma_nm == 0.0 || segments == 0 {
            return Ok(vec![0.0; segments]);
        }
        let gauss = Gaussian::new(0.0, self.sigma_nm)?;
        let rho = self.rho(segment_length_nm);
        let innovation_scale = (1.0 - rho * rho).sqrt();
        let mut profile = Vec::with_capacity(segments);
        let mut prev = gauss.sample(rng);
        profile.push(prev);
        for _ in 1..segments {
            prev = rho * prev + innovation_scale * gauss.sample(rng);
            profile.push(prev);
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_stats::Summary;

    #[test]
    fn validation() {
        assert!(LerModel::new(-1.0, 20.0).is_err());
        assert!(LerModel::new(1.0, f64::NAN).is_err());
        assert!(LerModel::new(0.0, 0.0).is_ok());
        let m = LerModel::new(1.0, 20.0).unwrap();
        assert_eq!(m.sigma_nm(), 1.0);
        assert_eq!(m.correlation_length_nm(), 20.0);
    }

    #[test]
    fn profile_is_stationary() {
        let m = LerModel::new(1.2, 30.0).unwrap();
        let mut rng = RngStream::from_seed(3);
        let mut all = Summary::new();
        for _ in 0..200 {
            let p = m.sample_profile(100, 130.0, &mut rng).unwrap();
            all.extend(p.iter().copied());
        }
        assert!(all.mean().abs() < 0.02, "mean {}", all.mean());
        assert!((all.std_dev() - 1.2).abs() < 0.02, "std {}", all.std_dev());
    }

    #[test]
    fn correlation_follows_rho() {
        let m = LerModel::new(1.0, 130.0).unwrap(); // L_corr = one segment
        let expected_rho = m.rho(130.0);
        let mut rng = RngStream::from_seed(8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..500 {
            let p = m.sample_profile(50, 130.0, &mut rng).unwrap();
            for w in p.windows(2) {
                a.push(w[0]);
                b.push(w[1]);
            }
        }
        let r = mpvar_stats::pearson(&a, &b).unwrap();
        assert!(
            (r - expected_rho).abs() < 0.02,
            "measured {r} vs expected {expected_rho}"
        );
    }

    #[test]
    fn short_correlation_length_decorrelates() {
        let m = LerModel::new(1.0, 1.0).unwrap(); // much shorter than a segment
        assert!(m.rho(130.0) < 1e-10);
        let m0 = LerModel::new(1.0, 0.0).unwrap();
        assert_eq!(m0.rho(130.0), 0.0);
    }

    #[test]
    fn zero_sigma_gives_flat_profile() {
        let m = LerModel::new(0.0, 20.0).unwrap();
        let mut rng = RngStream::from_seed(1);
        let p = m.sample_profile(16, 130.0, &mut rng).unwrap();
        assert!(p.iter().all(|&d| d == 0.0));
        assert_eq!(p.len(), 16);
        assert!(m.sample_profile(0, 130.0, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let m = LerModel::new(0.8, 25.0).unwrap();
        let p1 = m
            .sample_profile(32, 130.0, &mut RngStream::from_seed(42))
            .unwrap();
        let p2 = m
            .sample_profile(32, 130.0, &mut RngStream::from_seed(42))
            .unwrap();
        assert_eq!(p1, p2);
    }
}
