//! Multiple-patterning lithography models: LE3, SADP, and EUV.
//!
//! This crate turns a *drawn* metal1 track stack (exact integer-nm
//! geometry from `mpvar-geometry`) plus a *process-variation draw* into
//! the *printed* geometry — `f64`-nm tracks whose widths, positions and
//! gaps reflect the patterning physics of each option (paper §II, Fig. 2):
//!
//! * **LE3 (LELELE)** — tracks are colored across three masks by
//!   `index mod 3`. Each mask carries one CD error (common to all its
//!   lines) and masks B/C carry overlay errors relative to A.
//! * **SADP** — alternate tracks are *mandrel-defined* (they get the core
//!   mask's CD error) and *spacer-defined* (their edges are set by
//!   spacers of thickness `nominal gap + spacer error` grown on the
//!   neighbouring mandrels). Gaps equal the spacer thickness exactly —
//!   the self-alignment that makes SADP variation-tolerant — and the
//!   spacer-defined width anti-correlates with both core CD and spacer
//!   thickness.
//! * **EUV** — a single mask; one CD error common to every line.
//!
//! [`corners`] enumerates worst-case ±3σ corner combinations (Table I);
//! [`sampling`] draws Gaussian Monte-Carlo samples (§III.B).
//!
//! # Example
//!
//! ```
//! use mpvar_geometry::{Nm, Track, TrackStack};
//! use mpvar_litho::prelude::*;
//!
//! let drawn = TrackStack::new(vec![
//!     Track::new("VSS", Nm(0),   Nm(24), Nm(0), Nm(1000))?,
//!     Track::new("BL",  Nm(48),  Nm(26), Nm(0), Nm(1000))?,
//!     Track::new("VDD", Nm(96),  Nm(24), Nm(0), Nm(1000))?,
//! ])?;
//! // EUV with every line printed 3nm wide of nominal.
//! let draw = Draw::Euv(EuvDraw { cd_nm: 3.0 });
//! let printed = apply_draw(&drawn, &draw)?;
//! assert!((printed.track(1).width_nm() - 29.0).abs() < 1e-9);
//! // All gaps shrank by the CD error.
//! assert!((printed.gap_below_nm(1).unwrap() - 20.0).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
pub mod corners;
pub mod decompose;
pub mod draw;
pub mod error;
pub mod ler;
pub mod perturbed;
pub mod sampling;

pub use apply::apply_draw;
pub use corners::{corner_draws, CornerSpec};
pub use decompose::{le3_mask_of, sadp_role_of, Le3Mask, SadpRole};
pub use draw::{Draw, EuvDraw, Le2Draw, Le3Draw, SadpDraw};
pub use error::LithoError;
pub use ler::LerModel;
pub use perturbed::{PerturbedStack, PerturbedTrack};
pub use sampling::{sample_draw, TRUNCATION_SIGMAS};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::apply::apply_draw;
    pub use crate::corners::{corner_draws, CornerSpec};
    pub use crate::decompose::{le3_mask_of, sadp_role_of, Le3Mask, SadpRole};
    pub use crate::draw::{Draw, EuvDraw, Le2Draw, Le3Draw, SadpDraw};
    pub use crate::error::LithoError;
    pub use crate::ler::LerModel;
    pub use crate::perturbed::{PerturbedStack, PerturbedTrack};
    pub use crate::sampling::{sample_draw, TRUNCATION_SIGMAS};
}
