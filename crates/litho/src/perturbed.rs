//! Printed (post-variation) track geometry in `f64` nanometres.

use crate::error::LithoError;

/// A printed horizontal wire: edges and span after process variation.
///
/// Unlike the drawn [`Track`](mpvar_geometry::Track), printed geometry is
/// real-valued: CD errors and overlay shifts are generally fractions of a
/// nanometre per sigma.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbedTrack {
    net: String,
    bottom_nm: f64,
    top_nm: f64,
    length_nm: f64,
}

impl PerturbedTrack {
    /// Creates a printed track from its edges.
    ///
    /// # Errors
    ///
    /// [`LithoError::CollapsedLine`] when `top <= bottom`;
    /// [`LithoError::NonFiniteDraw`] for non-finite inputs.
    pub fn new(
        net: impl Into<String>,
        bottom_nm: f64,
        top_nm: f64,
        length_nm: f64,
    ) -> Result<Self, LithoError> {
        let net = net.into();
        for (name, v) in [
            ("bottom_nm", bottom_nm),
            ("top_nm", top_nm),
            ("length_nm", length_nm),
        ] {
            if !v.is_finite() {
                return Err(LithoError::NonFiniteDraw { name, value: v });
            }
        }
        if top_nm <= bottom_nm {
            return Err(LithoError::CollapsedLine {
                net,
                width_nm: top_nm - bottom_nm,
            });
        }
        if length_nm <= 0.0 {
            return Err(LithoError::CollapsedLine {
                net,
                width_nm: length_nm,
            });
        }
        Ok(Self {
            net,
            bottom_nm,
            top_nm,
            length_nm,
        })
    }

    /// Net label.
    pub fn net(&self) -> &str {
        &self.net
    }

    /// Bottom edge, nm.
    pub fn bottom_nm(&self) -> f64 {
        self.bottom_nm
    }

    /// Top edge, nm.
    pub fn top_nm(&self) -> f64 {
        self.top_nm
    }

    /// Printed linewidth, nm.
    pub fn width_nm(&self) -> f64 {
        self.top_nm - self.bottom_nm
    }

    /// Centerline, nm.
    pub fn center_nm(&self) -> f64 {
        0.5 * (self.top_nm + self.bottom_nm)
    }

    /// Wire length along the track, nm.
    pub fn length_nm(&self) -> f64 {
        self.length_nm
    }
}

/// An ordered stack of printed tracks (bottom to top).
///
/// # Example
///
/// ```
/// use mpvar_litho::PerturbedTrack;
/// use mpvar_litho::PerturbedStack;
///
/// let stack = PerturbedStack::new(vec![
///     PerturbedTrack::new("VSS", -12.0, 12.0, 1000.0)?,
///     PerturbedTrack::new("BL", 35.0, 61.0, 1000.0)?,
/// ])?;
/// assert!((stack.gap_below_nm(1).unwrap() - 23.0).abs() < 1e-12);
/// assert!(stack.gap_below_nm(0).is_none()); // bottom track has no lower neighbour
/// # Ok::<(), mpvar_litho::LithoError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbedStack {
    tracks: Vec<PerturbedTrack>,
}

impl PerturbedStack {
    /// Creates a stack, validating bottom-to-top ordering and positive
    /// gaps (a non-positive gap is a printed short).
    ///
    /// # Errors
    ///
    /// [`LithoError::ShortedLines`] when adjacent printed tracks touch or
    /// overlap.
    pub fn new(tracks: Vec<PerturbedTrack>) -> Result<Self, LithoError> {
        for w in tracks.windows(2) {
            let gap = w[1].bottom_nm() - w[0].top_nm();
            if gap <= 0.0 {
                return Err(LithoError::ShortedLines {
                    lower: w[0].net().to_string(),
                    upper: w[1].net().to_string(),
                    gap_nm: gap,
                });
            }
        }
        Ok(Self { tracks })
    }

    /// The printed tracks, bottom to top.
    pub fn tracks(&self) -> &[PerturbedTrack] {
        &self.tracks
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The track at index `i`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn track(&self, i: usize) -> &PerturbedTrack {
        &self.tracks[i]
    }

    /// Index of the first track labelled `net`.
    pub fn index_of_net(&self, net: &str) -> Option<usize> {
        self.tracks.iter().position(|t| t.net() == net)
    }

    /// Gap between track `i` and its lower neighbour, nm.
    pub fn gap_below_nm(&self, i: usize) -> Option<f64> {
        if i == 0 || i >= self.tracks.len() {
            return None;
        }
        Some(self.tracks[i].bottom_nm() - self.tracks[i - 1].top_nm())
    }

    /// Gap between track `i` and its upper neighbour, nm.
    pub fn gap_above_nm(&self, i: usize) -> Option<f64> {
        if i + 1 >= self.tracks.len() {
            return None;
        }
        Some(self.tracks[i + 1].bottom_nm() - self.tracks[i].top_nm())
    }

    /// Iterator over tracks.
    pub fn iter(&self) -> std::slice::Iter<'_, PerturbedTrack> {
        self.tracks.iter()
    }
}

impl<'a> IntoIterator for &'a PerturbedStack {
    type Item = &'a PerturbedTrack;
    type IntoIter = std::slice::Iter<'a, PerturbedTrack>;

    fn into_iter(self) -> Self::IntoIter {
        self.tracks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(net: &str, bottom: f64, top: f64) -> PerturbedTrack {
        PerturbedTrack::new(net, bottom, top, 1000.0).unwrap()
    }

    #[test]
    fn track_validation() {
        assert!(PerturbedTrack::new("x", 0.0, 0.0, 10.0).is_err());
        assert!(PerturbedTrack::new("x", 5.0, 1.0, 10.0).is_err());
        assert!(PerturbedTrack::new("x", 0.0, 5.0, 0.0).is_err());
        assert!(PerturbedTrack::new("x", f64::NAN, 5.0, 10.0).is_err());
        assert!(PerturbedTrack::new("x", 0.0, 5.0, 10.0).is_ok());
    }

    #[test]
    fn track_accessors() {
        let tr = t("BL", 35.0, 61.0);
        assert_eq!(tr.width_nm(), 26.0);
        assert_eq!(tr.center_nm(), 48.0);
        assert_eq!(tr.net(), "BL");
        assert_eq!(tr.length_nm(), 1000.0);
    }

    #[test]
    fn stack_rejects_shorts() {
        let r = PerturbedStack::new(vec![t("a", 0.0, 24.0), t("b", 23.0, 47.0)]);
        assert!(matches!(r, Err(LithoError::ShortedLines { .. })));
        // Exactly touching is also a short.
        let r = PerturbedStack::new(vec![t("a", 0.0, 24.0), t("b", 24.0, 48.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn gap_queries() {
        let s = PerturbedStack::new(vec![
            t("a", 0.0, 24.0),
            t("b", 47.0, 73.0),
            t("c", 96.0, 120.0),
        ])
        .unwrap();
        assert_eq!(s.gap_below_nm(1), Some(23.0));
        assert_eq!(s.gap_above_nm(1), Some(23.0));
        assert_eq!(s.gap_below_nm(0), None);
        assert_eq!(s.gap_above_nm(2), None);
        assert_eq!(s.gap_below_nm(99), None);
        assert_eq!(s.index_of_net("b"), Some(1));
        assert_eq!(s.index_of_net("zz"), None);
        assert_eq!(s.iter().count(), 3);
        assert_eq!((&s).into_iter().count(), 3);
    }
}
