//! Monte-Carlo sampling of variation draws (paper §III.B).
//!
//! Every active parameter of an option is an independent Gaussian with
//! the 3σ value from the tech budget. Draws are truncated at ±3.5σ —
//! beyond that, LE3's extreme overlay budget could print physically
//! shorted lines, which in silicon is a yield failure screened at
//! inspection, not a read-time sample.

use mpvar_stats::{RngStream, StatsError, TruncatedGaussian};
use mpvar_tech::{PatterningOption, VariationBudget};

use crate::draw::{Draw, EuvDraw, Le2Draw, Le3Draw, SadpDraw};

/// Truncation bound, in sigmas, applied to every sampled parameter.
pub const TRUNCATION_SIGMAS: f64 = 3.5;

fn sample_param(three_sigma: f64, rng: &mut RngStream) -> Result<f64, StatsError> {
    if three_sigma == 0.0 {
        return Ok(0.0);
    }
    let sigma = three_sigma / 3.0;
    let dist = TruncatedGaussian::new(
        0.0,
        sigma,
        -TRUNCATION_SIGMAS * sigma,
        TRUNCATION_SIGMAS * sigma,
    )?;
    dist.sample(rng)
}

/// Samples one variation draw for `option` under `budget`.
///
/// # Errors
///
/// Propagates [`StatsError`] from distribution construction (only
/// possible with a corrupted budget).
///
/// # Example
///
/// ```
/// use mpvar_litho::sample_draw;
/// use mpvar_stats::RngStream;
/// use mpvar_tech::{PatterningOption, VariationBudget};
///
/// let budget = VariationBudget::paper_default(PatterningOption::Sadp, 8.0)?;
/// let mut rng = RngStream::from_seed(7);
/// let draw = sample_draw(PatterningOption::Sadp, &budget, &mut rng)?;
/// assert_eq!(draw.option(), PatterningOption::Sadp);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sample_draw(
    option: PatterningOption,
    budget: &VariationBudget,
    rng: &mut RngStream,
) -> Result<Draw, StatsError> {
    match option {
        PatterningOption::Le3 => {
            let mut cd = [0.0; 3];
            for c in &mut cd {
                *c = sample_param(budget.cd_three_sigma_nm(), rng)?;
            }
            // Mask A is the overlay reference; B and C are independent.
            let ob = sample_param(budget.overlay_three_sigma_nm(), rng)?;
            let oc = sample_param(budget.overlay_three_sigma_nm(), rng)?;
            Ok(Draw::Le3(Le3Draw {
                cd_nm: cd,
                overlay_nm: [0.0, ob, oc],
            }))
        }
        PatterningOption::Sadp => Ok(Draw::Sadp(SadpDraw {
            core_cd_nm: sample_param(budget.cd_three_sigma_nm(), rng)?,
            spacer_nm: sample_param(budget.spacer_three_sigma_nm(), rng)?,
        })),
        PatterningOption::Euv => Ok(Draw::Euv(EuvDraw {
            cd_nm: sample_param(budget.cd_three_sigma_nm(), rng)?,
        })),
        PatterningOption::Le2 => {
            let cd_a = sample_param(budget.cd_three_sigma_nm(), rng)?;
            let cd_b = sample_param(budget.cd_three_sigma_nm(), rng)?;
            let ol = sample_param(budget.overlay_three_sigma_nm(), rng)?;
            Ok(Draw::Le2(Le2Draw {
                cd_nm: [cd_a, cd_b],
                overlay_nm: ol,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_stats::Summary;

    #[test]
    fn samples_have_budgeted_spread() {
        let budget = VariationBudget::paper_default(PatterningOption::Euv, 8.0).unwrap();
        let mut rng = RngStream::from_seed(11);
        let s: Summary = (0..50_000)
            .map(
                |_| match sample_draw(PatterningOption::Euv, &budget, &mut rng).unwrap() {
                    Draw::Euv(d) => d.cd_nm,
                    _ => unreachable!(),
                },
            )
            .collect();
        // sigma = 1nm (3sigma = 3nm), slightly reduced by truncation.
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!((s.std_dev() - 1.0).abs() < 0.02, "std {}", s.std_dev());
        assert!(s.min() >= -3.5 && s.max() <= 3.5);
    }

    #[test]
    fn le3_reference_mask_never_shifts() {
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let mut rng = RngStream::from_seed(3);
        for _ in 0..100 {
            match sample_draw(PatterningOption::Le3, &budget, &mut rng).unwrap() {
                Draw::Le3(d) => {
                    assert_eq!(d.overlay_nm[0], 0.0);
                    assert!(d.overlay_nm[1].abs() <= 3.5 * 8.0 / 3.0);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn le3_masks_are_independent() {
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let mut rng = RngStream::from_seed(5);
        let mut cda = Vec::new();
        let mut cdb = Vec::new();
        for _ in 0..20_000 {
            if let Draw::Le3(d) = sample_draw(PatterningOption::Le3, &budget, &mut rng).unwrap() {
                cda.push(d.cd_nm[0]);
                cdb.push(d.cd_nm[1]);
            }
        }
        let r = mpvar_stats::pearson(&cda, &cdb).unwrap();
        assert!(r.abs() < 0.03, "correlation {r}");
    }

    #[test]
    fn sadp_has_no_overlay_component() {
        let budget = VariationBudget::paper_default(PatterningOption::Sadp, 8.0).unwrap();
        let mut rng = RngStream::from_seed(9);
        for _ in 0..10 {
            match sample_draw(PatterningOption::Sadp, &budget, &mut rng).unwrap() {
                Draw::Sadp(d) => {
                    assert!(d.spacer_nm.abs() <= 3.5 * 1.5 / 3.0 + 1e-12);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn zero_budget_gives_nominal() {
        let budget = VariationBudget::new(0.0, 0.0, 0.0).unwrap();
        let mut rng = RngStream::from_seed(1);
        for option in PatterningOption::ALL_WITH_EXTENSIONS {
            let d = sample_draw(option, &budget, &mut rng).unwrap();
            assert_eq!(d, Draw::nominal(option));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let budget = VariationBudget::paper_default(PatterningOption::Le3, 8.0).unwrap();
        let mut r1 = RngStream::from_seed(42);
        let mut r2 = RngStream::from_seed(42);
        for _ in 0..10 {
            assert_eq!(
                sample_draw(PatterningOption::Le3, &budget, &mut r1).unwrap(),
                sample_draw(PatterningOption::Le3, &budget, &mut r2).unwrap()
            );
        }
    }
}
