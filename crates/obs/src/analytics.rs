//! Trace analytics: per-span-name aggregates, the critical path, and
//! folded-stack flamegraph export.
//!
//! All three run over one [`SpanForest`] rebuilt from a parsed
//! [`TraceLog`]:
//!
//! * **Aggregates** answer "which *kind* of work dominated": per span
//!   name, the count, total and self time (duration minus direct
//!   children, clamped), exact p50/p95/p99 over the name's durations,
//!   and the share of the whole run's self time.
//! * The **critical path** answers "which *chain* of spans bounded
//!   wall time": starting from the longest root, it descends into the
//!   child that finished last. Each node contributes its duration
//!   minus the chosen child's, so the contributions telescope to
//!   exactly the root's duration — the path provably accounts for the
//!   run it explains.
//! * **Folded stacks** (`root;child;leaf self_ns`, one line per
//!   distinct stack) feed any standard flamegraph renderer
//!   (`flamegraph.pl`, inferno, speedscope).

use std::collections::BTreeMap;

use mpvar_trace::schema::{SpanEntry, TraceLog};
use mpvar_trace::sink::fmt_ns;

use crate::forest::SpanForest;
use crate::ObsError;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations, nanoseconds.
    pub total_ns: u64,
    /// Sum of their self times (duration minus direct children,
    /// clamped at zero), nanoseconds.
    pub self_ns: u64,
    /// This name's fraction of the whole trace's self time, `[0, 1]`.
    pub share: f64,
    /// Exact median of the per-span durations, nanoseconds.
    pub p50_ns: u64,
    /// Exact 95th percentile of the per-span durations, nanoseconds.
    pub p95_ns: u64,
    /// Exact 99th percentile of the per-span durations, nanoseconds.
    pub p99_ns: u64,
}

/// One node on the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathNode {
    /// Span name.
    pub name: String,
    /// Span id (for cross-referencing the raw trace).
    pub span_id: u64,
    /// The span's full duration, nanoseconds.
    pub dur_ns: u64,
    /// What this node alone adds to the path: its duration minus the
    /// chosen child's (the full duration at the leaf). Contributions
    /// telescope to the root's duration.
    pub contribution_ns: u64,
}

/// The complete analytic view of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Per-name aggregates, descending by self time.
    pub aggregates: Vec<SpanAggregate>,
    /// The critical path through the longest root, root first.
    pub critical_path: Vec<CriticalPathNode>,
    /// Total self time across every span, nanoseconds.
    pub total_self_ns: u64,
    /// Wall-clock extent of the trace (latest end minus earliest
    /// start), nanoseconds.
    pub wall_ns: u64,
}

impl TraceProfile {
    /// Sum of the critical path's contributions (telescopes to the
    /// dominant root's duration).
    pub fn critical_path_ns(&self) -> u64 {
        self.critical_path.iter().map(|n| n.contribution_ns).sum()
    }

    /// The aggregate for `name`, if any span carried it.
    pub fn aggregate(&self, name: &str) -> Option<&SpanAggregate> {
        self.aggregates.iter().find(|a| a.name == name)
    }
}

/// Exact nearest-rank percentile over an ascending-sorted slice.
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Profiles a parsed trace document.
///
/// # Errors
///
/// [`ObsError::EmptyTrace`] when the document holds no spans;
/// [`ObsError::Forest`] when the spans cannot form a forest.
pub fn profile(log: &TraceLog) -> Result<TraceProfile, ObsError> {
    profile_spans(log.spans.clone())
}

/// Profiles a raw span list (any order).
///
/// # Errors
///
/// As [`profile`].
pub fn profile_spans(spans: Vec<SpanEntry>) -> Result<TraceProfile, ObsError> {
    if spans.is_empty() {
        return Err(ObsError::EmptyTrace);
    }
    let forest = SpanForest::build(spans)?;

    struct Acc {
        count: u64,
        total_ns: u64,
        self_ns: u64,
        durs: Vec<u64>,
    }
    let mut by_name: BTreeMap<&str, Acc> = BTreeMap::new();
    for i in 0..forest.spans().len() {
        let span = forest.span(i);
        let acc = by_name.entry(span.name.as_str()).or_insert(Acc {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            durs: Vec::new(),
        });
        acc.count += 1;
        acc.total_ns += span.dur_ns;
        acc.self_ns += forest.self_time_ns(i);
        acc.durs.push(span.dur_ns);
    }
    let total_self_ns: u64 = by_name.values().map(|a| a.self_ns).sum();
    let mut aggregates: Vec<SpanAggregate> = by_name
        .into_iter()
        .map(|(name, mut acc)| {
            acc.durs.sort_unstable();
            SpanAggregate {
                name: name.to_string(),
                count: acc.count,
                total_ns: acc.total_ns,
                self_ns: acc.self_ns,
                share: if total_self_ns == 0 {
                    0.0
                } else {
                    acc.self_ns as f64 / total_self_ns as f64
                },
                p50_ns: percentile_sorted(&acc.durs, 0.50),
                p95_ns: percentile_sorted(&acc.durs, 0.95),
                p99_ns: percentile_sorted(&acc.durs, 0.99),
            }
        })
        .collect();
    aggregates.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

    Ok(TraceProfile {
        critical_path: critical_path(&forest),
        total_self_ns,
        wall_ns: forest.extent_ns(),
        aggregates,
    })
}

/// The critical path through the forest's longest root: at every node,
/// descend into the child that **finished last** (that child bounded
/// when the parent could complete).
fn critical_path(forest: &SpanForest) -> Vec<CriticalPathNode> {
    let Some(&root) = forest
        .roots()
        .iter()
        .max_by_key(|&&i| (forest.span(i).dur_ns, std::cmp::Reverse(forest.span(i).id)))
    else {
        return Vec::new();
    };
    let mut path = Vec::new();
    let mut at = root;
    loop {
        let span = forest.span(at);
        let next = forest.children(at).iter().copied().max_by_key(|&c| {
            (
                forest.span(c).start_ns + forest.span(c).dur_ns,
                forest.span(c).id,
            )
        });
        let child_dur = next.map(|c| forest.span(c).dur_ns).unwrap_or(0);
        path.push(CriticalPathNode {
            name: span.name.clone(),
            span_id: span.id,
            dur_ns: span.dur_ns,
            contribution_ns: span.dur_ns.saturating_sub(child_dur),
        });
        match next {
            Some(c) => at = c,
            None => return path,
        }
    }
}

/// Folded-stack flamegraph export: one `a;b;c self_ns` line per
/// distinct root-to-span stack, self-time weighted, identical stacks
/// merged, lines sorted — the input format of `flamegraph.pl`,
/// inferno, and speedscope.
pub fn folded_stacks(forest: &SpanForest) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    // Iterative DFS carrying an explicit pop marker so the name stack
    // mirrors the tree path.
    enum Step {
        Enter(usize),
        Leave,
    }
    let mut work: Vec<Step> = forest
        .roots()
        .iter()
        .rev()
        .map(|&r| Step::Enter(r))
        .collect();
    while let Some(step) = work.pop() {
        match step {
            Step::Leave => {
                stack.pop();
            }
            Step::Enter(i) => {
                stack.push(&forest.span(i).name);
                let self_ns = forest.self_time_ns(i);
                if self_ns > 0 {
                    *folded.entry(stack.join(";")).or_insert(0) += self_ns;
                }
                work.push(Step::Leave);
                for &c in forest.children(i).iter().rev() {
                    work.push(Step::Enter(c));
                }
            }
        }
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Renders a profile as the human report `repro profile` prints: the
/// aggregate table (descending self time), then the critical path with
/// its wall-time coverage.
pub fn render_profile(profile: &TraceProfile) -> String {
    let mut out = String::new();
    out.push_str("span aggregates (by self time):\n");
    out.push_str(&format!(
        "  {:<24} {:>7} {:>10} {:>10} {:>6} {:>10} {:>10} {:>10}\n",
        "name", "count", "total", "self", "share", "p50", "p95", "p99"
    ));
    for a in &profile.aggregates {
        out.push_str(&format!(
            "  {:<24} {:>7} {:>10} {:>10} {:>5.1}% {:>10} {:>10} {:>10}\n",
            a.name,
            a.count,
            fmt_ns(a.total_ns),
            fmt_ns(a.self_ns),
            a.share * 100.0,
            fmt_ns(a.p50_ns),
            fmt_ns(a.p95_ns),
            fmt_ns(a.p99_ns),
        ));
    }
    let path_ns = profile.critical_path_ns();
    let coverage = if profile.wall_ns == 0 {
        0.0
    } else {
        path_ns as f64 / profile.wall_ns as f64 * 100.0
    };
    out.push_str(&format!(
        "critical path ({} of {} wall, {coverage:.1}% coverage):\n",
        fmt_ns(path_ns),
        fmt_ns(profile.wall_ns),
    ));
    for node in &profile.critical_path {
        out.push_str(&format!(
            "  {:<24} span {:>6}  dur {:>10}  +{}\n",
            node.name,
            node.span_id,
            fmt_ns(node.dur_ns),
            fmt_ns(node.contribution_ns),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn span(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> SpanEntry {
        SpanEntry {
            id,
            parent,
            name: name.to_string(),
            thread: 0,
            start_ns,
            dur_ns,
            fields: Map::new(),
        }
    }

    /// root(0..100) -> a(0..40), b(45..95); b -> c(50..90).
    fn sample() -> Vec<SpanEntry> {
        vec![
            span(1, None, "root", 0, 100),
            span(2, Some(1), "a", 0, 40),
            span(3, Some(1), "b", 45, 50),
            span(4, Some(3), "c", 50, 40),
        ]
    }

    #[test]
    fn aggregates_share_and_percentiles() {
        let p = profile_spans(sample()).expect("profile");
        // Self times: root 100-90=10, a 40, b 50-40=10, c 40 → 100.
        assert_eq!(p.total_self_ns, 100);
        assert_eq!(p.aggregates[0].name, "a"); // ties broken by name
        let root = p.aggregate("root").expect("root aggregate");
        assert_eq!(root.count, 1);
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.self_ns, 10);
        assert!((root.share - 0.10).abs() < 1e-12);
        assert_eq!(root.p50_ns, 100);
    }

    #[test]
    fn critical_path_telescopes_to_the_root_duration() {
        let p = profile_spans(sample()).expect("profile");
        let names: Vec<&str> = p.critical_path.iter().map(|n| n.name.as_str()).collect();
        // b ends at 95 > a's 40; c is b's only child.
        assert_eq!(names, ["root", "b", "c"]);
        assert_eq!(p.critical_path_ns(), 100);
        assert_eq!(p.wall_ns, 100);
        let contributions: Vec<u64> = p.critical_path.iter().map(|n| n.contribution_ns).collect();
        assert_eq!(contributions, [50, 10, 40]);
    }

    #[test]
    fn folded_stacks_merge_and_weight_by_self_time() {
        let forest = SpanForest::build(sample()).expect("forest");
        let folded = folded_stacks(&forest);
        let expect = "root 10\nroot;a 40\nroot;b 10\nroot;b;c 40\n";
        assert_eq!(folded, expect);
    }

    #[test]
    fn empty_trace_is_a_named_error() {
        assert_eq!(profile_spans(Vec::new()), Err(ObsError::EmptyTrace));
    }

    #[test]
    fn render_mentions_coverage() {
        let p = profile_spans(sample()).expect("profile");
        let text = render_profile(&p);
        assert!(text.contains("100.0% coverage"), "{text}");
        assert!(text.contains("critical path"), "{text}");
    }
}
