//! The perf-regression gate: a committed baseline of *relative*
//! expectations, checked against any traced run.
//!
//! Absolute times flake in CI — machines differ, neighbors steal
//! cycles. What stays stable is the run's *shape*: which span names
//! own which fraction of self time, and which counter invariants the
//! engineered fast paths guarantee (the compiled LU kernel reuses its
//! symbolic analysis; the batched solver keeps lane fall-out rare).
//! `results/perf_baseline.json` (schema `mpvar-perf-baseline/v1`)
//! records those expectations as **named, thresholded checks**;
//! [`check`] evaluates a trace against them — the observability
//! analogue of `repro check`'s golden-CSV gate:
//!
//! ```text
//! {"schema":"mpvar-perf-baseline/v1",
//!  "workload":"repro --quick all --trace",
//!  "checks":[
//!    {"name":"solver-self-share","kind":"share_window",
//!     "span":"spice_transient","min":0.05,"max":0.9},
//!    {"name":"lu-reuse-present","kind":"counter_min",
//!     "counter":"spice.lu_symbolic_reuses","min":1},
//!    {"name":"symbolic-rebuild-rate","kind":"counter_ratio_max",
//!     "num":"spice.lu_symbolic_builds","den":"spice.lu_refactors",
//!     "max":0.1}]}
//! ```

use mpvar_trace::json::{get_f64, get_str, get_u64, parse_json, push_json_str, Json};
use mpvar_trace::schema::TraceLog;

use crate::analytics::profile;
use crate::ObsError;

/// Schema identifier of a perf baseline document.
pub const BASELINE_SCHEMA_ID: &str = "mpvar-perf-baseline/v1";

/// What one named check asserts.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckKind {
    /// The span name's share of total self time must sit in
    /// `[min, max]`. A missing span counts as share 0 — and fails
    /// unless `min` is 0.
    ShareWindow {
        /// Span name the share is computed for.
        span: String,
        /// Inclusive lower share bound, `[0, 1]`.
        min: f64,
        /// Inclusive upper share bound, `[0, 1]`.
        max: f64,
    },
    /// The counter's final value must be at least `min` (a missing
    /// counter reads as 0).
    CounterMin {
        /// Counter name.
        counter: String,
        /// Inclusive minimum.
        min: u64,
    },
    /// `num / den` must not exceed `max`. A zero or missing
    /// denominator passes only when the numerator is 0 too.
    CounterRatioMax {
        /// Numerator counter name.
        num: String,
        /// Denominator counter name.
        den: String,
        /// Inclusive maximum ratio.
        max: f64,
    },
}

/// One named, thresholded expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCheck {
    /// Stable check name, reported on failure.
    pub name: String,
    /// The assertion.
    pub kind: CheckKind,
}

/// A parsed perf baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBaseline {
    /// The workload the baseline was calibrated on (informational).
    pub workload: String,
    /// The named checks, in file order.
    pub checks: Vec<PerfCheck>,
}

impl PerfBaseline {
    /// Parses a `mpvar-perf-baseline/v1` JSON document.
    ///
    /// # Errors
    ///
    /// [`ObsError::Baseline`] describing the first problem.
    pub fn parse(text: &str) -> Result<PerfBaseline, ObsError> {
        let err = |m: String| ObsError::Baseline(m);
        let value = parse_json(text.trim()).map_err(&err)?;
        let obj = value
            .as_object()
            .ok_or_else(|| err("document is not a JSON object".into()))?;
        let schema = get_str(obj, "schema").map_err(&err)?;
        if schema != BASELINE_SCHEMA_ID {
            return Err(err(format!(
                "unsupported schema `{schema}` (expected `{BASELINE_SCHEMA_ID}`)"
            )));
        }
        let workload = get_str(obj, "workload").map_err(&err)?.to_string();
        let Some(Json::Arr(items)) = obj.get("checks") else {
            return Err(err("`checks` must be an array".into()));
        };
        if items.is_empty() {
            return Err(err("`checks` must not be empty".into()));
        }
        let mut checks = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let check = item
                .as_object()
                .ok_or_else(|| err(format!("check #{i} is not an object")))
                .and_then(|entry| {
                    let name = get_str(entry, "name").map_err(&err)?.to_string();
                    if name.is_empty() {
                        return Err(err(format!("check #{i} has an empty name")));
                    }
                    let within = |m: String| err(format!("check `{name}`: {m}"));
                    let kind = match get_str(entry, "kind").map_err(&err)? {
                        "share_window" => {
                            let min = get_f64(entry, "min").map_err(within)?;
                            let max = get_f64(entry, "max").map_err(within)?;
                            if !(0.0..=1.0).contains(&min)
                                || !(0.0..=1.0).contains(&max)
                                || min > max
                            {
                                return Err(err(format!(
                                    "check `{name}`: share window [{min}, {max}] is not a \
                                     sub-interval of [0, 1]"
                                )));
                            }
                            CheckKind::ShareWindow {
                                span: get_str(entry, "span").map_err(within)?.to_string(),
                                min,
                                max,
                            }
                        }
                        "counter_min" => CheckKind::CounterMin {
                            counter: get_str(entry, "counter").map_err(within)?.to_string(),
                            min: get_u64(entry, "min").map_err(within)?,
                        },
                        "counter_ratio_max" => {
                            let max = get_f64(entry, "max").map_err(within)?;
                            if !max.is_finite() || max < 0.0 {
                                return Err(err(format!(
                                    "check `{name}`: ratio max {max} must be finite and >= 0"
                                )));
                            }
                            CheckKind::CounterRatioMax {
                                num: get_str(entry, "num").map_err(within)?.to_string(),
                                den: get_str(entry, "den").map_err(within)?.to_string(),
                                max,
                            }
                        }
                        other => {
                            return Err(err(format!("check `{name}`: unknown kind `{other}`")))
                        }
                    };
                    Ok(PerfCheck { name, kind })
                })?;
            checks.push(check);
        }
        Ok(PerfBaseline { workload, checks })
    }

    /// Serializes the baseline back to its canonical JSON form
    /// (pretty-printed, one check per line — the committed format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        push_json_str(&mut out, BASELINE_SCHEMA_ID);
        out.push_str(",\n \"workload\":");
        push_json_str(&mut out, &self.workload);
        out.push_str(",\n \"checks\":[");
        for (i, check) in self.checks.iter().enumerate() {
            out.push_str(if i == 0 { "\n  " } else { ",\n  " });
            out.push_str("{\"name\":");
            push_json_str(&mut out, &check.name);
            match &check.kind {
                CheckKind::ShareWindow { span, min, max } => {
                    out.push_str(",\"kind\":\"share_window\",\"span\":");
                    push_json_str(&mut out, span);
                    out.push_str(&format!(",\"min\":{min},\"max\":{max}"));
                }
                CheckKind::CounterMin { counter, min } => {
                    out.push_str(",\"kind\":\"counter_min\",\"counter\":");
                    push_json_str(&mut out, counter);
                    out.push_str(&format!(",\"min\":{min}"));
                }
                CheckKind::CounterRatioMax { num, den, max } => {
                    out.push_str(",\"kind\":\"counter_ratio_max\",\"num\":");
                    push_json_str(&mut out, num);
                    out.push_str(",\"den\":");
                    push_json_str(&mut out, den);
                    out.push_str(&format!(",\"max\":{max}"));
                }
            }
            out.push('}');
        }
        out.push_str("\n ]}\n");
        out
    }
}

/// One evaluated check.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCheckResult {
    /// The check's name.
    pub name: String,
    /// Whether the trace satisfied it.
    pub passed: bool,
    /// Human-readable measurement vs threshold.
    pub detail: String,
}

/// Every check's verdict against one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Results in baseline order.
    pub checks: Vec<PerfCheckResult>,
}

impl PerfReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Names of the failing checks, in baseline order.
    pub fn failed_names(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.name.as_str())
            .collect()
    }
}

/// Evaluates `baseline` against a parsed trace.
///
/// Missing spans and counters are *failing measurements* (share 0,
/// value 0), not errors — a trace that silently lost its solver spans
/// is exactly the regression this gate exists to catch.
///
/// # Errors
///
/// Only structural ones: an empty trace or an unbuildable span forest.
pub fn check(baseline: &PerfBaseline, log: &TraceLog) -> Result<PerfReport, ObsError> {
    let profile = profile(log)?;
    let counter = |name: &str| log.counters.get(name).copied().unwrap_or(0);
    let checks = baseline
        .checks
        .iter()
        .map(|c| {
            let (passed, detail) = match &c.kind {
                CheckKind::ShareWindow { span, min, max } => {
                    let share = profile.aggregate(span).map(|a| a.share).unwrap_or(0.0);
                    (
                        (*min..=*max).contains(&share),
                        format!(
                            "span `{span}` self-time share {:.1}% (window {:.1}%..{:.1}%)",
                            share * 100.0,
                            min * 100.0,
                            max * 100.0
                        ),
                    )
                }
                CheckKind::CounterMin { counter: name, min } => {
                    let value = counter(name);
                    (
                        value >= *min,
                        format!("counter `{name}` = {value} (min {min})"),
                    )
                }
                CheckKind::CounterRatioMax { num, den, max } => {
                    let (n, d) = (counter(num), counter(den));
                    let (passed, shown) = if d == 0 {
                        (n == 0, "undefined (zero denominator)".to_string())
                    } else {
                        let ratio = n as f64 / d as f64;
                        (ratio <= *max, format!("{ratio:.4}"))
                    };
                    (
                        passed,
                        format!("`{num}`/`{den}` = {n}/{d} = {shown} (max {max})"),
                    )
                }
            };
            PerfCheckResult {
                name: c.name.clone(),
                passed,
                detail,
            }
        })
        .collect();
    Ok(PerfReport { checks })
}

/// Renders a report as `repro perf-check` prints it: one `PASS`/`FAIL`
/// line per check, then the verdict.
pub fn render_report(report: &PerfReport) -> String {
    let mut out = String::new();
    for c in &report.checks {
        out.push_str(&format!(
            "  [{}] {:<28} {}\n",
            if c.passed { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        ));
    }
    let failed = report.failed_names();
    if failed.is_empty() {
        out.push_str(&format!(
            "perf-check: OK ({} checks)\n",
            report.checks.len()
        ));
    } else {
        out.push_str(&format!(
            "perf-check: FAILED ({}/{} checks): {}\n",
            failed.len(),
            report.checks.len(),
            failed.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_baseline() -> PerfBaseline {
        PerfBaseline {
            workload: "test".into(),
            checks: vec![
                PerfCheck {
                    name: "solver-share".into(),
                    kind: CheckKind::ShareWindow {
                        span: "work".into(),
                        min: 0.5,
                        max: 0.95,
                    },
                },
                PerfCheck {
                    name: "reuse-present".into(),
                    kind: CheckKind::CounterMin {
                        counter: "reuses".into(),
                        min: 1,
                    },
                },
                PerfCheck {
                    name: "rebuild-rate".into(),
                    kind: CheckKind::CounterRatioMax {
                        num: "builds".into(),
                        den: "solves".into(),
                        max: 0.5,
                    },
                },
            ],
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let baseline = sample_baseline();
        let parsed = PerfBaseline::parse(&baseline.to_json()).expect("parse");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(matches!(
            PerfBaseline::parse("{}"),
            Err(ObsError::Baseline(_))
        ));
        let wrong_schema = r#"{"schema":"perf/v0","workload":"w","checks":[]}"#;
        assert!(PerfBaseline::parse(wrong_schema).is_err());
        let empty_checks = r#"{"schema":"mpvar-perf-baseline/v1","workload":"w","checks":[]}"#;
        assert!(PerfBaseline::parse(empty_checks).is_err());
        let bad_window = r#"{"schema":"mpvar-perf-baseline/v1","workload":"w",
            "checks":[{"name":"x","kind":"share_window","span":"s","min":0.9,"max":0.1}]}"#;
        assert!(PerfBaseline::parse(bad_window).is_err());
        let unknown_kind = r#"{"schema":"mpvar-perf-baseline/v1","workload":"w",
            "checks":[{"name":"x","kind":"wall_time_max","max":1.0}]}"#;
        let err = PerfBaseline::parse(unknown_kind).unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
    }

    fn trace_with(work_ns: u64, other_ns: u64, counters: &[(&str, u64)]) -> TraceLog {
        use mpvar_trace::schema::SpanEntry;
        use std::collections::BTreeMap;
        let mut log = TraceLog {
            schema: "mpvar-trace/v1".into(),
            ..TraceLog::default()
        };
        log.spans.push(SpanEntry {
            id: 1,
            parent: None,
            name: "work".into(),
            thread: 0,
            start_ns: 0,
            dur_ns: work_ns,
            fields: BTreeMap::new(),
        });
        log.spans.push(SpanEntry {
            id: 2,
            parent: None,
            name: "other".into(),
            thread: 0,
            start_ns: work_ns,
            dur_ns: other_ns,
            fields: BTreeMap::new(),
        });
        for (name, value) in counters {
            log.counters.insert(name.to_string(), *value);
        }
        log
    }

    #[test]
    fn honest_trace_passes_and_inflated_share_fails_by_name() {
        let baseline = sample_baseline();
        let honest = trace_with(80, 20, &[("reuses", 10), ("builds", 1), ("solves", 10)]);
        let report = check(&baseline, &honest).expect("check");
        assert!(report.passed(), "{report:?}");

        // Doctoring `other` up (so `work`'s share collapses) must fail
        // exactly the share check, by name.
        let doctored = trace_with(80, 2000, &[("reuses", 10), ("builds", 1), ("solves", 10)]);
        let report = check(&baseline, &doctored).expect("check");
        assert!(!report.passed());
        assert_eq!(report.failed_names(), ["solver-share"]);
        assert!(
            render_report(&report).contains("FAIL"),
            "render names failure"
        );
    }

    #[test]
    fn counter_checks_fail_on_missing_and_zero_denominator() {
        let baseline = sample_baseline();
        let no_counters = trace_with(80, 20, &[]);
        let report = check(&baseline, &no_counters).expect("check");
        // reuse-present fails (missing = 0); rebuild-rate passes (0/0).
        assert_eq!(report.failed_names(), ["reuse-present"]);

        let zero_den = trace_with(80, 20, &[("reuses", 5), ("builds", 3)]);
        let report = check(&baseline, &zero_den).expect("check");
        assert_eq!(report.failed_names(), ["rebuild-rate"]);
    }
}
