//! Rebuilding the span forest from a flat `mpvar-trace/v1` stream.
//!
//! Spans are written on **completion**, so children precede parents in
//! the file, and concurrent threads interleave arbitrarily. The
//! builder is therefore order-independent: it indexes every span
//! first, then resolves parent links against the whole set. Anything
//! that cannot form a forest — an orphaned parent id, a duplicated
//! span id, a parent cycle — is a named [`ForestError`], never a
//! panic: adversarial trace files are expected input here.

use std::collections::HashMap;
use std::fmt;

use mpvar_trace::schema::SpanEntry;

/// A structural failure while rebuilding the span forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// A span names a parent id that appears nowhere in the stream
    /// (e.g. the parent's completion line was truncated away).
    OrphanedParent {
        /// The child span's id.
        span: u64,
        /// The missing parent id it references.
        parent: u64,
    },
    /// Two spans share one id; parentage would be ambiguous.
    DuplicateSpanId {
        /// The duplicated id.
        span: u64,
    },
    /// Parent links loop (a span is its own ancestor), so the spans
    /// reachable from no root would be traversed forever.
    ParentCycle {
        /// A span on the cycle.
        span: u64,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::OrphanedParent { span, parent } => {
                write!(f, "span {span} references orphaned parent {parent}")
            }
            ForestError::DuplicateSpanId { span } => {
                write!(f, "duplicate span id {span}")
            }
            ForestError::ParentCycle { span } => {
                write!(f, "parent links form a cycle through span {span}")
            }
        }
    }
}

impl std::error::Error for ForestError {}

/// The rebuilt forest: spans plus resolved child lists, both addressed
/// by index into the original span vector.
#[derive(Debug, Clone)]
pub struct SpanForest {
    spans: Vec<SpanEntry>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl SpanForest {
    /// Builds the forest, accepting spans in **any** order (completion
    /// order, start order, or adversarially shuffled across threads).
    ///
    /// Children and roots are sorted by `start_ns` (ties by id) so
    /// traversal order is deterministic regardless of file order.
    ///
    /// # Errors
    ///
    /// [`ForestError`] naming the first structural violation.
    pub fn build(spans: Vec<SpanEntry>) -> Result<Self, ForestError> {
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, span) in spans.iter().enumerate() {
            if index.insert(span.id, i).is_some() {
                return Err(ForestError::DuplicateSpanId { span: span.id });
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            match span.parent {
                None => roots.push(i),
                Some(parent) => match index.get(&parent) {
                    Some(&p) => children[p].push(i),
                    None => {
                        return Err(ForestError::OrphanedParent {
                            span: span.id,
                            parent,
                        })
                    }
                },
            }
        }
        let by_start = |spans: &[SpanEntry], list: &mut Vec<usize>| {
            list.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
        };
        by_start(&spans, &mut roots);
        for list in &mut children {
            by_start(&spans, list);
        }
        // Every span must be reachable from a root; leftovers sit on a
        // parent cycle (each has a resolving parent, yet no path up to
        // a parentless span).
        let mut reached = vec![false; spans.len()];
        let mut stack: Vec<usize> = roots.clone();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reached[i], true) {
                continue;
            }
            stack.extend(children[i].iter().copied());
        }
        if let Some(unreached) = reached.iter().position(|&r| !r) {
            return Err(ForestError::ParentCycle {
                span: spans[unreached].id,
            });
        }
        Ok(SpanForest {
            spans,
            children,
            roots,
        })
    }

    /// All spans, in original input order.
    pub fn spans(&self) -> &[SpanEntry] {
        &self.spans
    }

    /// The span at `index`.
    pub fn span(&self, index: usize) -> &SpanEntry {
        &self.spans[index]
    }

    /// Root span indices, ascending by start time.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Child indices of the span at `index`, ascending by start time.
    pub fn children(&self, index: usize) -> &[usize] {
        &self.children[index]
    }

    /// Self time of the span at `index`: its duration minus the sum of
    /// its direct children's durations, clamped at zero (cross-thread
    /// children can overlap their parent, so the naive difference may
    /// go negative).
    pub fn self_time_ns(&self, index: usize) -> u64 {
        let child_total: u64 = self.children[index]
            .iter()
            .map(|&c| self.spans[c].dur_ns)
            .sum();
        self.spans[index].dur_ns.saturating_sub(child_total)
    }

    /// The wall-clock extent of the whole trace: latest span end minus
    /// earliest span start (0 for an empty forest).
    pub fn extent_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min();
        let end = self.spans.iter().map(|s| s.start_ns + s.dur_ns).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn span(id: u64, parent: Option<u64>, start_ns: u64, dur_ns: u64) -> SpanEntry {
        SpanEntry {
            id,
            parent,
            name: format!("s{id}"),
            thread: 0,
            start_ns,
            dur_ns,
            fields: BTreeMap::new(),
        }
    }

    #[test]
    fn builds_independent_of_input_order() {
        let in_order = vec![
            span(1, None, 0, 100),
            span(2, Some(1), 10, 30),
            span(3, Some(1), 50, 40),
        ];
        let mut shuffled = in_order.clone();
        shuffled.reverse();
        let a = SpanForest::build(in_order).expect("forest");
        let b = SpanForest::build(shuffled).expect("forest");
        let names = |f: &SpanForest| -> Vec<String> {
            let root = f.roots()[0];
            f.children(root)
                .iter()
                .map(|&c| f.span(c).name.clone())
                .collect()
        };
        assert_eq!(names(&a), names(&b));
        assert_eq!(names(&a), ["s2", "s3"]);
        assert_eq!(a.self_time_ns(a.roots()[0]), 30);
    }

    #[test]
    fn orphaned_parent_is_a_named_error() {
        let err = SpanForest::build(vec![span(5, Some(99), 0, 1)]).unwrap_err();
        assert_eq!(
            err,
            ForestError::OrphanedParent {
                span: 5,
                parent: 99
            }
        );
    }

    #[test]
    fn duplicate_id_is_a_named_error() {
        let err = SpanForest::build(vec![span(7, None, 0, 1), span(7, None, 2, 1)]).unwrap_err();
        assert_eq!(err, ForestError::DuplicateSpanId { span: 7 });
    }

    #[test]
    fn parent_cycle_is_a_named_error() {
        let err =
            SpanForest::build(vec![span(1, Some(2), 0, 1), span(2, Some(1), 0, 1)]).unwrap_err();
        assert!(matches!(err, ForestError::ParentCycle { .. }));
    }

    #[test]
    fn overlapping_cross_thread_children_clamp_self_time() {
        // Children total 120ns under an 100ns parent (they overlap in
        // wall time on other threads): self time clamps to 0.
        let forest = SpanForest::build(vec![
            span(1, None, 0, 100),
            span(2, Some(1), 0, 60),
            span(3, Some(1), 0, 60),
        ])
        .expect("forest");
        assert_eq!(forest.self_time_ns(forest.roots()[0]), 0);
    }
}
