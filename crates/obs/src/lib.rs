//! # mpvar-obs — turning traces into answers
//!
//! The workspace's observability *spine* (`mpvar-trace`) emits
//! machine-readable run telemetry; this crate is its *consumer*. It
//! takes a parsed `mpvar-trace/v1` document and answers the questions
//! an operator actually asks:
//!
//! * **Where did the time go?** [`forest::SpanForest`] rebuilds the
//!   cross-thread span tree from the flat completion-ordered JSONL
//!   stream; [`analytics::profile`] aggregates it per span name
//!   (count, total/self time, p50/p95/p99), walks the **critical
//!   path** through the dominant root, and exports **folded stacks**
//!   in the standard flamegraph format.
//! * **Did performance regress?** [`baseline::PerfBaseline`] is a
//!   committed profile of *relative* self-time shares and counter
//!   invariants (never absolute times, so CI machine noise cannot
//!   flake the gate); [`baseline::check`] evaluates a trace against
//!   it into named pass/fail verdicts — the observability analogue of
//!   `repro check`.
//!
//! Like the rest of the workspace this crate is zero-dependency and
//! strictly read-only over traces: it never installs a collector, so
//! it cannot perturb the runs it analyzes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytics;
pub mod baseline;
pub mod forest;

use std::fmt;

pub use analytics::{
    folded_stacks, profile, profile_spans, render_profile, CriticalPathNode, SpanAggregate,
    TraceProfile,
};
pub use baseline::{
    check, render_report, CheckKind, PerfBaseline, PerfCheck, PerfCheckResult, PerfReport,
};
pub use forest::{ForestError, SpanForest};

use mpvar_trace::schema::SchemaError;

/// Any failure while analyzing a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsError {
    /// The document failed `mpvar-trace/v1` parsing/validation —
    /// truncated final lines, junk bytes, schema violations all land
    /// here with their 1-based line number.
    Trace(SchemaError),
    /// The span stream parsed but does not form a forest.
    Forest(ForestError),
    /// A perf baseline file is malformed.
    Baseline(String),
    /// The trace is structurally fine but empty of spans, so there is
    /// nothing to profile.
    EmptyTrace,
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Trace(e) => write!(f, "{e}"),
            ObsError::Forest(e) => write!(f, "{e}"),
            ObsError::Baseline(m) => write!(f, "perf baseline error: {m}"),
            ObsError::EmptyTrace => write!(f, "trace contains no spans to profile"),
        }
    }
}

impl std::error::Error for ObsError {}

impl From<SchemaError> for ObsError {
    fn from(e: SchemaError) -> Self {
        ObsError::Trace(e)
    }
}

impl From<ForestError> for ObsError {
    fn from(e: ForestError) -> Self {
        ObsError::Forest(e)
    }
}
