//! Adversarial traces against the span-forest rebuilder and the
//! profile pipeline: orphaned parents, events out of order across
//! threads, and a truncated final line must each surface as a *named*
//! error (or be handled transparently where order simply does not
//! matter) — never a panic.

use mpvar_obs::{profile, profile_spans, ForestError, ObsError, SpanForest};
use mpvar_trace::schema::SpanEntry;
use mpvar_trace::validate_jsonl;

fn span(id: u64, parent: Option<u64>, name: &str, thread: u64, start: u64, dur: u64) -> SpanEntry {
    SpanEntry {
        id,
        parent,
        name: name.to_string(),
        thread,
        start_ns: start,
        dur_ns: dur,
        fields: std::collections::BTreeMap::new(),
    }
}

/// A well-formed JSONL document with one root and two cross-thread
/// children, written in completion order (children first).
fn jsonl_doc() -> String {
    [
        r#"{"type":"meta","schema":"mpvar-trace/v1","producer":"mpvar"}"#,
        r#"{"type":"span","id":2,"parent":1,"name":"mc_wave","thread":1,"start_ns":100,"dur_ns":400}"#,
        r#"{"type":"span","id":3,"parent":1,"name":"mc_wave","thread":2,"start_ns":150,"dur_ns":420}"#,
        r#"{"type":"span","id":1,"parent":null,"name":"mc_distribution","thread":0,"start_ns":0,"dur_ns":700}"#,
        r#"{"type":"counter","name":"mc.trials","value":512}"#,
    ]
    .join("\n")
}

#[test]
fn orphaned_parent_is_a_named_forest_error() {
    // The parent's completion line never made it into the stream (the
    // process died before the root span closed).
    let spans = vec![
        span(2, Some(1), "mc_wave", 1, 100, 400),
        span(3, Some(1), "mc_wave", 2, 150, 420),
    ];
    let err = SpanForest::build(spans.clone()).unwrap_err();
    assert_eq!(err, ForestError::OrphanedParent { span: 2, parent: 1 });
    // The profile pipeline wraps, not panics.
    let err = profile_spans(spans).unwrap_err();
    assert_eq!(
        err,
        ObsError::Forest(ForestError::OrphanedParent { span: 2, parent: 1 })
    );
    assert!(err.to_string().contains("orphaned parent 1"), "{err}");
}

#[test]
fn out_of_order_events_across_threads_profile_identically() {
    // Interleaved multi-thread completion order vs fully reversed vs
    // sorted-by-id: the rebuilt forest and the profile must be
    // identical, because parent links — not file order — define
    // structure.
    let completion_order = vec![
        span(4, Some(2), "spice_transient", 1, 120, 80),
        span(2, Some(1), "mc_wave", 1, 100, 400),
        span(5, Some(3), "spice_transient", 2, 200, 90),
        span(3, Some(1), "mc_wave", 2, 150, 420),
        span(1, None, "mc_distribution", 0, 0, 700),
    ];
    let mut reversed = completion_order.clone();
    reversed.reverse();
    let mut by_id = completion_order.clone();
    by_id.sort_by_key(|s| s.id);

    let base = profile_spans(completion_order).expect("profile");
    assert_eq!(base, profile_spans(reversed).expect("profile"));
    assert_eq!(base, profile_spans(by_id).expect("profile"));
    // Sanity: the wave that finished last carries the critical path.
    let names: Vec<&str> = base.critical_path.iter().map(|n| n.name.as_str()).collect();
    assert_eq!(names, ["mc_distribution", "mc_wave", "spice_transient"]);
}

#[test]
fn truncated_final_line_is_a_named_schema_error() {
    let doc = jsonl_doc();
    // Sanity: the intact document parses and profiles.
    let log = validate_jsonl(&doc).expect("intact doc parses");
    profile(&log).expect("intact doc profiles");

    // Cut the file mid-way through its final line (a crashed writer).
    let cut = doc.len() - 10;
    let truncated = &doc[..cut];
    let err = validate_jsonl(truncated).unwrap_err();
    assert_eq!(err.line, 5, "error names the truncated line");
    let wrapped: ObsError = err.into();
    assert!(
        matches!(wrapped, ObsError::Trace(_)),
        "schema errors wrap as ObsError::Trace"
    );
    assert!(wrapped.to_string().contains("line 5"), "{wrapped}");
}

#[test]
fn duplicate_ids_and_cycles_never_panic() {
    let dup = vec![span(7, None, "a", 0, 0, 10), span(7, None, "b", 0, 20, 10)];
    assert_eq!(
        profile_spans(dup).unwrap_err(),
        ObsError::Forest(ForestError::DuplicateSpanId { span: 7 })
    );
    let cycle = vec![
        span(1, Some(2), "a", 0, 0, 10),
        span(2, Some(3), "b", 0, 0, 10),
        span(3, Some(1), "c", 0, 0, 10),
    ];
    assert!(matches!(
        profile_spans(cycle).unwrap_err(),
        ObsError::Forest(ForestError::ParentCycle { .. })
    ));
}
