//! A small blocking client for the `mpvar-serve/v1` protocol.
//!
//! One [`Client`] wraps one connection. The low-level [`Client::send`]
//! / [`Client::recv`] pair exposes the raw message stream (needed when
//! juggling several outstanding requests on one socket); the
//! [`Client::request`] convenience drives a single request to its
//! result.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{AnalysisRequest, ClientMessage, RenderedArtifact, ServerMessage};
use crate::telemetry::ServeStats;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including the server closing the
    /// connection mid-request).
    Io(std::io::Error),
    /// The server sent something that is not a valid
    /// `mpvar-serve/v1` server message.
    Protocol(String),
    /// The server answered a request with an `error` message.
    Server {
        /// Request id the error answers ("" for line-level errors).
        id: String,
        /// Server-side failure description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ClientError::Server { id, message } => {
                write!(f, "server error for request `{id}`: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to an `mpvar-serve` endpoint.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serve endpoint.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one client message.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, message: &ClientMessage) -> std::io::Result<()> {
        self.writer.write_all(message.to_line().as_bytes())?;
        self.writer.flush()
    }

    /// Receives the next server message (blocking).
    ///
    /// # Errors
    ///
    /// Transport failures ([`std::io::ErrorKind::UnexpectedEof`] when
    /// the server closed the connection) or unparseable lines.
    pub fn recv(&mut self) -> Result<ServerMessage, ClientError> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            return ServerMessage::parse(&line).map_err(ClientError::Protocol);
        }
    }

    /// Submits `request` and blocks until its result, feeding every
    /// intermediate message answering this request (ack, progress) to
    /// `on_event`.
    ///
    /// Messages answering *other* outstanding request ids are passed
    /// to `on_event` too, so a caller interleaving requests can still
    /// observe them — but normally one `request` call runs alone on
    /// the connection.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or the server's `error` answer.
    pub fn request(
        &mut self,
        request: AnalysisRequest,
        mut on_event: impl FnMut(&ServerMessage),
    ) -> Result<Vec<RenderedArtifact>, ClientError> {
        let id = request.id.clone();
        self.send(&ClientMessage::Request(request))?;
        loop {
            let message = self.recv()?;
            match message {
                ServerMessage::Result {
                    id: answer_id,
                    artifacts,
                } if answer_id == id => return Ok(artifacts),
                ServerMessage::Error {
                    id: answer_id,
                    message,
                } if answer_id == id || answer_id.is_empty() => {
                    return Err(ClientError::Server {
                        id: answer_id,
                        message,
                    })
                }
                other => on_event(&other),
            }
        }
    }

    /// Fetches the server's live dispatch counters (the `counters`
    /// slice of [`Client::stats_full`]).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<BTreeMap<String, u64>, ClientError> {
        self.stats_full().map(|stats| stats.counters)
    }

    /// Fetches the server's full telemetry: counters, gauges,
    /// per-outcome latency quantiles, and recent snapshot windows.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats_full(&mut self) -> Result<ServeStats, ClientError> {
        self.send(&ClientMessage::Stats)?;
        loop {
            // Skip stray progress lines from requests still in flight
            // elsewhere on this connection.
            if let ServerMessage::Stats { stats } = self.recv()? {
                return Ok(stats);
            }
        }
    }

    /// Asks the server to shut down and consumes the connection.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.send(&ClientMessage::Shutdown)
    }
}
