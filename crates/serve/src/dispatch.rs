//! The job dispatcher: one shared [`ArtifactStore`], request dedupe,
//! and wave batching.
//!
//! Requests are grouped by **context fingerprint** (the same
//! content-keyed identity the store itself uses, so "compatible" here
//! means *provably result-identical*). Per fingerprint the dispatcher
//! keeps at most one **running wave** — a single `Study::materialize`
//! call on a worker thread — plus a **pending wave** accumulating the
//! requests that arrived too late to join it:
//!
//! * A request whose artifact set is a subset of the running wave's
//!   joins it as an extra waiter (**dedupe** — no second
//!   materialization, `serve.deduped`).
//! * Any other compatible request lands in the pending wave, merging
//!   its artifact set with whatever else is waiting (**batching** —
//!   `serve.batched` counts the requests that shared a wave with an
//!   earlier one).
//! * When the running wave finishes it answers every waiter (each gets
//!   exactly the artifacts it asked for, in its own request order),
//!   then promotes the pending wave, if any, on the same thread.
//!
//! Because every wave runs against the shared store, even requests
//! that miss the dedupe window are answered from cache at
//! near-zero cost — dedupe and batching save redundant *in-flight*
//! work; the store saves redundant *repeated* work.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpvar_core::experiments::ExperimentContext;
use mpvar_study::{context_fingerprint, ArtifactId, ArtifactStore, Study};
use mpvar_trace::names;

use crate::progress::{JobEvent, ProgressRouter};
use crate::protocol::{AnalysisRequest, RenderedArtifact};
use crate::telemetry::{RequestOutcome, ServeStats, ServeTelemetry};

/// A submitted job: its cache identity and its event stream (zero or
/// more [`JobEvent::Progress`], then one [`JobEvent::Done`]).
#[derive(Debug)]
pub struct JobHandle {
    /// Context fingerprint the job was grouped under.
    pub fingerprint: u64,
    /// Event stream for this job.
    pub events: Receiver<JobEvent>,
}

struct Waiter {
    artifacts: Vec<ArtifactId>,
    tx: Sender<JobEvent>,
    submitted: Instant,
    deduped: bool,
}

struct PendingJob {
    ctx: ExperimentContext,
    progress: bool,
    waiter: Waiter,
}

struct RunningWave {
    label: String,
    artifacts: BTreeSet<ArtifactId>,
    waiters: Vec<Waiter>,
}

#[derive(Default)]
struct WaveState {
    running: Option<RunningWave>,
    pending: Vec<PendingJob>,
    pending_artifacts: BTreeSet<ArtifactId>,
}

#[derive(Default)]
struct DispatchCounters {
    requests: AtomicU64,
    deduped: AtomicU64,
    batched: AtomicU64,
    materializations: AtomicU64,
}

/// The serve-side scheduler. Cheap to share (`Arc`); every method
/// takes `&self`.
pub struct Dispatcher {
    store: Arc<dyn ArtifactStore>,
    router: Arc<ProgressRouter>,
    waves: Mutex<HashMap<u64, WaveState>>,
    counters: DispatchCounters,
    telemetry: ServeTelemetry,
    wave_seq: AtomicU64,
    active: Mutex<usize>,
    idle: Condvar,
}

impl Dispatcher {
    /// A dispatcher materializing into `store` and streaming progress
    /// through `router`.
    pub fn new(store: Arc<dyn ArtifactStore>, router: Arc<ProgressRouter>) -> Self {
        Self {
            store,
            router,
            waves: Mutex::new(HashMap::new()),
            counters: DispatchCounters::default(),
            telemetry: ServeTelemetry::new(),
            wave_seq: AtomicU64::new(0),
            active: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    /// The shared artifact store waves materialize into.
    pub fn store(&self) -> &Arc<dyn ArtifactStore> {
        &self.store
    }

    /// The progress router waves are labelled for.
    pub fn router(&self) -> &Arc<ProgressRouter> {
        &self.router
    }

    /// Accepts a request: joins a running wave, joins the pending
    /// wave, or starts a new one.
    ///
    /// # Errors
    ///
    /// A description when the request's context cannot be built.
    pub fn submit(self: &Arc<Self>, request: &AnalysisRequest) -> Result<JobHandle, String> {
        let ctx = request.context.build().map_err(|e| {
            self.telemetry.record_error();
            format!("invalid context: {e}")
        })?;
        let fingerprint = context_fingerprint(&ctx);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        mpvar_trace::counter_add(names::SERVE_REQUESTS, 1);

        let (tx, rx) = channel();
        let mut waiter = Waiter {
            artifacts: request.artifacts.clone(),
            tx: tx.clone(),
            submitted: Instant::now(),
            deduped: false,
        };

        let mut waves = self.waves.lock().expect("dispatcher waves lock poisoned");
        let state = waves.entry(fingerprint).or_default();

        if let Some(running) = &mut state.running {
            let covered = request
                .artifacts
                .iter()
                .all(|a| running.artifacts.contains(a));
            if covered {
                // Dedupe: ride the in-flight materialization.
                if request.progress {
                    self.router.attach(&running.label, tx);
                }
                waiter.deduped = true;
                running.waiters.push(waiter);
                self.counters.deduped.fetch_add(1, Ordering::Relaxed);
                mpvar_trace::counter_add(names::SERVE_DEDUPED, 1);
            } else {
                // Batch: merge into the pending wave behind it.
                if !state.pending.is_empty() {
                    self.counters.batched.fetch_add(1, Ordering::Relaxed);
                    mpvar_trace::counter_add(names::SERVE_BATCHED, 1);
                }
                state.pending_artifacts.extend(request.artifacts.iter());
                state.pending.push(PendingJob {
                    ctx,
                    progress: request.progress,
                    waiter,
                });
            }
            return Ok(JobHandle {
                fingerprint,
                events: rx,
            });
        }

        // Cold: start a wave for this request alone.
        let label = self.next_label();
        if request.progress {
            self.router.attach(&label, tx);
        }
        state.running = Some(RunningWave {
            label: label.clone(),
            artifacts: request.artifacts.iter().copied().collect(),
            waiters: vec![waiter],
        });
        drop(waves);

        {
            let mut active = self.active.lock().expect("dispatcher active lock poisoned");
            *active += 1;
        }
        let dispatcher = Arc::clone(self);
        std::thread::Builder::new()
            .name(label.clone())
            .spawn(move || {
                dispatcher.run_waves(fingerprint, ctx, label);
                let mut active = dispatcher
                    .active
                    .lock()
                    .expect("dispatcher active lock poisoned");
                *active -= 1;
                dispatcher.idle.notify_all();
            })
            .expect("spawn wave thread");

        Ok(JobHandle {
            fingerprint,
            events: rx,
        })
    }

    /// Live counters under their canonical `serve.*` names.
    pub fn stats_snapshot(&self) -> BTreeMap<String, u64> {
        BTreeMap::from([
            (
                names::SERVE_REQUESTS.to_string(),
                self.counters.requests.load(Ordering::Relaxed),
            ),
            (
                names::SERVE_DEDUPED.to_string(),
                self.counters.deduped.load(Ordering::Relaxed),
            ),
            (
                names::SERVE_BATCHED.to_string(),
                self.counters.batched.load(Ordering::Relaxed),
            ),
            (
                names::SERVE_MATERIALIZATIONS.to_string(),
                self.counters.materializations.load(Ordering::Relaxed),
            ),
        ])
    }

    /// The full enriched stats payload: the counters of
    /// [`Dispatcher::stats_snapshot`] plus the telemetry's gauges,
    /// per-outcome latency quantiles, and snapshot-window ring.
    pub fn full_stats(&self) -> ServeStats {
        self.telemetry.snapshot(self.stats_snapshot())
    }

    /// The request-outcome telemetry accumulator (tests roll its
    /// windows deterministically through this).
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// Blocks until no wave is running (or the timeout passes);
    /// returns whether the dispatcher went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut active = self.active.lock().expect("dispatcher active lock poisoned");
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(active, deadline - now)
                .expect("dispatcher active lock poisoned");
            active = guard;
        }
        true
    }

    fn next_label(&self) -> String {
        format!("wave-{}", self.wave_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs the claimed wave, then keeps promoting the pending wave of
    /// the same fingerprint until none is left.
    fn run_waves(&self, fingerprint: u64, mut ctx: ExperimentContext, mut label: String) {
        loop {
            self.counters
                .materializations
                .fetch_add(1, Ordering::Relaxed);
            mpvar_trace::counter_add(names::SERVE_MATERIALIZATIONS, 1);

            let artifacts: Vec<ArtifactId> = {
                let waves = self.waves.lock().expect("dispatcher waves lock poisoned");
                let running = waves
                    .get(&fingerprint)
                    .and_then(|s| s.running.as_ref())
                    .expect("running wave state");
                running.artifacts.iter().copied().collect()
            };

            let study = Study::with_store(ctx.clone(), Arc::clone(&self.store))
                .with_span_label(label.clone());
            let rendered = study
                .materialize(&artifacts)
                .map(|values| {
                    artifacts
                        .iter()
                        .zip(values)
                        .map(|(id, value)| {
                            let art = value.render();
                            (
                                *id,
                                RenderedArtifact {
                                    id: art.id,
                                    text: art.text,
                                    csv: art.csv,
                                },
                            )
                        })
                        .collect::<BTreeMap<ArtifactId, RenderedArtifact>>()
                })
                .map_err(|e| e.to_string());

            // Classify the wave for telemetry: a wave that computed
            // nothing was answered entirely by the store (warm),
            // anything else is cold. Dedupe joiners are tagged on
            // their waiter instead.
            let wave_outcome = if study.session_stats().computed == 0 {
                RequestOutcome::WarmHit
            } else {
                RequestOutcome::Cold
            };

            // Drain this wave's waiters and promote the pending wave
            // under one lock, so a dedupe join can never slip between
            // "wave done" and "waiters answered".
            let (waiters, next) = {
                let mut waves = self.waves.lock().expect("dispatcher waves lock poisoned");
                let state = waves.get_mut(&fingerprint).expect("wave state");
                let finished = state.running.take().expect("running wave state");
                let next = if state.pending.is_empty() {
                    waves.remove(&fingerprint);
                    None
                } else {
                    let jobs = std::mem::take(&mut state.pending);
                    let artifacts = std::mem::take(&mut state.pending_artifacts);
                    let next_label = self.next_label();
                    let next_ctx = jobs[0].ctx.clone();
                    let mut waiters = Vec::with_capacity(jobs.len());
                    for job in jobs {
                        if job.progress {
                            self.router.attach(&next_label, job.waiter.tx.clone());
                        }
                        waiters.push(job.waiter);
                    }
                    state.running = Some(RunningWave {
                        label: next_label.clone(),
                        artifacts,
                        waiters,
                    });
                    Some((next_ctx, next_label))
                };
                (finished.waiters, next)
            };
            self.router.clear(&label);

            for waiter in waiters {
                let answer = match &rendered {
                    Ok(map) => Ok(waiter
                        .artifacts
                        .iter()
                        .map(|id| map[id].clone())
                        .collect::<Vec<_>>()),
                    Err(message) => Err(message.clone()),
                };
                // Latency is submit → answer, queueing included: it is
                // the latency the *client* experienced.
                match &answer {
                    Ok(_) => self.telemetry.record(
                        if waiter.deduped {
                            RequestOutcome::Deduped
                        } else {
                            wave_outcome
                        },
                        waiter.submitted.elapsed(),
                    ),
                    Err(_) => self.telemetry.record_error(),
                }
                // A waiter that hung up just misses its answer.
                let _ = waiter.tx.send(JobEvent::Done(answer));
            }

            match next {
                Some((next_ctx, next_label)) => {
                    ctx = next_ctx;
                    label = next_label;
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ContextSpec, Preset};
    use mpvar_study::MemoryStore;
    use std::sync::mpsc::RecvTimeoutError;

    fn quick_request(id: &str, artifacts: Vec<ArtifactId>) -> AnalysisRequest {
        AnalysisRequest {
            id: id.to_string(),
            artifacts,
            context: ContextSpec {
                preset: Preset::Quick,
                sizes: Some(vec![8]),
                trials: Some(120),
                seed: Some(11),
                threads: Some(1),
            },
            progress: false,
        }
    }

    fn dispatcher() -> Arc<Dispatcher> {
        Arc::new(Dispatcher::new(
            Arc::new(MemoryStore::new()),
            Arc::new(ProgressRouter::new()),
        ))
    }

    fn done_of(handle: &JobHandle) -> Result<Vec<RenderedArtifact>, String> {
        loop {
            match handle.events.recv_timeout(Duration::from_secs(120)) {
                Ok(JobEvent::Done(answer)) => return answer,
                Ok(JobEvent::Progress(_)) => continue,
                Err(RecvTimeoutError::Timeout) => panic!("job timed out"),
                Err(RecvTimeoutError::Disconnected) => panic!("job channel closed without Done"),
            }
        }
    }

    #[test]
    fn answers_each_waiter_with_its_own_artifacts_in_request_order() {
        let dispatcher = dispatcher();
        let a = dispatcher
            .submit(&quick_request(
                "a",
                vec![ArtifactId::Table3, ArtifactId::Table1],
            ))
            .expect("submit a");
        let b = dispatcher
            .submit(&quick_request("b", vec![ArtifactId::Table1]))
            .expect("submit b");
        let got_a = done_of(&a).expect("a succeeds");
        let got_b = done_of(&b).expect("b succeeds");
        assert_eq!(
            got_a.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["table3", "table1"]
        );
        assert_eq!(
            got_b.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["table1"]
        );
        // Same artifact answered to both waves must render identically
        // (second wave is a pure cache replay of the shared store).
        let a_table1 = got_a.iter().find(|r| r.id == "table1").expect("table1");
        assert_eq!(a_table1, &got_b[0]);
        assert!(dispatcher.wait_idle(Duration::from_secs(60)));
        let stats = dispatcher.stats_snapshot();
        assert_eq!(stats[names::SERVE_REQUESTS], 2);
    }

    #[test]
    fn progress_flag_without_a_collector_still_delivers_done() {
        // Tracing is off (no collector installed in this test), so a
        // progress=true job must get zero progress events but still
        // its Done — progress is observational, never load-bearing.
        let dispatcher = dispatcher();
        let mut request = quick_request("p", vec![ArtifactId::Table1]);
        request.progress = true;
        let handle = dispatcher.submit(&request).expect("submit");
        match handle.events.recv_timeout(Duration::from_secs(120)) {
            Ok(JobEvent::Done(answer)) => {
                let artifacts = answer.expect("job succeeds");
                assert_eq!(artifacts.len(), 1);
                assert_eq!(artifacts[0].id, "table1");
            }
            other => panic!("expected Done first, got {other:?}"),
        }
        assert!(dispatcher.wait_idle(Duration::from_secs(60)));
        assert_eq!(
            dispatcher.stats_snapshot()[names::SERVE_MATERIALIZATIONS],
            1
        );
    }
}
