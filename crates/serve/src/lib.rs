//! # mpvar-serve — the analysis job server
//!
//! Long-running front end over the `mpvar-study` artifact graph and
//! its persistent [`ArtifactStore`]: clients submit analysis requests
//! over newline-delimited JSON (`mpvar-serve/v1`), the server
//! materializes them against one shared store, and three layers keep
//! redundant work from ever running:
//!
//! 1. **Dedupe** — a request identical-in-identity to one already in
//!    flight (same context fingerprint, artifact set covered) attaches
//!    to the running materialization instead of starting its own.
//! 2. **Batching** — compatible cold requests that arrive while a wave
//!    is running merge into one shared follow-up wave.
//! 3. **The store** — everything else is answered by the
//!    content-addressed cache (in-memory or on-disk), so a restarted
//!    server replays warm requests without touching a solver.
//!
//! Progress streams live: each wave's `Study` is tagged with a unique
//! session label, a [`ProgressRouter`] trace sink routes the
//! resulting `study_node` span completions back to the requests that
//! caused them, and the server forwards them as `progress` lines.
//!
//! Everything is std-only (threads + channels + `TcpListener`), like
//! the rest of the workspace.
//!
//! ## Wiring
//!
//! The three pieces compose explicitly so embedders control tracing:
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use mpvar_serve::{Client, Dispatcher, ProgressRouter, Server};
//! use mpvar_serve::protocol::{AnalysisRequest, ContextSpec};
//! use mpvar_study::{ArtifactId, DiskStore};
//! use mpvar_trace::Collector;
//!
//! let store = Arc::new(DiskStore::open("artifact-store")?);
//! let router = Arc::new(ProgressRouter::new());
//! let dispatcher = Arc::new(Dispatcher::new(store, Arc::clone(&router)));
//! // Progress only flows while a collector carrying the router is
//! // installed; results never depend on it.
//! let collector = Collector::new(vec![router]);
//! let _session = collector.install();
//! let server = Server::start("127.0.0.1:0", dispatcher)?;
//!
//! let mut client = Client::connect(server.addr())?;
//! let artifacts = client.request(
//!     AnalysisRequest {
//!         id: "r1".into(),
//!         artifacts: vec![ArtifactId::Table3],
//!         context: ContextSpec::default(),
//!         progress: true,
//!     },
//!     |event| eprintln!("{event:?}"),
//! )?;
//! println!("{}", artifacts[0].text);
//! server.stop();
//! server.join(Duration::from_secs(60));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ArtifactStore`]: mpvar_study::ArtifactStore
//! [`ProgressRouter`]: crate::progress::ProgressRouter

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod dispatch;
pub mod progress;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use dispatch::{Dispatcher, JobHandle};
pub use progress::{JobEvent, NodeProgress, ProgressRouter};
pub use protocol::{
    validate_serve_jsonl, AnalysisRequest, ClientMessage, ContextSpec, Preset, ProtocolError,
    RenderedArtifact, ServeLog, ServeMessage, ServerMessage, SCHEMA_ID,
};
pub use server::Server;
pub use telemetry::{LatencyStat, RequestOutcome, ServeStats, ServeTelemetry, StatsWindow};
