//! Routing of `mpvar-trace` span completions to the requests that
//! caused them.
//!
//! Spans are only delivered when they *complete* (children before
//! parents), so a live trace stream cannot be demultiplexed by
//! parent-chain walking — the parent `study_materialize` span has not
//! arrived yet while its nodes are finishing. Instead every serve wave
//! runs its `Study` with a unique [`Study::with_span_label`] label,
//! which stamps a `session` field on each `study_node` span, and this
//! sink routes on that field.
//!
//! [`Study::with_span_label`]: mpvar_study::Study::with_span_label

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use mpvar_trace::{names, MetricsSnapshot, SpanRecord, TraceSink};

use crate::protocol::RenderedArtifact;

/// One artifact-graph node finishing inside a materialization wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProgress {
    /// Artifact name.
    pub artifact: String,
    /// `computed` or `cache_hit`.
    pub outcome: String,
    /// Node wall-clock, nanoseconds (0 for cache hits).
    pub dur_ns: u64,
}

/// Everything a submitted job can emit, in delivery order: zero or
/// more progress events, then exactly one `Done`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// A node of the wave serving this job finished.
    Progress(NodeProgress),
    /// The job finished: the requested artifacts in request order, or
    /// a failure description.
    Done(Result<Vec<RenderedArtifact>, String>),
}

/// A [`TraceSink`] that forwards `study_node` completions to the job
/// channels subscribed under the emitting wave's session label.
///
/// Install it in the process [`Collector`] alongside any other sinks;
/// without an installed collector tracing is off and no progress
/// flows (results are unaffected — progress is purely observational).
///
/// [`Collector`]: mpvar_trace::Collector
#[derive(Debug, Default)]
pub struct ProgressRouter {
    routes: Mutex<HashMap<String, Vec<Sender<JobEvent>>>>,
}

impl ProgressRouter {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes `tx` to node completions of the wave labelled
    /// `label`. A subscriber joining mid-wave only sees the nodes that
    /// finish after it attaches.
    pub fn attach(&self, label: &str, tx: Sender<JobEvent>) {
        self.routes
            .lock()
            .expect("progress routes lock poisoned")
            .entry(label.to_string())
            .or_default()
            .push(tx);
    }

    /// Drops every subscription for `label` (called when its wave
    /// completes; labels are never reused).
    pub fn clear(&self, label: &str) {
        self.routes
            .lock()
            .expect("progress routes lock poisoned")
            .remove(label);
    }
}

impl TraceSink for ProgressRouter {
    fn on_span(&self, span: &SpanRecord) {
        if span.name != names::SPAN_STUDY_NODE {
            return;
        }
        let Some(label) = span.str_field("session") else {
            return;
        };
        let (Some(artifact), Some(outcome)) =
            (span.str_field("artifact"), span.str_field("outcome"))
        else {
            return;
        };
        let mut routes = self.routes.lock().expect("progress routes lock poisoned");
        let Some(subscribers) = routes.get_mut(label) else {
            return;
        };
        let event = NodeProgress {
            artifact: artifact.to_string(),
            outcome: outcome.to_string(),
            dur_ns: span.dur_ns,
        };
        // A subscriber whose receiver is gone (request already
        // answered, connection dropped) just falls out of the route.
        subscribers.retain(|tx| tx.send(JobEvent::Progress(event.clone())).is_ok());
    }

    fn on_flush(&self, _metrics: &MetricsSnapshot) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_trace::{FieldValue, SpanRecord};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn node_span(label: &str, artifact: &'static str, outcome: &'static str) -> SpanRecord {
        SpanRecord::completed(
            names::SPAN_STUDY_NODE,
            vec![
                ("artifact", FieldValue::from(artifact)),
                ("outcome", FieldValue::from(outcome)),
                ("session", FieldValue::from(label.to_string())),
            ],
            Duration::from_nanos(42),
        )
    }

    #[test]
    fn routes_by_session_label_and_drops_dead_subscribers() {
        let router = ProgressRouter::new();
        let (tx_a, rx_a) = channel();
        let (tx_b, rx_b) = channel();
        router.attach("wave-1", tx_a);
        router.attach("wave-2", tx_b);

        router.on_span(&node_span("wave-1", "table1", "computed"));
        let JobEvent::Progress(event) = rx_a.try_recv().expect("wave-1 event") else {
            panic!("progress expected");
        };
        assert_eq!(event.artifact, "table1");
        assert_eq!(event.outcome, "computed");
        assert_eq!(event.dur_ns, 42);
        assert!(rx_b.try_recv().is_err(), "wave-2 must not see wave-1 spans");

        // Unlabelled and non-node spans are ignored.
        router.on_span(&SpanRecord::completed(
            names::SPAN_STUDY_NODE,
            vec![],
            Duration::ZERO,
        ));
        router.on_span(&SpanRecord::completed(
            names::SPAN_MC_WAVE,
            vec![("session", FieldValue::from("wave-1"))],
            Duration::ZERO,
        ));
        assert!(rx_a.try_recv().is_err());

        // A dropped receiver self-heals out of the route table.
        drop(rx_a);
        router.on_span(&node_span("wave-1", "fig4", "cache_hit"));
        router.clear("wave-2");
        router.on_span(&node_span("wave-2", "fig4", "computed"));
        assert!(rx_b.try_recv().is_err(), "cleared route must be silent");
    }
}
