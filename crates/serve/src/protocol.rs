//! The `mpvar-serve/v1` wire protocol: versioned request / response /
//! progress message types, their newline-delimited JSON encoding, and
//! a transcript validator mirroring `mpvar-trace/v1`'s.
//!
//! Every message is one line of JSON and carries
//! `"schema":"mpvar-serve/v1"`, so a transcript is self-describing
//! line by line (unlike a trace document, a serve conversation has no
//! natural "first line" once client and server streams are
//! interleaved).
//!
//! Client → server:
//!
//! ```text
//! {"schema":"mpvar-serve/v1","type":"request","id":"r1",
//!  "artifacts":["table3"],"context":{"preset":"quick","sizes":[8],
//!  "trials":500,"seed":7,"threads":2},"progress":true}
//! {"schema":"mpvar-serve/v1","type":"stats"}
//! {"schema":"mpvar-serve/v1","type":"shutdown"}
//! ```
//!
//! Server → client (all tagged with the request `id` they answer):
//!
//! ```text
//! {"schema":"mpvar-serve/v1","type":"ack","id":"r1","fingerprint":"91ab...cd"}
//! {"schema":"mpvar-serve/v1","type":"progress","id":"r1",
//!  "artifact":"table1","outcome":"computed","dur_ns":81000000}
//! {"schema":"mpvar-serve/v1","type":"result","id":"r1",
//!  "artifacts":[{"id":"table3","text":"...","csv":"..."}]}
//! {"schema":"mpvar-serve/v1","type":"error","id":"r1","message":"..."}
//! {"schema":"mpvar-serve/v1","type":"stats","counters":{"serve.requests":4},
//!  "gauges":{"serve.cache_hit_rate":0.75,"serve.dedupe_ratio":0.2},
//!  "latencies":{"warm_hit":{"bounds":[...],"counts":[...],"underflow":0,
//!  "overflow":0,"sum":81000,"count":3,"p50_ns":21000,"p95_ns":60000,
//!  "p99_ns":71000}},"windows":[{"seq":0,"requests":4,"warm_hit":3,
//!  "deduped":0,"cold":1,"errors":0}]}
//! ```
//!
//! Parsing is strict where it matters (unknown artifact names, bad
//! types, wrong schema are errors) and closed-world: an unknown
//! message `type` is rejected, so a v2 speaker fails loudly instead of
//! being half-understood.

use std::collections::BTreeMap;
use std::fmt;

use mpvar_core::experiments::ExperimentContext;
use mpvar_core::CoreError;
use mpvar_study::ArtifactId;
use mpvar_trace::json::{
    get_f64, get_f64_array, get_str, get_str_array, get_u64, get_u64_array, parse_json,
    push_json_f64, push_json_str, Json, Obj,
};
use mpvar_trace::metrics::HistogramMetric;

use crate::telemetry::{LatencyStat, ServeStats, StatsWindow};

/// Schema identifier carried by every `mpvar-serve/v1` message.
pub const SCHEMA_ID: &str = "mpvar-serve/v1";

/// A protocol parse/validation failure, with the 1-based line number
/// (0 when validating a single line).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// 1-based line number of the offending line (0 for single-line
    /// parses).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve protocol error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------
// Context specification
// ---------------------------------------------------------------------

/// The experiment preset a request starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preset {
    /// `ExperimentContext::quick()` scale (seconds).
    #[default]
    Quick,
    /// The paper's full design of experiments (minutes).
    Paper,
}

/// The context knobs a request may override, applied on top of the
/// preset. Everything here is part of the server-side cache identity
/// except `threads` (results are bit-identical at any thread count, so
/// thread count is deliberately not result-affecting).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContextSpec {
    /// Base preset (default: quick).
    pub preset: Preset,
    /// SRAM array sizes override.
    pub sizes: Option<Vec<usize>>,
    /// Monte-Carlo trial count override.
    pub trials: Option<usize>,
    /// Monte-Carlo seed override.
    pub seed: Option<u64>,
    /// Worker-thread count for this materialization.
    pub threads: Option<usize>,
}

impl ContextSpec {
    /// Builds the [`ExperimentContext`] this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates context-construction failures (bad technology
    /// presets).
    pub fn build(&self) -> Result<ExperimentContext, CoreError> {
        let mut builder = ExperimentContext::builder()?;
        builder = match self.preset {
            Preset::Quick => builder.quick_preset(),
            Preset::Paper => builder.paper_preset(),
        };
        if let Some(sizes) = &self.sizes {
            builder = builder.sizes(sizes.clone());
        }
        if let Some(trials) = self.trials {
            builder = builder.trials(trials);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        Ok(builder.build())
    }

    fn encode(&self, out: &mut String) {
        out.push_str("{\"preset\":");
        push_json_str(
            out,
            match self.preset {
                Preset::Quick => "quick",
                Preset::Paper => "paper",
            },
        );
        if let Some(sizes) = &self.sizes {
            out.push_str(",\"sizes\":[");
            for (i, n) in sizes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
            out.push(']');
        }
        if let Some(trials) = self.trials {
            out.push_str(&format!(",\"trials\":{trials}"));
        }
        if let Some(seed) = self.seed {
            out.push_str(&format!(",\"seed\":{seed}"));
        }
        if let Some(threads) = self.threads {
            out.push_str(&format!(",\"threads\":{threads}"));
        }
        out.push('}');
    }

    fn decode(obj: &Obj) -> Result<ContextSpec, String> {
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "preset" | "sizes" | "trials" | "seed" | "threads"
            ) {
                return Err(format!("unknown context knob `{key}`"));
            }
        }
        let preset = match obj.get("preset") {
            None => Preset::Quick,
            Some(Json::Str(s)) if s == "quick" => Preset::Quick,
            Some(Json::Str(s)) if s == "paper" => Preset::Paper,
            Some(Json::Str(s)) => return Err(format!("unknown preset `{s}`")),
            Some(_) => return Err("`preset` must be a string".to_string()),
        };
        let sizes = match obj.get("sizes") {
            None => None,
            Some(_) => {
                let raw = mpvar_trace::json::get_u64_array(obj, "sizes")?;
                if raw.is_empty() {
                    return Err("`sizes` must not be empty".to_string());
                }
                Some(raw.into_iter().map(|n| n as usize).collect())
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(_) => get_u64(obj, key).map(Some),
            }
        };
        Ok(ContextSpec {
            preset,
            sizes,
            trials: opt_u64("trials")?.map(|n| n as usize),
            seed: opt_u64("seed")?,
            threads: opt_u64("threads")?.map(|n| n as usize),
        })
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// An analysis request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    /// Client-chosen correlation id; every server message answering
    /// this request echoes it.
    pub id: String,
    /// The artifacts to materialize, in response order.
    pub artifacts: Vec<ArtifactId>,
    /// Context knobs.
    pub context: ContextSpec,
    /// Whether to stream per-node progress events.
    pub progress: bool,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Submit an analysis request.
    Request(AnalysisRequest),
    /// Ask for the server's live dispatch counters.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// One rendered artifact in a result message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedArtifact {
    /// Artifact name (as in [`ArtifactId::name`]).
    pub id: String,
    /// Rendered report text.
    pub text: String,
    /// Rendered CSV.
    pub csv: String,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// The request was accepted; materialization is scheduled.
    Ack {
        /// Echoed request id.
        id: String,
        /// Hex context fingerprint governing cache identity.
        fingerprint: String,
    },
    /// One artifact-graph node finished (or was served from cache)
    /// while materializing this request.
    Progress {
        /// Echoed request id.
        id: String,
        /// Node name.
        artifact: String,
        /// `computed` or `cache_hit`.
        outcome: String,
        /// Node wall-clock, nanoseconds (0 for cache hits).
        dur_ns: u64,
    },
    /// The request finished: every requested artifact, rendered, in
    /// request order.
    Result {
        /// Echoed request id.
        id: String,
        /// Rendered artifacts.
        artifacts: Vec<RenderedArtifact>,
    },
    /// The request (or the line that tried to be one) failed.
    Error {
        /// Echoed request id ("" when the line was unparseable).
        id: String,
        /// Failure description.
        message: String,
    },
    /// Live dispatch telemetry: counters plus (since the telemetry
    /// extension) gauges, per-outcome latency histograms with derived
    /// quantiles, and the recent snapshot-window ring. The enriched
    /// fields are optional on the wire — a `{"counters":{...}}`-only
    /// line from an older server still parses, with the extras empty.
    Stats {
        /// The full stats payload.
        stats: ServeStats,
    },
}

impl ClientMessage {
    /// Encodes the message as one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"schema\":");
        push_json_str(&mut out, SCHEMA_ID);
        match self {
            ClientMessage::Request(req) => {
                out.push_str(",\"type\":\"request\",\"id\":");
                push_json_str(&mut out, &req.id);
                out.push_str(",\"artifacts\":[");
                for (i, a) in req.artifacts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, a.name());
                }
                out.push_str("],\"context\":");
                req.context.encode(&mut out);
                out.push_str(&format!(",\"progress\":{}", req.progress));
            }
            ClientMessage::Stats => out.push_str(",\"type\":\"stats\""),
            ClientMessage::Shutdown => out.push_str(",\"type\":\"shutdown\""),
        }
        out.push_str("}\n");
        out
    }

    /// Parses one client line.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<ClientMessage, String> {
        let obj = parse_object(line)?;
        match get_str(&obj, "type")? {
            "request" => {
                let id = get_str(&obj, "id")?.to_string();
                if id.is_empty() {
                    return Err("request `id` must not be empty".to_string());
                }
                let names = get_str_array(&obj, "artifacts")?;
                if names.is_empty() {
                    return Err("`artifacts` must not be empty".to_string());
                }
                let artifacts = names
                    .iter()
                    .map(|name| {
                        ArtifactId::try_parse(name)
                            .map_err(|_| format!("unknown artifact `{name}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let context = match obj.get("context") {
                    None => ContextSpec::default(),
                    Some(Json::Obj(ctx)) => ContextSpec::decode(ctx)?,
                    Some(_) => return Err("`context` must be an object".to_string()),
                };
                let progress = match obj.get("progress") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("`progress` must be a boolean".to_string()),
                };
                Ok(ClientMessage::Request(AnalysisRequest {
                    id,
                    artifacts,
                    context,
                    progress,
                }))
            }
            "stats" => Ok(ClientMessage::Stats),
            "shutdown" => Ok(ClientMessage::Shutdown),
            other => Err(format!("unknown client message type `{other}`")),
        }
    }
}

impl ServerMessage {
    /// Encodes the message as one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"schema\":");
        push_json_str(&mut out, SCHEMA_ID);
        match self {
            ServerMessage::Ack { id, fingerprint } => {
                out.push_str(",\"type\":\"ack\",\"id\":");
                push_json_str(&mut out, id);
                out.push_str(",\"fingerprint\":");
                push_json_str(&mut out, fingerprint);
            }
            ServerMessage::Progress {
                id,
                artifact,
                outcome,
                dur_ns,
            } => {
                out.push_str(",\"type\":\"progress\",\"id\":");
                push_json_str(&mut out, id);
                out.push_str(",\"artifact\":");
                push_json_str(&mut out, artifact);
                out.push_str(",\"outcome\":");
                push_json_str(&mut out, outcome);
                out.push_str(&format!(",\"dur_ns\":{dur_ns}"));
            }
            ServerMessage::Result { id, artifacts } => {
                out.push_str(",\"type\":\"result\",\"id\":");
                push_json_str(&mut out, id);
                out.push_str(",\"artifacts\":[");
                for (i, a) in artifacts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"id\":");
                    push_json_str(&mut out, &a.id);
                    out.push_str(",\"text\":");
                    push_json_str(&mut out, &a.text);
                    out.push_str(",\"csv\":");
                    push_json_str(&mut out, &a.csv);
                    out.push('}');
                }
                out.push(']');
            }
            ServerMessage::Error { id, message } => {
                out.push_str(",\"type\":\"error\",\"id\":");
                push_json_str(&mut out, id);
                out.push_str(",\"message\":");
                push_json_str(&mut out, message);
            }
            ServerMessage::Stats { stats } => {
                out.push_str(",\"type\":\"stats\",\"counters\":{");
                for (i, (name, value)) in stats.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, name);
                    out.push_str(&format!(":{value}"));
                }
                out.push('}');
                if !stats.gauges.is_empty() {
                    out.push_str(",\"gauges\":{");
                    for (i, (name, value)) in stats.gauges.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_json_str(&mut out, name);
                        out.push(':');
                        push_json_f64(&mut out, *value);
                    }
                    out.push('}');
                }
                if !stats.latencies.is_empty() {
                    out.push_str(",\"latencies\":{");
                    for (i, (outcome, stat)) in stats.latencies.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_json_str(&mut out, outcome);
                        out.push(':');
                        encode_latency(&mut out, stat);
                    }
                    out.push('}');
                }
                if !stats.windows.is_empty() {
                    out.push_str(",\"windows\":[");
                    for (i, w) in stats.windows.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"seq\":{},\"requests\":{},\"warm_hit\":{},\
                             \"deduped\":{},\"cold\":{},\"errors\":{}}}",
                            w.seq, w.requests, w.warm_hit, w.deduped, w.cold, w.errors
                        ));
                    }
                    out.push(']');
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Parses one server line.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<ServerMessage, String> {
        let obj = parse_object(line)?;
        match get_str(&obj, "type")? {
            "ack" => Ok(ServerMessage::Ack {
                id: get_str(&obj, "id")?.to_string(),
                fingerprint: get_str(&obj, "fingerprint")?.to_string(),
            }),
            "progress" => {
                let outcome = get_str(&obj, "outcome")?.to_string();
                if outcome != "computed" && outcome != "cache_hit" {
                    return Err(format!("unknown progress outcome `{outcome}`"));
                }
                Ok(ServerMessage::Progress {
                    id: get_str(&obj, "id")?.to_string(),
                    artifact: get_str(&obj, "artifact")?.to_string(),
                    outcome,
                    dur_ns: get_u64(&obj, "dur_ns")?,
                })
            }
            "result" => {
                let Some(Json::Arr(items)) = obj.get("artifacts") else {
                    return Err("`artifacts` must be an array".to_string());
                };
                let artifacts = items
                    .iter()
                    .map(|item| {
                        let entry = item.as_object().ok_or("result artifacts must be objects")?;
                        let id = get_str(entry, "id")?;
                        ArtifactId::try_parse(id)
                            .map_err(|_| format!("unknown artifact `{id}`"))?;
                        Ok(RenderedArtifact {
                            id: id.to_string(),
                            text: get_str(entry, "text")?.to_string(),
                            csv: get_str(entry, "csv")?.to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ServerMessage::Result {
                    id: get_str(&obj, "id")?.to_string(),
                    artifacts,
                })
            }
            "error" => Ok(ServerMessage::Error {
                id: get_str(&obj, "id")?.to_string(),
                message: get_str(&obj, "message")?.to_string(),
            }),
            "stats" => decode_stats(&obj).map(|stats| ServerMessage::Stats { stats }),
            other => Err(format!("unknown server message type `{other}`")),
        }
    }
}

fn encode_latency(out: &mut String, stat: &LatencyStat) {
    let h = &stat.histogram;
    out.push_str("{\"bounds\":[");
    for (i, b) in h.bounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f64(out, *b);
    }
    out.push_str("],\"counts\":[");
    for (i, c) in h.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_string());
    }
    out.push_str(&format!(
        "],\"underflow\":{},\"overflow\":{},\"sum\":",
        h.underflow, h.overflow
    ));
    push_json_f64(out, h.sum);
    out.push_str(&format!(",\"count\":{},\"p50_ns\":", h.count));
    push_json_f64(out, stat.p50_ns);
    out.push_str(",\"p95_ns\":");
    push_json_f64(out, stat.p95_ns);
    out.push_str(",\"p99_ns\":");
    push_json_f64(out, stat.p99_ns);
    out.push('}');
}

fn decode_stats(obj: &Obj) -> Result<ServeStats, String> {
    let Some(Json::Obj(raw)) = obj.get("counters") else {
        return Err("`counters` must be an object".to_string());
    };
    let mut counters = BTreeMap::new();
    for (name, value) in raw {
        let Json::Num(n) = value else {
            return Err(format!("counter `{name}` must be a number"));
        };
        counters.insert(
            name.clone(),
            mpvar_trace::json::to_u64(*n).map_err(|m| format!("counter `{name}`: {m}"))?,
        );
    }
    let mut gauges = BTreeMap::new();
    match obj.get("gauges") {
        None => {}
        Some(Json::Obj(raw)) => {
            for (name, value) in raw {
                let Json::Num(n) = value else {
                    return Err(format!("gauge `{name}` must be a finite number"));
                };
                if !n.is_finite() {
                    return Err(format!("gauge `{name}` must be a finite number"));
                }
                gauges.insert(name.clone(), *n);
            }
        }
        Some(_) => return Err("`gauges` must be an object".to_string()),
    }
    let mut latencies = BTreeMap::new();
    match obj.get("latencies") {
        None => {}
        Some(Json::Obj(raw)) => {
            for (outcome, value) in raw {
                let entry = value
                    .as_object()
                    .ok_or_else(|| format!("latency `{outcome}` must be an object"))?;
                let stat =
                    decode_latency(entry).map_err(|m| format!("latency `{outcome}`: {m}"))?;
                latencies.insert(outcome.clone(), stat);
            }
        }
        Some(_) => return Err("`latencies` must be an object".to_string()),
    }
    let mut windows = Vec::new();
    match obj.get("windows") {
        None => {}
        Some(Json::Arr(items)) => {
            for (i, item) in items.iter().enumerate() {
                let entry = item
                    .as_object()
                    .ok_or_else(|| format!("window {i} must be an object"))?;
                windows.push(decode_window(entry).map_err(|m| format!("window {i}: {m}"))?);
            }
        }
        Some(_) => return Err("`windows` must be an array".to_string()),
    }
    Ok(ServeStats {
        counters,
        gauges,
        latencies,
        windows,
    })
}

fn decode_latency(entry: &Obj) -> Result<LatencyStat, String> {
    let bounds = get_f64_array(entry, "bounds")?;
    if bounds.len() < 2 {
        return Err("`bounds` needs at least two edges".to_string());
    }
    if bounds.iter().any(|b| !b.is_finite()) || bounds.windows(2).any(|w| w[0] >= w[1]) {
        return Err("`bounds` must be finite and strictly ascending".to_string());
    }
    let counts = get_u64_array(entry, "counts")?;
    if bounds.len() != counts.len() + 1 {
        return Err(format!(
            "{} bounds do not frame {} counts (need counts + 1)",
            bounds.len(),
            counts.len()
        ));
    }
    let underflow = get_u64(entry, "underflow")?;
    let overflow = get_u64(entry, "overflow")?;
    let count = get_u64(entry, "count")?;
    let bucketed: u64 = counts.iter().sum();
    if count != bucketed + underflow + overflow {
        return Err(format!(
            "`count` {count} disagrees with buckets + under/overflow \
             ({bucketed} + {underflow} + {overflow})"
        ));
    }
    let sum = get_f64(entry, "sum")?;
    if !sum.is_finite() {
        return Err("`sum` must be finite".to_string());
    }
    let quantile = |key: &str| -> Result<f64, String> {
        let v = get_f64(entry, key)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("`{key}` must be finite"))
        }
    };
    let (p50_ns, p95_ns, p99_ns) = (
        quantile("p50_ns")?,
        quantile("p95_ns")?,
        quantile("p99_ns")?,
    );
    if !(p50_ns <= p95_ns && p95_ns <= p99_ns) {
        return Err(format!(
            "quantiles out of order: p50 {p50_ns} / p95 {p95_ns} / p99 {p99_ns}"
        ));
    }
    Ok(LatencyStat {
        histogram: HistogramMetric {
            bounds,
            counts,
            underflow,
            overflow,
            sum,
            count,
        },
        p50_ns,
        p95_ns,
        p99_ns,
    })
}

fn decode_window(entry: &Obj) -> Result<StatsWindow, String> {
    let window = StatsWindow {
        seq: get_u64(entry, "seq")?,
        requests: get_u64(entry, "requests")?,
        warm_hit: get_u64(entry, "warm_hit")?,
        deduped: get_u64(entry, "deduped")?,
        cold: get_u64(entry, "cold")?,
        errors: get_u64(entry, "errors")?,
    };
    if window.warm_hit + window.deduped + window.cold != window.requests {
        return Err(format!(
            "`requests` {} disagrees with outcome counts ({} + {} + {})",
            window.requests, window.warm_hit, window.deduped, window.cold
        ));
    }
    Ok(window)
}

fn parse_object(line: &str) -> Result<Obj, String> {
    let value = parse_json(line.trim())?;
    let obj = value
        .as_object()
        .ok_or("line is not a JSON object")?
        .clone();
    let schema = get_str(&obj, "schema")?;
    if schema != SCHEMA_ID {
        return Err(format!(
            "unsupported schema `{schema}` (expected `{SCHEMA_ID}`)"
        ));
    }
    Ok(obj)
}

/// Either side's message, as it appears in a transcript.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMessage {
    /// A client → server line.
    Client(ClientMessage),
    /// A server → client line.
    Server(ServerMessage),
}

/// A parsed and validated `mpvar-serve/v1` transcript.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeLog {
    /// All messages, in file order.
    pub messages: Vec<ServeMessage>,
}

impl ServeLog {
    /// Number of `request` lines.
    pub fn requests(&self) -> usize {
        self.count(|m| matches!(m, ServeMessage::Client(ClientMessage::Request(_))))
    }

    /// Number of `result` lines.
    pub fn results(&self) -> usize {
        self.count(|m| matches!(m, ServeMessage::Server(ServerMessage::Result { .. })))
    }

    /// Number of `error` lines.
    pub fn errors(&self) -> usize {
        self.count(|m| matches!(m, ServeMessage::Server(ServerMessage::Error { .. })))
    }

    /// Number of `progress` lines.
    pub fn progress_events(&self) -> usize {
        self.count(|m| matches!(m, ServeMessage::Server(ServerMessage::Progress { .. })))
    }

    /// Number of server `stats` reply lines.
    pub fn stats_replies(&self) -> usize {
        self.count(|m| matches!(m, ServeMessage::Server(ServerMessage::Stats { .. })))
    }

    fn count(&self, pred: impl Fn(&ServeMessage) -> bool) -> usize {
        self.messages.iter().filter(|m| pred(m)).count()
    }
}

/// Parses and validates a newline-delimited `mpvar-serve/v1`
/// transcript (client lines, server lines, or a mix).
///
/// Every line must parse as *some* valid serve message and every
/// `result` must answer an acknowledged or at least seen request id
/// when requests are present in the transcript.
///
/// # Errors
///
/// [`ProtocolError`] with the first offending line.
pub fn validate_serve_jsonl(text: &str) -> Result<ServeLog, ProtocolError> {
    let mut log = ServeLog::default();
    let mut request_ids: Vec<String> = Vec::new();
    let mut saw_request_lines = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let err = |message: String| ProtocolError {
            line: line_no,
            message,
        };
        // A line must be a valid client message or a valid server
        // message; report the server-side diagnosis when neither (the
        // type tag picks the side, so only one parse can get past it).
        let message = match ClientMessage::parse(raw) {
            Ok(m) => {
                if let ClientMessage::Request(req) = &m {
                    saw_request_lines = true;
                    request_ids.push(req.id.clone());
                }
                ServeMessage::Client(m)
            }
            Err(client_err) => match ServerMessage::parse(raw) {
                Ok(m) => ServeMessage::Server(m),
                Err(server_err) => {
                    let detail = if client_err.contains("unknown client message type") {
                        server_err
                    } else {
                        client_err
                    };
                    return Err(err(detail));
                }
            },
        };
        if let ServeMessage::Server(ServerMessage::Result { id, .. }) = &message {
            if saw_request_lines && !request_ids.iter().any(|r| r == id) {
                return Err(err(format!("result answers unknown request id `{id}`")));
            }
        }
        log.messages.push(message);
    }
    if log.messages.is_empty() {
        return Err(ProtocolError {
            line: 1,
            message: "empty transcript".into(),
        });
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> AnalysisRequest {
        AnalysisRequest {
            id: "r1".to_string(),
            artifacts: vec![ArtifactId::Table3, ArtifactId::Table1],
            context: ContextSpec {
                preset: Preset::Quick,
                sizes: Some(vec![8, 16]),
                trials: Some(500),
                seed: Some(7),
                threads: Some(2),
            },
            progress: true,
        }
    }

    #[test]
    fn client_messages_round_trip() {
        for message in [
            ClientMessage::Request(sample_request()),
            ClientMessage::Stats,
            ClientMessage::Shutdown,
        ] {
            let line = message.to_line();
            assert_eq!(ClientMessage::parse(&line).as_ref(), Ok(&message), "{line}");
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let messages = [
            ServerMessage::Ack {
                id: "r1".into(),
                fingerprint: "00ab3f".into(),
            },
            ServerMessage::Progress {
                id: "r1".into(),
                artifact: "table1".into(),
                outcome: "computed".into(),
                dur_ns: 81_000_000,
            },
            ServerMessage::Result {
                id: "r1".into(),
                artifacts: vec![RenderedArtifact {
                    id: "table1".into(),
                    text: "line1\nline2 \"quoted\"".into(),
                    csv: "a,b\n1,2\n".into(),
                }],
            },
            ServerMessage::Error {
                id: "r9".into(),
                message: "unknown artifact `tableX`".into(),
            },
            ServerMessage::Stats {
                stats: ServeStats {
                    counters: BTreeMap::from([
                        ("serve.requests".to_string(), 4),
                        ("serve.materializations".to_string(), 2),
                    ]),
                    ..ServeStats::default()
                },
            },
        ];
        for message in messages {
            let line = message.to_line();
            assert_eq!(ServerMessage::parse(&line).as_ref(), Ok(&message), "{line}");
        }
    }

    /// An enriched stats payload as the telemetry produces it.
    fn sample_stats() -> ServeStats {
        use crate::telemetry::{RequestOutcome, ServeTelemetry};
        use std::time::Duration;
        let t = ServeTelemetry::with_window(Duration::from_secs(3600));
        t.record(RequestOutcome::Cold, Duration::from_millis(700));
        t.record(RequestOutcome::WarmHit, Duration::from_micros(40));
        t.record(RequestOutcome::WarmHit, Duration::from_micros(55));
        t.record(RequestOutcome::Deduped, Duration::from_millis(650));
        t.record_error();
        t.roll_window();
        t.record(RequestOutcome::WarmHit, Duration::from_micros(35));
        t.snapshot(BTreeMap::from([
            ("serve.requests".to_string(), 5),
            ("serve.dedup_hits".to_string(), 1),
        ]))
    }

    #[test]
    fn enriched_stats_round_trip_exactly() {
        let message = ServerMessage::Stats {
            stats: sample_stats(),
        };
        let line = message.to_line();
        assert_eq!(ServerMessage::parse(&line), Ok(message), "{line}");
    }

    #[test]
    fn stats_keys_encode_deterministically_sorted() {
        let line = ServerMessage::Stats {
            stats: sample_stats(),
        }
        .to_line();
        // Counters, gauges, and latency outcomes must appear in sorted
        // key order regardless of insertion history.
        let pos = |needle: &str| {
            line.find(needle)
                .unwrap_or_else(|| panic!("{needle} in {line}"))
        };
        assert!(pos("serve.dedup_hits") < pos("serve.requests"));
        assert!(pos("serve.cache_hit_rate") < pos("serve.dedupe_ratio"));
        assert!(pos("\"cold\"") < pos("\"deduped\""));
        assert!(pos("\"deduped\"") < pos("\"warm_hit\""));
        // Re-encoding the parse is byte-identical: the line is canonical.
        let reparsed = ServerMessage::parse(&line).expect("parses");
        assert_eq!(reparsed.to_line(), line);
    }

    #[test]
    fn stats_parser_rejects_malformed_telemetry_shapes() {
        let line = ServerMessage::Stats {
            stats: sample_stats(),
        }
        .to_line();
        // Quantiles out of order.
        let doctored = line.replace("\"p99_ns\":", "\"p99_ns\":0e0,\"ignored\":");
        assert!(
            ServerMessage::parse(&doctored)
                .unwrap_err()
                .contains("quantiles out of order"),
            "{doctored}"
        );
        // Window outcome counts that do not add up.
        let bad_window = line.replace("\"cold\":1", "\"cold\":2");
        assert!(ServerMessage::parse(&bad_window)
            .unwrap_err()
            .contains("disagrees with outcome counts"));
        // Histogram count that disagrees with its buckets.
        let bad_count = line.replace("\"underflow\":0", "\"underflow\":7");
        assert!(ServerMessage::parse(&bad_count)
            .unwrap_err()
            .contains("disagrees with buckets"));
        // Non-finite gauges are unrepresentable and rejected.
        let bad_gauge = line.replace(
            "\"serve.cache_hit_rate\":",
            "\"serve.cache_hit_rate\":null,\"x\":",
        );
        assert!(ServerMessage::parse(&bad_gauge)
            .unwrap_err()
            .contains("finite"));
        // Old counters-only stats lines still parse, extras empty.
        let legacy =
            r#"{"schema":"mpvar-serve/v1","type":"stats","counters":{"serve.requests":4}}"#;
        let ServerMessage::Stats { stats } = ServerMessage::parse(legacy).expect("legacy parses")
        else {
            panic!("stats expected");
        };
        assert_eq!(stats.counters["serve.requests"], 4);
        assert!(stats.gauges.is_empty() && stats.latencies.is_empty() && stats.windows.is_empty());
    }

    #[test]
    fn context_spec_rejects_unknown_knobs_and_bad_values() {
        let bad_knob = r#"{"schema":"mpvar-serve/v1","type":"request","id":"r","artifacts":["table1"],"context":{"turbo":true}}"#;
        assert!(ClientMessage::parse(bad_knob)
            .unwrap_err()
            .contains("unknown context knob"));
        let bad_artifact =
            r#"{"schema":"mpvar-serve/v1","type":"request","id":"r","artifacts":["tableX"]}"#;
        assert!(ClientMessage::parse(bad_artifact)
            .unwrap_err()
            .contains("unknown artifact"));
        let empty_id =
            r#"{"schema":"mpvar-serve/v1","type":"request","id":"","artifacts":["table1"]}"#;
        assert!(ClientMessage::parse(empty_id)
            .unwrap_err()
            .contains("must not be empty"));
        let wrong_schema = r#"{"schema":"mpvar-serve/v2","type":"stats"}"#;
        assert!(ClientMessage::parse(wrong_schema)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn context_spec_builds_the_context_it_names() {
        let spec = ContextSpec {
            preset: Preset::Quick,
            sizes: Some(vec![8]),
            trials: Some(200),
            seed: Some(9),
            threads: Some(2),
        };
        let ctx = spec.build().expect("context builds");
        assert_eq!(ctx.sizes, vec![8]);
        assert_eq!(ctx.mc.trials, 200);
        assert_eq!(ctx.mc.seed, 9);
    }

    #[test]
    fn transcript_validator_accepts_a_conversation_and_rejects_junk() {
        let mut transcript = String::new();
        transcript.push_str(&ClientMessage::Request(sample_request()).to_line());
        transcript.push_str(
            &ServerMessage::Ack {
                id: "r1".into(),
                fingerprint: "ab".into(),
            }
            .to_line(),
        );
        transcript.push_str(
            &ServerMessage::Result {
                id: "r1".into(),
                artifacts: vec![],
            }
            .to_line(),
        );
        let log = validate_serve_jsonl(&transcript).expect("valid transcript");
        assert_eq!(log.requests(), 1);
        assert_eq!(log.results(), 1);
        assert_eq!(log.errors(), 0);

        let orphan = format!(
            "{}{}",
            ClientMessage::Request(sample_request()).to_line(),
            ServerMessage::Result {
                id: "r2".into(),
                artifacts: vec![],
            }
            .to_line()
        );
        assert!(validate_serve_jsonl(&orphan)
            .unwrap_err()
            .message
            .contains("unknown request id"));

        assert!(validate_serve_jsonl("not json\n").is_err());
        assert!(validate_serve_jsonl("").is_err());
        let unknown_type = r#"{"schema":"mpvar-serve/v1","type":"frobnicate"}"#;
        assert!(validate_serve_jsonl(unknown_type).is_err());
    }
}
