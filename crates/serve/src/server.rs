//! The TCP front end: newline-delimited `mpvar-serve/v1` over a
//! socket, one reader and one writer thread per connection, one
//! forwarder thread per in-flight request.
//!
//! The server itself is transport only — all scheduling lives in
//! [`Dispatcher`]. Any number of connections share one dispatcher, so
//! dedupe and batching work across clients, not just across requests
//! on one socket.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::dispatch::{Dispatcher, JobHandle};
use crate::progress::JobEvent;
use crate::protocol::{ClientMessage, ServerMessage};

/// A running serve endpoint. Dropping the handle does **not** stop the
/// server; call [`Server::stop`] (or send a `shutdown` message) and
/// then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    dispatcher: Arc<Dispatcher>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections against `dispatcher`.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        dispatcher: Arc<Dispatcher>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept + poll so a `shutdown` message (which
        // only sets a flag) actually terminates the loop.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_dispatcher = Arc::clone(&dispatcher);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || loop {
                if accept_stop.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let dispatcher = Arc::clone(&accept_dispatcher);
                        let stop = Arc::clone(&accept_stop);
                        let _ = std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || serve_connection(stream, &dispatcher, &stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            stop,
            accept_thread,
            dispatcher,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler behind this endpoint.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Asks the accept loop to exit (idempotent; in-flight
    /// connections finish their current requests).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the accept loop to exit, then for running waves to
    /// drain (bounded by `timeout`); returns whether the dispatcher
    /// went idle.
    pub fn join(self, timeout: Duration) -> bool {
        let _ = self.accept_thread.join();
        self.dispatcher.wait_idle(timeout)
    }
}

/// One connection: reader loop on the calling thread, writer thread
/// serializing all outbound lines, a forwarder thread per request.
fn serve_connection(stream: TcpStream, dispatcher: &Arc<Dispatcher>, stop: &Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (out, outbox) = channel::<String>();
    let mut write_half = stream;
    let writer = std::thread::Builder::new()
        .name("serve-write".to_string())
        .spawn(move || {
            // Exits when every sender (reader + forwarders) is gone or
            // the peer stops reading.
            for line in outbox {
                if write_half.write_all(line.as_bytes()).is_err() || write_half.flush().is_err() {
                    return;
                }
            }
        })
        .expect("spawn writer thread");

    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match ClientMessage::parse(&line) {
            Err(message) => send(
                &out,
                &ServerMessage::Error {
                    id: String::new(),
                    message,
                },
            ),
            Ok(ClientMessage::Stats) => send(
                &out,
                &ServerMessage::Stats {
                    stats: dispatcher.full_stats(),
                },
            ),
            Ok(ClientMessage::Shutdown) => {
                stop.store(true, Ordering::Relaxed);
                break;
            }
            Ok(ClientMessage::Request(request)) => match dispatcher.submit(&request) {
                Err(message) => send(
                    &out,
                    &ServerMessage::Error {
                        id: request.id,
                        message,
                    },
                ),
                Ok(handle) => {
                    send(
                        &out,
                        &ServerMessage::Ack {
                            id: request.id.clone(),
                            fingerprint: format!("{:016x}", handle.fingerprint),
                        },
                    );
                    spawn_forwarder(request.id, handle, out.clone());
                }
            },
        }
    }
    drop(out);
    let _ = writer.join();
}

/// Pumps one job's events into the connection's outbox until `Done`.
fn spawn_forwarder(id: String, handle: JobHandle, out: Sender<String>) {
    let _ = std::thread::Builder::new()
        .name("serve-job".to_string())
        .spawn(move || {
            for event in handle.events {
                match event {
                    JobEvent::Progress(p) => send(
                        &out,
                        &ServerMessage::Progress {
                            id: id.clone(),
                            artifact: p.artifact,
                            outcome: p.outcome,
                            dur_ns: p.dur_ns,
                        },
                    ),
                    JobEvent::Done(Ok(artifacts)) => {
                        send(&out, &ServerMessage::Result { id, artifacts });
                        return;
                    }
                    JobEvent::Done(Err(message)) => {
                        send(&out, &ServerMessage::Error { id, message });
                        return;
                    }
                }
            }
        });
}

fn send(out: &Sender<String>, message: &ServerMessage) {
    // A closed outbox means the connection is gone; nothing to do.
    let _ = out.send(message.to_line());
}
