//! Live serve telemetry: per-outcome request latency histograms,
//! derived gauges, and a fixed-size ring of periodic snapshot windows.
//!
//! Every answered request is classified into one of three
//! **outcomes**:
//!
//! * `warm_hit` — its wave ran zero producers (the store answered
//!   everything);
//! * `deduped` — it joined another request's in-flight wave;
//! * `cold` — its wave actually computed at least one artifact.
//!
//! Latency (submit → answer, queue time included) is recorded into a
//! log-scale histogram per outcome (1-2-5 bucket edges from 1 µs to
//! 100 s), from which [`ServeStats`] derives p50/p95/p99 via the
//! shared [`HistogramMetric::quantile`]. Two gauges summarize the
//! cache economics — `serve.cache_hit_rate` (warm hits over answered
//! waves) and `serve.dedupe_ratio` (deduped over all answered) — and
//! a ring of the last [`RING_WINDOWS`] per-window count snapshots
//! gives "last N windows" trends without a timer thread: windows roll
//! lazily whenever the telemetry is touched past the window length.
//!
//! Everything here is observational: recording takes one short mutex
//! hold on the answer path, and nothing feeds back into scheduling.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mpvar_trace::metrics::HistogramMetric;
use mpvar_trace::sink::fmt_ns;

/// Log-scale latency bucket edges, nanoseconds: 1-2-5 per decade from
/// 1 µs to 100 s. Fine enough that interpolated quantiles are tight,
/// coarse enough that a snapshot stays one JSON line.
pub const LATENCY_BOUNDS_NS: [f64; 25] = [
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
    2e9, 5e9, 1e10, 2e10, 5e10, 1e11,
];

/// How many closed snapshot windows the ring retains.
pub const RING_WINDOWS: usize = 16;

/// Default wall-clock length of one snapshot window.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(60);

/// How an answered request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The wave ran entirely from cache (zero producers).
    WarmHit,
    /// The request rode another request's in-flight wave.
    Deduped,
    /// The wave computed at least one artifact.
    Cold,
}

impl RequestOutcome {
    /// The wire/key name of the outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestOutcome::WarmHit => "warm_hit",
            RequestOutcome::Deduped => "deduped",
            RequestOutcome::Cold => "cold",
        }
    }

    /// All outcomes, in wire-name order.
    pub const ALL: [RequestOutcome; 3] = [
        RequestOutcome::Cold,
        RequestOutcome::Deduped,
        RequestOutcome::WarmHit,
    ];
}

/// One snapshot window's request counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsWindow {
    /// Monotone window sequence number (0 = first window since start).
    pub seq: u64,
    /// Requests answered in the window.
    pub requests: u64,
    /// ... of which warm hits.
    pub warm_hit: u64,
    /// ... of which deduped.
    pub deduped: u64,
    /// ... of which cold.
    pub cold: u64,
    /// Requests that failed (context errors, wave failures).
    pub errors: u64,
}

/// One outcome's latency distribution plus derived quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStat {
    /// The full histogram (shared log-scale bounds).
    pub histogram: HistogramMetric,
    /// Interpolated median latency, nanoseconds.
    pub p50_ns: f64,
    /// Interpolated 95th-percentile latency, nanoseconds.
    pub p95_ns: f64,
    /// Interpolated 99th-percentile latency, nanoseconds.
    pub p99_ns: f64,
}

impl LatencyStat {
    /// Derives the quantile triplet from a histogram.
    pub fn from_histogram(histogram: HistogramMetric) -> LatencyStat {
        let q = |q: f64| histogram.quantile(q).unwrap_or(0.0);
        LatencyStat {
            p50_ns: q(0.50),
            p95_ns: q(0.95),
            p99_ns: q(0.99),
            histogram,
        }
    }
}

/// The full enriched `stats` payload: counters, gauges, per-outcome
/// latencies, and the window ring (oldest first, current window last).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Dispatch counters (`serve.*` names).
    pub counters: BTreeMap<String, u64>,
    /// Derived gauges (`serve.cache_hit_rate`, `serve.dedupe_ratio`),
    /// always finite.
    pub gauges: BTreeMap<String, f64>,
    /// Latency distributions keyed by outcome name; only outcomes
    /// that answered at least one request appear.
    pub latencies: BTreeMap<String, LatencyStat>,
    /// Closed windows oldest-first, then the still-open current
    /// window.
    pub windows: Vec<StatsWindow>,
}

impl ServeStats {
    /// Renders the human report `repro client --stats` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serve stats:\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name:<28} {:.1}%", value * 100.0);
        }
        for (outcome, stat) in &self.latencies {
            let _ = writeln!(
                out,
                "  latency [{outcome:<8}] n={:<5} p50 {:>9}  p95 {:>9}  p99 {:>9}",
                stat.histogram.count,
                fmt_ns(stat.p50_ns as u64),
                fmt_ns(stat.p95_ns as u64),
                fmt_ns(stat.p99_ns as u64),
            );
        }
        if !self.windows.is_empty() {
            out.push_str("  windows (oldest -> current):\n");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "    #{:<4} {:>4} req  ({} cold, {} deduped, {} warm, {} errors)",
                    w.seq, w.requests, w.cold, w.deduped, w.warm_hit, w.errors
                );
            }
        }
        out
    }
}

struct TelemetryState {
    latencies: BTreeMap<&'static str, HistogramMetric>,
    ring: VecDeque<StatsWindow>,
    current: StatsWindow,
    window_started: Instant,
}

/// The accumulator one [`crate::Dispatcher`] owns.
pub struct ServeTelemetry {
    window_len: Duration,
    inner: Mutex<TelemetryState>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeTelemetry {
    /// Telemetry with the default window length.
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// Telemetry whose snapshot windows roll every `window_len`
    /// (tests use short windows).
    pub fn with_window(window_len: Duration) -> Self {
        ServeTelemetry {
            window_len,
            inner: Mutex::new(TelemetryState {
                latencies: BTreeMap::new(),
                ring: VecDeque::new(),
                current: StatsWindow::default(),
                window_started: Instant::now(),
            }),
        }
    }

    /// Records one answered request.
    pub fn record(&self, outcome: RequestOutcome, latency: Duration) {
        let mut state = self.lock();
        self.roll_if_due(&mut state);
        state
            .latencies
            .entry(outcome.as_str())
            .or_insert_with(|| HistogramMetric::with_bounds(&LATENCY_BOUNDS_NS))
            .record(latency.as_nanos() as f64);
        state.current.requests += 1;
        match outcome {
            RequestOutcome::WarmHit => state.current.warm_hit += 1,
            RequestOutcome::Deduped => state.current.deduped += 1,
            RequestOutcome::Cold => state.current.cold += 1,
        }
    }

    /// Records one failed request (no latency class — failures are
    /// counted, not timed).
    pub fn record_error(&self) {
        let mut state = self.lock();
        self.roll_if_due(&mut state);
        state.current.errors += 1;
    }

    /// Closes the current window into the ring immediately (tests and
    /// deterministic snapshots; production windows roll lazily by
    /// wall clock).
    pub fn roll_window(&self) {
        let mut state = self.lock();
        self.roll(&mut state);
    }

    /// The enriched stats payload, merged over the dispatcher's
    /// `counters`.
    pub fn snapshot(&self, counters: BTreeMap<String, u64>) -> ServeStats {
        let mut state = self.lock();
        self.roll_if_due(&mut state);

        let latencies: BTreeMap<String, LatencyStat> = state
            .latencies
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(name, h)| (name.to_string(), LatencyStat::from_histogram(h.clone())))
            .collect();
        let count_of = |name: &str| state.latencies.get(name).map(|h| h.count).unwrap_or(0);
        let warm = count_of(RequestOutcome::WarmHit.as_str());
        let deduped = count_of(RequestOutcome::Deduped.as_str());
        let cold = count_of(RequestOutcome::Cold.as_str());
        let waves = warm + cold;
        let answered = waves + deduped;
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let gauges = BTreeMap::from([
            ("serve.cache_hit_rate".to_string(), rate(warm, waves)),
            ("serve.dedupe_ratio".to_string(), rate(deduped, answered)),
        ]);

        let mut windows: Vec<StatsWindow> = state.ring.iter().copied().collect();
        windows.push(state.current);
        ServeStats {
            counters,
            gauges,
            latencies,
            windows,
        }
    }

    fn roll_if_due(&self, state: &mut TelemetryState) {
        if state.window_started.elapsed() >= self.window_len {
            self.roll(state);
        }
    }

    fn roll(&self, state: &mut TelemetryState) {
        let seq = state.current.seq;
        let closed = std::mem::take(&mut state.current);
        state.ring.push_back(closed);
        while state.ring.len() > RING_WINDOWS {
            state.ring.pop_front();
        }
        state.current.seq = seq + 1;
        state.window_started = Instant::now();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TelemetryState> {
        self.inner.lock().expect("serve telemetry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_accumulate_into_their_histograms_and_windows() {
        let t = ServeTelemetry::with_window(Duration::from_secs(3600));
        t.record(RequestOutcome::Cold, Duration::from_secs(2));
        t.record(RequestOutcome::WarmHit, Duration::from_millis(3));
        t.record(RequestOutcome::WarmHit, Duration::from_millis(4));
        t.record(RequestOutcome::Deduped, Duration::from_secs(1));
        t.record_error();
        let stats = t.snapshot(BTreeMap::new());
        assert_eq!(stats.latencies["cold"].histogram.count, 1);
        assert_eq!(stats.latencies["warm_hit"].histogram.count, 2);
        // Gauges: warm 2 of 3 waves; deduped 1 of 4 answered.
        assert!((stats.gauges["serve.cache_hit_rate"] - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.gauges["serve.dedupe_ratio"] - 0.25).abs() < 1e-12);
        // One open window carrying everything.
        assert_eq!(stats.windows.len(), 1);
        let w = stats.windows[0];
        assert_eq!(
            (w.requests, w.cold, w.warm_hit, w.deduped, w.errors),
            (4, 1, 2, 1, 1)
        );
        // Quantiles are present and ordered.
        let warm = &stats.latencies["warm_hit"];
        assert!(warm.p50_ns > 0.0 && warm.p50_ns <= warm.p95_ns && warm.p95_ns <= warm.p99_ns);
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let t = ServeTelemetry::with_window(Duration::from_secs(3600));
        for i in 0..(RING_WINDOWS as u64 + 5) {
            t.record(RequestOutcome::Cold, Duration::from_millis(i + 1));
            t.roll_window();
        }
        let stats = t.snapshot(BTreeMap::new());
        // RING_WINDOWS closed + 1 current.
        assert_eq!(stats.windows.len(), RING_WINDOWS + 1);
        let seqs: Vec<u64> = stats.windows.iter().map(|w| w.seq).collect();
        let newest = RING_WINDOWS as u64 + 5;
        let expect: Vec<u64> = (newest - RING_WINDOWS as u64..=newest).collect();
        assert_eq!(seqs, expect, "oldest windows evicted, order kept");
        // Histograms are cumulative across windows.
        assert_eq!(
            stats.latencies["cold"].histogram.count,
            RING_WINDOWS as u64 + 5
        );
    }

    #[test]
    fn render_is_humane() {
        let t = ServeTelemetry::with_window(Duration::from_secs(3600));
        t.record(RequestOutcome::WarmHit, Duration::from_micros(80));
        let stats = t.snapshot(BTreeMap::from([("serve.requests".to_string(), 1)]));
        let text = stats.render();
        assert!(text.contains("serve.requests"), "{text}");
        assert!(text.contains("latency [warm_hit"), "{text}");
        assert!(text.contains("serve.cache_hit_rate"), "{text}");
    }
}
