//! Full-stack serve exercise: cold server with dedupe + batching over
//! one socket, then a warm restart over the same on-disk store that
//! must replay without touching a solver.
//!
//! Single `#[test]` on purpose: it installs process-global trace
//! collectors, so it must own its test binary (cargo runs separate
//! test files as separate processes, but tests inside one file share
//! one).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use mpvar_serve::protocol::{AnalysisRequest, ContextSpec, Preset};
use mpvar_serve::{
    Client, ClientMessage, Dispatcher, ProgressRouter, RenderedArtifact, Server, ServerMessage,
};
use mpvar_study::{ArtifactId, DiskStore};
use mpvar_trace::{names, Collector, RecordingSink, TraceSink};

fn spec() -> ContextSpec {
    ContextSpec {
        preset: Preset::Quick,
        sizes: Some(vec![8]),
        trials: Some(120),
        seed: Some(11),
        threads: Some(1),
    }
}

fn request(id: &str, artifacts: Vec<ArtifactId>, progress: bool) -> AnalysisRequest {
    AnalysisRequest {
        id: id.to_string(),
        artifacts,
        context: spec(),
        progress,
    }
}

fn start_server(
    root: &std::path::Path,
) -> (Server, Arc<RecordingSink>, mpvar_trace::CollectorGuard) {
    let sink = Arc::new(RecordingSink::new());
    let router = Arc::new(ProgressRouter::new());
    let store = Arc::new(DiskStore::open(root).expect("open disk store"));
    let dispatcher = Arc::new(Dispatcher::new(store, Arc::clone(&router)));
    let sinks: Vec<Arc<dyn TraceSink>> = vec![router, Arc::clone(&sink) as Arc<dyn TraceSink>];
    let guard = Collector::new(sinks).install();
    let server = Server::start("127.0.0.1:0", dispatcher).expect("bind server");
    (server, sink, guard)
}

#[test]
fn dedupe_batching_and_warm_restart_without_solvers() {
    let root = std::env::temp_dir().join(format!("mpvar-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ------------------------------------------------------- phase 1
    // Cold server: three identical concurrent requests plus one
    // distinct one must cost exactly two materializations.
    let (server, cold_sink, cold_guard) = start_server(&root);
    let mut client = Client::connect(server.addr()).expect("connect");

    client
        .send(&ClientMessage::Request(request(
            "r1",
            vec![ArtifactId::Table3],
            true,
        )))
        .expect("send r1");

    // Gate on table1 finishing inside r1's wave: table3 still needs
    // fig4 and itself after that, so requests sent now provably land
    // while the wave is in flight.
    loop {
        match client.recv().expect("recv") {
            ServerMessage::Ack { id, fingerprint } => {
                assert_eq!(id, "r1");
                assert_eq!(fingerprint.len(), 16, "fingerprint is 16 hex digits");
            }
            ServerMessage::Progress {
                id,
                artifact,
                outcome,
                ..
            } => {
                assert_eq!(id, "r1");
                assert_eq!(outcome, "computed", "cold run must compute {artifact}");
                if artifact == "table1" {
                    break;
                }
            }
            other => panic!("unexpected message before gate: {other:?}"),
        }
    }

    for id in ["r2", "r3"] {
        client
            .send(&ClientMessage::Request(request(
                id,
                vec![ArtifactId::Table3],
                false,
            )))
            .expect("send dedupe request");
    }
    client
        .send(&ClientMessage::Request(request(
            "r4",
            vec![ArtifactId::Fig5],
            false,
        )))
        .expect("send distinct request");

    let mut results: BTreeMap<String, Vec<RenderedArtifact>> = BTreeMap::new();
    while results.len() < 4 {
        match client.recv().expect("recv") {
            ServerMessage::Result { id, artifacts } => {
                results.insert(id, artifacts);
            }
            ServerMessage::Ack { .. } | ServerMessage::Progress { .. } => {}
            other => panic!("unexpected message: {other:?}"),
        }
    }
    assert_eq!(results["r1"].len(), 1);
    assert_eq!(results["r1"][0].id, "table3");
    assert_eq!(
        results["r1"], results["r2"],
        "deduped answers are identical"
    );
    assert_eq!(
        results["r1"], results["r3"],
        "deduped answers are identical"
    );
    assert_eq!(results["r4"].len(), 1);
    assert_eq!(results["r4"][0].id, "fig5");

    let stats = client.stats().expect("stats");
    assert_eq!(stats[names::SERVE_REQUESTS], 4);
    assert_eq!(stats[names::SERVE_DEDUPED], 2, "r2 and r3 join r1's wave");
    assert_eq!(
        stats[names::SERVE_MATERIALIZATIONS],
        2,
        "4 requests, 2 waves: r1+r2+r3 share one, r4 gets one"
    );

    // --------------------------------------------------- phase 1-warm
    // The store is now populated, so identical requests on the live
    // server are answered without computing. A batch of them gives
    // the warm-hit latency histogram a meaningful p99.
    for i in 0..8 {
        let warm = client
            .request(
                request(&format!("warm{i}"), vec![ArtifactId::Table3], false),
                |_| {},
            )
            .expect("warm request");
        assert_eq!(warm, results["r1"], "warm answers are identical");
    }
    let full = client.stats_full().expect("stats_full");
    let cold = full.latencies.get("cold").expect("cold latency recorded");
    let warm = full
        .latencies
        .get("warm_hit")
        .expect("warm-hit latency recorded");
    assert_eq!(cold.histogram.count, 2, "r1 and r4 rode cold waves");
    assert_eq!(full.latencies["deduped"].histogram.count, 2);
    assert_eq!(warm.histogram.count, 8);
    assert!(
        warm.p50_ns > 0.0 && warm.p50_ns <= warm.p95_ns && warm.p95_ns <= warm.p99_ns,
        "warm quantiles ordered: {warm:?}"
    );
    assert!(
        warm.p99_ns * 100.0 <= cold.p50_ns,
        "warm-hit p99 ({} ns) must sit >=100x below cold p50 ({} ns)",
        warm.p99_ns,
        cold.p50_ns
    );
    // Gauges: 8 warm of 10 waves; 2 deduped of 12 answered.
    assert!((full.gauges["serve.cache_hit_rate"] - 0.8).abs() < 1e-12);
    assert!((full.gauges["serve.dedupe_ratio"] - 2.0 / 12.0).abs() < 1e-12);
    // Window ring: every answered request landed in some window.
    assert_eq!(
        full.windows.iter().map(|w| w.requests).sum::<u64>(),
        12,
        "windows: {:?}",
        full.windows
    );

    client.shutdown().expect("shutdown");
    assert!(server.join(Duration::from_secs(300)), "waves drain");
    drop(cold_guard);
    assert!(
        cold_sink
            .spans()
            .iter()
            .any(|s| s.name == names::SPAN_SPICE_TRANSIENT),
        "cold run reaches the solver"
    );

    // ------------------------------------------------------- phase 2
    // Warm restart on the same store root: identical answer, zero
    // solver spans, disk hits observed.
    let (server, warm_sink, warm_guard) = start_server(&root);
    let mut client = Client::connect(server.addr()).expect("connect warm");
    let mut progress_outcomes = Vec::new();
    let warm = client
        .request(request("w1", vec![ArtifactId::Table3], true), |event| {
            if let ServerMessage::Progress { outcome, .. } = event {
                progress_outcomes.push(outcome.clone());
            }
        })
        .expect("warm request");
    assert_eq!(warm, results["r1"], "warm replay is bit-identical");
    assert!(
        !progress_outcomes.is_empty() && progress_outcomes.iter().all(|o| o == "cache_hit"),
        "warm progress is all cache hits, got {progress_outcomes:?}"
    );

    let disk_stats = server.dispatcher().store().stats();
    assert!(
        disk_stats.disk_hits >= 3,
        "table1/fig4/table3 come off disk, got {disk_stats:?}"
    );
    assert_eq!(disk_stats.quarantined, 0);

    client.shutdown().expect("shutdown warm");
    assert!(server.join(Duration::from_secs(300)));
    drop(warm_guard);
    let warm_spans: Vec<&str> = warm_sink.spans().iter().map(|s| s.name).collect();
    for solver_span in [
        names::SPAN_SPICE_TRANSIENT,
        names::SPAN_SPICE_BATCH,
        names::SPAN_MC_WAVE,
        names::SPAN_MC_DISTRIBUTION,
        names::SPAN_CORNER_SEARCH,
    ] {
        assert!(
            !warm_spans.contains(&solver_span),
            "warm replay must not open `{solver_span}`, spans: {warm_spans:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
