//! AC small-signal analysis.
//!
//! Linearizes the circuit at its DC operating point and solves the
//! complex MNA system `(G + jωC) x = b` across a frequency sweep. The
//! complex system is solved through its real-equivalent form
//!
//! ```text
//! [ G  -ωC ] [x_re]   [b_re]
//! [ ωC   G ] [x_im] = [b_im]
//! ```
//!
//! which reuses the sparse real solver. MOSFETs are stamped as their
//! (gm, gds) linearization at the operating point; capacitors become
//! susceptances; independent sources are AC grounds unless given an AC
//! magnitude via [`AcAnalysis::set_ac_magnitude`].

use std::collections::HashMap;

use crate::complex::Complex;
use crate::error::SpiceError;
use crate::mna::{NewtonStats, OperatingPoint, GMIN};
use crate::netlist::{Element, Netlist, NodeId};
use crate::sparse::{CsrMatrix, LuWorkspace, SparseMatrix, SymbolicLu};

/// A configured AC sweep over a netlist.
#[derive(Debug, Clone)]
pub struct AcAnalysis<'a> {
    net: &'a Netlist,
    ac_magnitudes: HashMap<String, f64>,
}

impl<'a> AcAnalysis<'a> {
    /// Prepares an AC analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] for an empty netlist.
    pub fn new(net: &'a Netlist) -> Result<Self, SpiceError> {
        if net.elements().is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                message: "netlist has no elements".into(),
            });
        }
        Ok(Self {
            net,
            ac_magnitudes: HashMap::new(),
        })
    }

    /// Marks a V or I source as the AC stimulus with the given
    /// magnitude (phase 0). Unmarked sources are AC short/open circuits.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] when the element does not exist or
    /// is not an independent source.
    pub fn set_ac_magnitude(&mut self, source: &str, magnitude: f64) -> Result<(), SpiceError> {
        match self.net.element(source) {
            Some(Element::VSource { .. }) | Some(Element::ISource { .. }) => {
                self.ac_magnitudes.insert(source.to_string(), magnitude);
                Ok(())
            }
            Some(_) => Err(SpiceError::InvalidValue {
                element: source.to_string(),
                message: "AC magnitude applies only to V/I sources".into(),
            }),
            None => Err(SpiceError::InvalidValue {
                element: source.to_string(),
                message: "no such element".into(),
            }),
        }
    }

    /// Runs the sweep at the given frequencies (Hz).
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidAnalysis`] for an empty or non-finite /
    ///   negative frequency list;
    /// * DC-operating-point or solver failures.
    pub fn sweep(&self, frequencies: &[f64]) -> Result<AcResult, SpiceError> {
        if frequencies.is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                message: "frequency list is empty".into(),
            });
        }
        if frequencies.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err(SpiceError::InvalidAnalysis {
                message: "frequencies must be finite and non-negative".into(),
            });
        }

        let net = self.net;
        let op = OperatingPoint::solve(net)?;
        let nn = net.num_nodes();
        let m = nn - 1 + net.num_vsources();

        let mut result = AcResult {
            frequencies: frequencies.to_vec(),
            phasors: vec![vec![Complex::ZERO; frequencies.len()]; nn],
            node_names: (0..nn)
                .map(|i| net.node_name(NodeId(i)).to_string())
                .collect(),
        };

        // The real-equivalent pattern is the same at every nonzero
        // frequency, so the symbolic analysis from the first point is
        // reused — only the numeric refactor runs per frequency. The
        // one wrinkle is ω = 0: susceptance entries are skipped there,
        // so a sweep starting at DC grows its pattern at the second
        // point and rebuilds the analysis once.
        let mut stats = NewtonStats::default();
        let mut compiled: Option<(CsrMatrix, SymbolicLu, LuWorkspace)> = None;
        let mut x = Vec::new();
        for (fi, &f) in frequencies.iter().enumerate() {
            let omega = 2.0 * std::f64::consts::PI * f;
            let (matrix, rhs) = self.assemble(&op, omega, m)?;
            let reused = match &mut compiled {
                Some((csr, _, _)) => csr.try_gather(&matrix),
                None => false,
            };
            if reused {
                stats.lu_symbolic_reuses += 1;
            } else {
                let csr = CsrMatrix::from_sparse(&matrix);
                let sym = match SymbolicLu::analyze(&csr) {
                    Ok(sym) => sym,
                    Err(e) => {
                        stats.emit();
                        return Err(e);
                    }
                };
                let ws = sym.workspace();
                stats.lu_symbolic_builds += 1;
                compiled = Some((csr, sym, ws));
            }
            let (csr, sym, ws) = compiled.as_mut().expect("compiled above");
            stats.lu_refactors += 1;
            if let Err(e) = sym.refactor(csr, ws) {
                stats.emit();
                return Err(e);
            }
            sym.solve_into(ws, &rhs, &mut x);
            for node in 1..nn {
                result.phasors[node][fi] = Complex::new(x[node - 1], x[m + node - 1]);
            }
        }
        stats.emit();
        Ok(result)
    }

    /// Assembles the real-equivalent `2m x 2m` system at `omega`.
    fn assemble(
        &self,
        op: &OperatingPoint,
        omega: f64,
        m: usize,
    ) -> Result<(SparseMatrix, Vec<f64>), SpiceError> {
        let net = self.net;
        let nn = net.num_nodes();
        let mut a = SparseMatrix::new(2 * m);
        let mut rhs = vec![0.0; 2 * m];

        let idx = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        // Conductance pattern into both diagonal blocks.
        let mut stamp_g = |a: &mut SparseMatrix, i: Option<usize>, j: Option<usize>, g: f64| {
            if let Some(i) = i {
                if let Some(j) = j {
                    a.add(i, j, g);
                    a.add(m + i, m + j, g);
                }
            }
        };
        // Susceptance pattern into the off-diagonal blocks.
        let stamp_b = |a: &mut SparseMatrix, i: Option<usize>, j: Option<usize>, b: f64| {
            if let (Some(i), Some(j)) = (i, j) {
                a.add(i, m + j, -b);
                a.add(m + i, j, b);
            }
        };
        /// A stamp closure: (matrix, row, col, value).
        type Stamp<'s> = &'s mut dyn FnMut(&mut SparseMatrix, Option<usize>, Option<usize>, f64);
        let two_terminal_g =
            |a: &mut SparseMatrix, stamp: Stamp<'_>, p: Option<usize>, q: Option<usize>, g: f64| {
                stamp(a, p, p, g);
                stamp(a, q, q, g);
                stamp(a, p, q, -g);
                stamp(a, q, p, -g);
            };

        for node in 1..nn {
            let i = Some(node - 1);
            stamp_g(&mut a, i, i, GMIN);
        }

        let mut vsrc = 0usize;
        for e in net.elements() {
            match e {
                Element::Resistor {
                    a: na, b: nb, ohms, ..
                } => {
                    let (p, q) = (idx(*na), idx(*nb));
                    two_terminal_g(&mut a, &mut stamp_g, p, q, 1.0 / ohms);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                    ..
                } => {
                    let b = omega * farads;
                    let (p, q) = (idx(*na), idx(*nb));
                    // Susceptance two-terminal pattern.
                    stamp_b(&mut a, p, p, b);
                    stamp_b(&mut a, q, q, b);
                    stamp_b(&mut a, p, q, -b);
                    stamp_b(&mut a, q, p, -b);
                }
                Element::VSource { name, p, n, .. } => {
                    let row = nn - 1 + vsrc;
                    for (node, sign) in [(p, 1.0), (n, -1.0)] {
                        if let Some(i) = idx(*node) {
                            a.add(i, row, sign);
                            a.add(row, i, sign);
                            a.add(m + i, m + row, sign);
                            a.add(m + row, m + i, sign);
                        }
                    }
                    rhs[row] = self.ac_magnitudes.get(name).copied().unwrap_or(0.0);
                    vsrc += 1;
                }
                Element::ISource { name, p, n, .. } => {
                    let mag = self.ac_magnitudes.get(name).copied().unwrap_or(0.0);
                    if mag != 0.0 {
                        if let Some(i) = idx(*p) {
                            rhs[i] -= mag;
                        }
                        if let Some(i) = idx(*n) {
                            rhs[i] += mag;
                        }
                    }
                }
                Element::Mosfet { d, g, s, model, .. } => {
                    let vgs = op.voltage(*g) - op.voltage(*s);
                    let vds = op.voltage(*d) - op.voltage(*s);
                    let ss = model.evaluate(vgs, vds);
                    let (di, gi, si) = (idx(*d), idx(*g), idx(*s));
                    // id = gm vgs + gds vds around the OP.
                    stamp_g(&mut a, di, di, ss.gds);
                    stamp_g(&mut a, di, gi, ss.gm);
                    stamp_g(&mut a, di, si, -(ss.gm + ss.gds));
                    stamp_g(&mut a, si, si, ss.gm + ss.gds);
                    stamp_g(&mut a, si, gi, -ss.gm);
                    stamp_g(&mut a, si, di, -ss.gds);
                }
            }
        }
        Ok((a, rhs))
    }
}

/// Phasor results of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    frequencies: Vec<f64>,
    phasors: Vec<Vec<Complex>>,
    node_names: Vec<String>,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// The phasor of `node` at sweep point `i`.
    ///
    /// # Panics
    ///
    /// Panics when the node or index is out of range.
    pub fn phasor(&self, node: NodeId, i: usize) -> Complex {
        self.phasors[node.index()][i]
    }

    /// All phasors of one node across the sweep.
    ///
    /// # Panics
    ///
    /// Panics when the node is out of range.
    pub fn phasors(&self, node: NodeId) -> &[Complex] {
        &self.phasors[node.index()]
    }

    /// `(frequency, |V| in dB, phase in degrees)` triples for one node.
    ///
    /// # Panics
    ///
    /// Panics when the node is out of range.
    pub fn bode(&self, node: NodeId) -> Vec<(f64, f64, f64)> {
        self.frequencies
            .iter()
            .zip(&self.phasors[node.index()])
            .map(|(&f, z)| (f, z.db(), z.arg_deg()))
            .collect()
    }

    /// The −3dB corner frequency of `node` relative to its
    /// lowest-frequency magnitude, by log-linear interpolation.
    ///
    /// # Errors
    ///
    /// [`SpiceError::MeasurementNotFound`] when the response never falls
    /// 3dB within the sweep.
    pub fn corner_frequency(&self, node: NodeId) -> Result<f64, SpiceError> {
        let mags = &self.phasors[node.index()];
        let reference = mags[0].abs();
        let target = reference / std::f64::consts::SQRT_2;
        for i in 1..mags.len() {
            let (m0, m1) = (mags[i - 1].abs(), mags[i].abs());
            if m0 > target && m1 <= target {
                let (f0, f1) = (self.frequencies[i - 1], self.frequencies[i]);
                // Log-log interpolation.
                let t = (m0.ln() - target.ln()) / (m0.ln() - m1.ln());
                return Ok((f0.ln() + t * (f1.ln() - f0.ln())).exp());
            }
        }
        Err(SpiceError::MeasurementNotFound {
            message: format!(
                "node `{}` never fell 3dB within the sweep",
                self.node_names[node.index()]
            ),
        })
    }

    /// Generates `count` logarithmically spaced frequencies over
    /// `[f_start, f_stop]` — the usual sweep grid.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidAnalysis`] for bad bounds or `count < 2`.
    pub fn log_frequencies(
        f_start: f64,
        f_stop: f64,
        count: usize,
    ) -> Result<Vec<f64>, SpiceError> {
        let valid = f_start > 0.0 && f_stop > f_start && count >= 2;
        if !valid {
            return Err(SpiceError::InvalidAnalysis {
                message: format!(
                    "need 0 < f_start < f_stop and count >= 2, got [{f_start}, {f_stop}] x {count}"
                ),
            });
        }
        let (l0, l1) = (f_start.ln(), f_stop.ln());
        Ok((0..count)
            .map(|i| (l0 + (l1 - l0) * i as f64 / (count - 1) as f64).exp())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    fn rc_lowpass(r: f64, c: f64) -> (Netlist, NodeId) {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("R1", vin, out, r).unwrap();
        net.add_capacitor("C1", out, Netlist::GROUND, c).unwrap();
        (net, out)
    }

    #[test]
    fn rc_lowpass_corner_and_phase() {
        let r = 10e3;
        let c = 100e-15;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c); // ~159 MHz
        let (net, out) = rc_lowpass(r, c);
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("VIN", 1.0).unwrap();
        let freqs = AcResult::log_frequencies(1e6, 1e11, 101).unwrap();
        let result = ac.sweep(&freqs).unwrap();

        // Passband gain ~ 1.
        assert!((result.phasor(out, 0).abs() - 1.0).abs() < 1e-3);
        // Corner frequency within 5%.
        let measured_fc = result.corner_frequency(out).unwrap();
        assert!(
            (measured_fc / fc - 1.0).abs() < 0.05,
            "fc {measured_fc:.3e} vs {fc:.3e}"
        );
        // Phase at the corner ~ -45 degrees.
        let i_near = freqs
            .iter()
            .position(|&f| f >= fc)
            .expect("sweep covers fc");
        let phase = result.phasor(out, i_near).arg_deg();
        assert!((-55.0..=-35.0).contains(&phase), "phase {phase}");
        // Far above the corner: -20 dB/decade.
        let bode = result.bode(out);
        let hi = bode.len() - 1;
        let slope = (bode[hi].1 - bode[hi - 10].1) / (bode[hi].0.log10() - bode[hi - 10].0.log10());
        assert!((slope + 20.0).abs() < 1.0, "slope {slope}");
    }

    #[test]
    fn dc_point_of_sweep_matches_resistive_divider() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("R1", vin, out, 1e3).unwrap();
        net.add_resistor("R2", out, Netlist::GROUND, 3e3).unwrap();
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("VIN", 2.0).unwrap();
        let result = ac.sweep(&[0.0, 1e6]).unwrap();
        for i in 0..2 {
            let z = result.phasor(out, i);
            // GMIN perturbs the divider at the 1e-9 level.
            assert!((z.re - 1.5).abs() < 1e-6, "gain {z}");
            assert!(z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn unmarked_sources_are_ac_ground() {
        // Two sources; only one carries AC. The divider from the AC one
        // must see the DC one as ground.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let mid = net.node("mid");
        net.add_vsource("VA", a, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_vsource("VB", b, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_resistor("R1", a, mid, 1e3).unwrap();
        net.add_resistor("R2", mid, b, 1e3).unwrap();
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("VA", 1.0).unwrap();
        let result = ac.sweep(&[1e6]).unwrap();
        assert!((result.phasor(mid, 0).abs() - 0.5).abs() < 1e-9);
        assert!(result.phasor(b, 0).abs() < 1e-9);
    }

    #[test]
    fn mosfet_common_source_gain() {
        use crate::mosfet::MosfetModel;
        use mpvar_tech::preset::n10;
        // Common-source stage: gain = -gm * (RL || ro).
        let tech = n10();
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let gate = net.node("gate");
        let out = net.node("out");
        net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_vsource("VG", gate, Netlist::GROUND, Waveform::dc(0.45))
            .unwrap();
        net.add_resistor("RL", vdd, out, 50e3).unwrap();
        net.add_mosfet(
            "M1",
            out,
            gate,
            Netlist::GROUND,
            MosfetModel::new(*tech.nmos()),
        )
        .unwrap();
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("VG", 1.0).unwrap();
        let result = ac.sweep(&[1e6]).unwrap();
        let gain = result.phasor(out, 0);
        // Inverting gain above 1 for a healthy stage.
        assert!(gain.re < -1.0, "gain {gain}");
        assert!(gain.im.abs() < 1e-6, "resistive at low frequency");
    }

    #[test]
    fn current_source_ac_stimulus() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_isource("I1", Netlist::GROUND, a, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("R1", a, Netlist::GROUND, 2e3).unwrap();
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("I1", 1e-3).unwrap();
        let result = ac.sweep(&[1e3]).unwrap();
        assert!((result.phasor(a, 0).abs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn validation_errors() {
        let (net, _) = rc_lowpass(1e3, 1e-15);
        let mut ac = AcAnalysis::new(&net).unwrap();
        assert!(ac.set_ac_magnitude("R1", 1.0).is_err());
        assert!(ac.set_ac_magnitude("nope", 1.0).is_err());
        ac.set_ac_magnitude("VIN", 1.0).unwrap();
        assert!(ac.sweep(&[]).is_err());
        assert!(ac.sweep(&[-1.0]).is_err());
        assert!(ac.sweep(&[f64::NAN]).is_err());
        assert!(AcResult::log_frequencies(0.0, 1e9, 10).is_err());
        assert!(AcResult::log_frequencies(1e9, 1e6, 10).is_err());
        assert!(AcResult::log_frequencies(1e6, 1e9, 1).is_err());

        let empty = Netlist::new();
        assert!(AcAnalysis::new(&empty).is_err());
    }

    #[test]
    fn log_frequencies_are_geometric() {
        let f = AcResult::log_frequencies(1e3, 1e6, 4).unwrap();
        assert_eq!(f.len(), 4);
        assert!((f[0] - 1e3).abs() < 1e-6);
        assert!((f[3] - 1e6).abs() < 1e-3);
        let r1 = f[1] / f[0];
        let r2 = f[2] / f[1];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn corner_not_found_reported() {
        // Pure resistive network: no 3dB fall.
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        let mut ac = AcAnalysis::new(&net).unwrap();
        ac.set_ac_magnitude("V1", 1.0).unwrap();
        let r = ac.sweep(&[1e3, 1e6, 1e9]).unwrap();
        assert!(matches!(
            r.corner_frequency(a),
            Err(SpiceError::MeasurementNotFound { .. })
        ));
    }
}
