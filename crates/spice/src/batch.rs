//! Batched structure-of-arrays trial solver.
//!
//! Monte-Carlo sweeps over interconnect variability run thousands of
//! *structurally identical* netlists that differ only in R/C values and
//! device parameters. The scalar path ([`crate::transient::Transient`])
//! pays per-trial assembly, per-trial LU traffic, and per-trial waveform
//! storage. This module runs N such trials ("lanes") through **one**
//! shared stamp program and **one** shared [`SymbolicLu`] analysis, with
//! every numeric array widened by the lane count and interleaved
//! `[slot][lane]`, so the refactor / solve / companion-step inner loops
//! autovectorize over contiguous f64 lanes:
//!
//! ```text
//!            slot 0        slot 1        slot 2
//!          ┌───────────┬─────────────┬─────────────┬─ ...
//!   vals   │ l0 l1 l2 l3│ l0 l1 l2 l3│ l0 l1 l2 l3 │
//!          └───────────┴─────────────┴─────────────┴─ ...
//! ```
//!
//! # Bit-identical to the scalar path
//!
//! Lanes never mix arithmetically: every floating-point operation a lane
//! experiences is exactly the operation the scalar compiled kernel would
//! have performed for that trial, in the same order (the one value-level
//! branch in the LU update becomes a per-lane select, which preserves
//! even `-0.0` semantics). Lanes whose trial would *diverge* from the
//! shared structure — a different stamp sequence, a symbolic analysis
//! that pivots differently, a pivot drifting below tolerance, Newton
//! non-convergence — **fall out** of the batch
//! ([`BatchLaneOutcome::FellOut`]) and the caller re-runs them through
//! the scalar path from scratch, which reproduces the scalar result
//! (including errors) trivially. Batch composition therefore never
//! affects any trial's bits.
//!
//! # Per-iteration assembly
//!
//! The first assembly of each (method-phase, step-size) key records the
//! full stamp stream per lane, exactly like the scalar compiled kernel,
//! and caches the resulting static value image per key — fixed-step
//! transients flip between a handful of keys (the UIC backward-Euler
//! bootstrap, the nominal dt and its float-jitter neighbours, the
//! shortened final step), and re-recording on every flip dominated the
//! early batch profile. Static stamps (GMIN, resistors, capacitor
//! companions, source incidence) live in CSR slots no MOSFET touches
//! and keep their seeded values across iterations; slots touched by any
//! MOSFET stamp are zeroed and have *all* their stamps replayed per
//! Newton iteration in original program order (f64 accumulation is
//! order-sensitive). Right-hand-side terms that are constant within a
//! step (source waveforms, capacitor companion currents) are staged
//! once per step. A Newton iteration is then: zero the MOSFET-touched
//! slots, per-lane MOSFET linearizations into a staged dynamic-value
//! stream, a short mixed-slot replay, an RHS rebuild from staged
//! per-step constants, one batched refactor, one batched solve.

use crate::error::SpiceError;
use crate::mna::{
    assemble_into, is_linear, system_size, ReactivePolicy, StampRecorder, MAX_ITERS, VSTEP_MAX,
    VTOL,
};
use crate::mosfet::MosfetModel;
use crate::netlist::{Element, Netlist, NodeId};
use crate::sparse::{CsrMatrix, LuBatchWorkspace, SymbolicLu};
use crate::transient::Method;

/// What a batched transient should run: the scalar
/// [`crate::transient::Transient`] configuration, made explicit so one
/// spec drives every lane.
#[derive(Debug, Clone, Copy)]
pub struct BatchTransientSpec<'a> {
    /// Integration method (the UIC bootstrap step is backward Euler,
    /// exactly as in the scalar path).
    pub method: Method,
    /// Fixed time step, s.
    pub dt: f64,
    /// End time, s (the final step is shortened to land on it).
    pub t_stop: f64,
    /// Initial node voltages. Non-empty switches every lane to UIC mode
    /// (like [`crate::transient::Transient::set_initial_voltage`]);
    /// empty solves each lane's DC operating point instead. Node ids
    /// are interpreted in every lane — structurally identical netlists
    /// intern identical ids.
    pub initial: &'a [(NodeId, f64)],
    /// Nodes whose waveforms to capture. Only probed waveforms are
    /// stored (the scalar path stores every node), which is a large
    /// part of the batch speedup.
    pub probes: &'a [NodeId],
}

/// Why a lane left the batch for the scalar fall-out path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LaneFalloutReason {
    /// The lane's netlist is not structurally identical to the batch
    /// reference (element kinds, terminals, or counts differ).
    StructureMismatch,
    /// The lane's own symbolic LU analysis failed or chose a different
    /// pivot order than the batch's shared analysis.
    SymbolicMismatch,
    /// A pivot drifted below tolerance under the shared analysis (the
    /// scalar path would re-analyze mid-run; the batch evicts instead).
    PivotDrift,
    /// Newton failed to converge within the iteration limit, or the
    /// lane's DC operating point failed to solve.
    NonConvergence,
}

/// Per-lane result of a batched transient.
#[derive(Debug, Clone)]
pub enum BatchLaneOutcome {
    /// The lane ran to `t_stop` inside the batch.
    Completed {
        /// One waveform per entry of [`BatchTransientSpec::probes`], on
        /// the shared time grid.
        probes: Vec<Vec<f64>>,
    },
    /// The lane was evicted; re-run it through the scalar path.
    FellOut {
        /// Why the lane was evicted.
        reason: LaneFalloutReason,
    },
}

/// Result of [`run_transient_batch`]: the shared time grid plus one
/// outcome per input netlist, in input order.
#[derive(Debug, Clone)]
pub struct BatchTransientResult {
    /// Time points, s (`t = 0` first; shared by all completed lanes).
    pub times: Vec<f64>,
    /// One outcome per lane.
    pub lanes: Vec<BatchLaneOutcome>,
}

/// Reusable numeric storage for batched transients. One workspace per
/// worker thread: [`run_transient_batch`] resizes the buffers in place,
/// so consecutive batches of the same structure allocate nothing in the
/// solve loop (asserted by the `spice.batch_workspace_bytes` gauge
/// staying flat across waves).
#[derive(Debug, Default)]
pub struct BatchedMnaWorkspace {
    /// CSR values, `[slot][lane]`.
    vals: Vec<f64>,
    /// Per-key recorded stamp values, `[program index][lane]`.
    stamp_vals: Vec<f64>,
    /// Cached static images per companion key. Fixed-step transients
    /// flip between a handful of keys (the UIC backward-Euler step, the
    /// nominal dt, its float-jitter neighbours, the shortened final
    /// step); re-recording each flip was the single largest batch cost.
    /// Slots are reused across batches; `key` is `None` when free.
    key_images: Vec<KeyImage>,
    /// Which key the buffers in `stamp_vals` / `vals` currently encode
    /// (`None` until the first record). Key switches *swap* buffers with
    /// the key's pooled image instead of copying them.
    resident_key: Option<(bool, u64)>,
    /// Logical clock driving the key-image LRU.
    key_clock: u64,
    /// Per-step right-hand-side constants: voltage-source values,
    /// `[vsource][lane]`.
    vsrc_vals: Vec<f64>,
    /// Per-step current-source values, `[isource][lane]`.
    isrc_vals: Vec<f64>,
    /// Per-step capacitor companion currents for the RHS,
    /// `[capacitor][lane]`.
    cap_rhs: Vec<f64>,
    /// Per-iteration MOSFET stamp values, `[dyn index][lane]`.
    dyn_vals: Vec<f64>,
    /// Per-iteration MOSFET Norton currents, `[mosfet][lane]`.
    mos_ieq: Vec<f64>,
    /// Capacitances, `[capacitor][lane]`.
    cap_farads: Vec<f64>,
    /// Right-hand sides, `[row][lane]` interleaved like `vals`, so the
    /// per-op RHS build and the solve's permutation gather are both
    /// contiguous lanes-wide operations.
    rhs: Vec<f64>,
    /// Scalar scratch RHS for the recording path (one lane at a time).
    rec_rhs: Vec<f64>,
    /// Scalar scratch guess for the recording path.
    rec_x: Vec<f64>,
    /// Newton guesses, `[row][lane]` interleaved.
    x: Vec<f64>,
    /// Newton solutions, `[row][lane]` interleaved (the batched solve
    /// writes them with one contiguous copy — no transpose).
    x_new: Vec<f64>,
    /// Per-lane Newton deltas / damping scales / accept masks (all-ones
    /// or zero) for the row-sweep convergence pass.
    conv_delta: Vec<f64>,
    conv_scale: Vec<f64>,
    conv_copy: Vec<u64>,
    conv_damp: Vec<u64>,
    /// Node voltages at the previous step, `[node][lane]` interleaved
    /// (ground row included and always zero) so per-step staging and
    /// accept sweeps run lanes-contiguous.
    node_v: Vec<f64>,
    /// Capacitor companion currents, `[capacitor][lane]` interleaved.
    cap_i: Vec<f64>,
    /// Scalar scratch node voltages / companion currents for the
    /// recording path (one lane, transposed out of the interleaved
    /// buffers).
    rec_nv: Vec<f64>,
    rec_ic: Vec<f64>,
    /// Batched LU factors and scatter rows.
    lu: LuBatchWorkspace,
    /// Per-lane first failing pivot row of the last refactor.
    fail_row: Vec<Option<usize>>,
    /// Recording sink reused across key changes and lanes.
    rec: StampRecorder,
}

impl BatchedMnaWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity bytes currently held across all buffers. Feeds the
    /// `spice.batch_workspace_bytes` gauge; steady-state MC waves must
    /// hold this flat.
    pub fn bytes(&self) -> usize {
        let images: usize = self
            .key_images
            .iter()
            .map(|i| i.stamp_vals.capacity() + i.vals.capacity())
            .sum();
        8 * (self.vals.capacity()
            + images
            + self.vsrc_vals.capacity()
            + self.isrc_vals.capacity()
            + self.cap_rhs.capacity()
            + self.stamp_vals.capacity()
            + self.dyn_vals.capacity()
            + self.mos_ieq.capacity()
            + self.cap_farads.capacity()
            + self.rhs.capacity()
            + self.rec_rhs.capacity()
            + self.rec_x.capacity()
            + self.x.capacity()
            + self.x_new.capacity()
            + self.conv_delta.capacity()
            + self.conv_scale.capacity()
            + self.node_v.capacity()
            + self.cap_i.capacity()
            + self.rec_nv.capacity()
            + self.rec_ic.capacity())
            + 8 * self.conv_copy.capacity()
            + 8 * self.conv_damp.capacity()
            + 16 * self.fail_row.capacity()
            + 16 * self.rec.coords.capacity()
            + 8 * self.rec.vals.capacity()
            + self.lu.bytes()
    }
}

/// Cached static images of one companion key: the recorded stamp
/// stream and the fully seeded value image. Buffers are reused across
/// batches (`key` is cleared, capacity kept) so the workspace-bytes
/// gauge stays flat in steady state.
#[derive(Debug, Default)]
struct KeyImage {
    /// `(use_be, dt_k bits)`; `None` = slot free.
    key: Option<(bool, u64)>,
    /// Logical timestamp of the last hit, for LRU replacement.
    last_used: u64,
    stamp_vals: Vec<f64>,
    vals: Vec<f64>,
}

/// Upper bound on cached key images per batch. Fixed-step transients
/// produce at most a handful of distinct keys (BE bootstrap, nominal
/// dt, float-jitter neighbours, shortened final step); anything beyond
/// the bound falls back to re-recording, which is merely slower.
const MAX_KEY_IMAGES: usize = 32;

/// One static/dynamic-classified entry of the per-iteration replay
/// program (only slots touched by a MOSFET stamp appear here).
#[derive(Debug, Clone, Copy)]
enum IterStamp {
    /// Replay a recorded static stamp value.
    Stat {
        /// Destination CSR slot.
        slot: u32,
        /// Program index into `stamp_vals`.
        p: u32,
    },
    /// Replay a freshly staged MOSFET stamp value.
    Dyn {
        /// Destination CSR slot.
        slot: u32,
        /// Index into `dyn_vals`.
        k: u32,
    },
}

/// One right-hand-side operation, in element order. The RHS is rebuilt
/// from scratch every Newton iteration, exactly like the scalar path.
#[derive(Debug, Clone, Copy)]
enum RhsOp {
    /// Capacitor companion current (form depends on the step's policy).
    Cap {
        /// Capacitor index (into `cap_farads` / `cap_i`).
        cap: usize,
        /// Matrix row of terminal `a` (`None` = ground).
        a_row: Option<usize>,
        /// Matrix row of terminal `b`.
        b_row: Option<usize>,
        /// `node_v` index of terminal `a` (ground included).
        a_nv: usize,
        /// `node_v` index of terminal `b`.
        b_nv: usize,
    },
    /// Voltage-source row assignment `rhs[row] = waveform(t)`.
    Vsrc {
        /// Branch-current row.
        row: usize,
        /// Element index (per-lane waveform lookup).
        elem: usize,
        /// Index into the staged `vsrc_vals`.
        vs: usize,
    },
    /// Current-source injection.
    Isrc {
        /// Matrix row of terminal `p`.
        p_row: Option<usize>,
        /// Matrix row of terminal `n`.
        n_row: Option<usize>,
        /// Element index.
        elem: usize,
        /// Index into the staged `isrc_vals`.
        is_: usize,
    },
    /// MOSFET Norton current (staged by the dynamic evaluation).
    Mos {
        /// Matrix row of the drain.
        d_row: Option<usize>,
        /// Matrix row of the source.
        s_row: Option<usize>,
        /// Mosfet index (into `mos_ieq`).
        mos: usize,
    },
}

/// Topology of one MOSFET, resolved to matrix rows.
#[derive(Debug, Clone, Copy)]
struct MosInfo {
    elem: usize,
    d_row: Option<usize>,
    g_row: Option<usize>,
    s_row: Option<usize>,
    /// First index of this device's stamps in the dynamic value stream.
    dyn_base: usize,
}

/// The compiled shared structure of one batch.
struct CompiledBatch {
    pattern: CsrMatrix,
    program: Vec<u32>,
    iter_prog: Vec<IterStamp>,
    /// CSR slots touched by any MOSFET stamp: zeroed before each
    /// per-iteration replay (every other slot keeps its seeded value).
    dyn_slots: Vec<u32>,
    rhs_ops: Vec<RhsOp>,
    mosfets: Vec<MosInfo>,
    /// Dense per-lane model copies, `[mosfet][lane]` — the staging loop
    /// reads these instead of chasing each lane's `Element` storage.
    models: Vec<MosfetModel>,
    /// Per-stamp value provenance: how to rebuild `stamp_vals` for a
    /// companion key that has never been recorded.
    static_src: Vec<StaticSrc>,
    /// Key-independent stamp values, `[fixed][lane]`, captured from the
    /// first (and only) scalar recording pass.
    fixed_vals: Vec<f64>,
    /// Staged-array extents: voltage sources, current sources.
    n_vsrc: usize,
    n_isrc: usize,
    sym: SymbolicLu,
}

/// Walks the MOSFET matrix-stamp emission sequence of
/// [`assemble_into`] — the single source of truth shared by structural
/// classification (coordinates) and the per-iteration value staging, so
/// the two can never desynchronize.
fn for_each_mos_stamp(
    d_row: Option<usize>,
    g_row: Option<usize>,
    s_row: Option<usize>,
    mut f: impl FnMut(usize, usize),
) {
    if let Some(id_) = d_row {
        f(id_, id_);
        if let Some(ig) = g_row {
            f(id_, ig);
        }
        if let Some(is_) = s_row {
            f(id_, is_);
        }
    }
    if let Some(is_) = s_row {
        f(is_, is_);
        if let Some(ig) = g_row {
            f(is_, ig);
        }
        if let Some(id_) = d_row {
            f(is_, id_);
        }
    }
}

/// How a static stamp's *value* is produced for a new companion key
/// without re-running the scalar assembly. Key-independent values
/// (GMIN, resistor conductances, voltage-source `±1`s) are captured
/// per lane at the first record; capacitor companion conductances are
/// recomputed from the stored per-lane farads with the scalar path's
/// exact expression.
#[derive(Debug, Clone, Copy)]
enum StaticSrc {
    /// Key-independent: `fixed_vals[fi]` captured at first record.
    Fixed(u32),
    /// Capacitor companion diagonal: `+g` for cap `ci`.
    CapDiag(u32),
    /// Capacitor companion off-diagonal: `-g` for cap `ci`.
    CapOff(u32),
    /// MOSFET stamp: staged per iteration, value irrelevant at seed.
    Dyn,
}

/// Classification output: per recorded stamp, is it static or the
/// `k`-th dynamic value; plus the RHS program and MOSFET topology.
struct Classified {
    coords: Vec<(usize, usize)>,
    /// `None` = static stamp, `Some(k)` = k-th dynamic value.
    dyn_of: Vec<Option<u32>>,
    /// Per-stamp value provenance for key reseeding.
    static_src: Vec<StaticSrc>,
    rhs_ops: Vec<RhsOp>,
    mosfets: Vec<MosInfo>,
    n_dyn: usize,
    n_fixed: usize,
    n_isrc: usize,
}

/// Mirrors [`assemble_into`]'s structural (value-independent) branch
/// sequence, emitting one classified coordinate per stamp call plus the
/// RHS program. The caller asserts the coordinates against an actual
/// recorded assembly, so any drift between this walk and the real one
/// is caught at batch setup, not silently computed wrong.
fn classify(net: &Netlist) -> Classified {
    let nn = net.num_nodes();
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };

    let mut c = Classified {
        coords: Vec::new(),
        dyn_of: Vec::new(),
        static_src: Vec::new(),
        rhs_ops: Vec::new(),
        mosfets: Vec::new(),
        n_dyn: 0,
        n_fixed: 0,
        n_isrc: 0,
    };
    let stat = |c: &mut Classified, r: usize, col: usize| {
        c.coords.push((r, col));
        c.dyn_of.push(None);
        c.static_src.push(StaticSrc::Fixed(c.n_fixed as u32));
        c.n_fixed += 1;
    };
    // `cap`: `Some(ci)` when the conductance is a capacitor companion
    // (key-dependent), `None` for a plain resistor (key-independent).
    let conductance = |c: &mut Classified, a: NodeId, b: NodeId, cap: Option<u32>| {
        let diag = |c: &mut Classified| match cap {
            Some(ci) => c.static_src.push(StaticSrc::CapDiag(ci)),
            None => {
                c.static_src.push(StaticSrc::Fixed(c.n_fixed as u32));
                c.n_fixed += 1;
            }
        };
        let off = |c: &mut Classified| match cap {
            Some(ci) => c.static_src.push(StaticSrc::CapOff(ci)),
            None => {
                c.static_src.push(StaticSrc::Fixed(c.n_fixed as u32));
                c.n_fixed += 1;
            }
        };
        if let Some(ia) = idx(a) {
            c.coords.push((ia, ia));
            c.dyn_of.push(None);
            diag(c);
        }
        if let Some(ib) = idx(b) {
            c.coords.push((ib, ib));
            c.dyn_of.push(None);
            diag(c);
        }
        if let (Some(ia), Some(ib)) = (idx(a), idx(b)) {
            c.coords.push((ia, ib));
            c.dyn_of.push(None);
            off(c);
            c.coords.push((ib, ia));
            c.dyn_of.push(None);
            off(c);
        }
    };

    for node in 1..nn {
        stat(&mut c, node - 1, node - 1);
    }

    let mut vsrc = 0usize;
    let mut cap_index = 0usize;
    for (e_idx, e) in net.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, .. } => conductance(&mut c, *a, *b, None),
            Element::Capacitor { a, b, .. } => {
                // Transient policies always stamp the companion
                // conductance (only DC skips it, and batches never run
                // a DC policy).
                conductance(&mut c, *a, *b, Some(cap_index as u32));
                c.rhs_ops.push(RhsOp::Cap {
                    cap: cap_index,
                    a_row: idx(*a),
                    b_row: idx(*b),
                    a_nv: a.index(),
                    b_nv: b.index(),
                });
                cap_index += 1;
            }
            Element::VSource { p, n, .. } => {
                let row = nn - 1 + vsrc;
                if let Some(ip) = idx(*p) {
                    stat(&mut c, ip, row);
                    stat(&mut c, row, ip);
                }
                if let Some(in_) = idx(*n) {
                    stat(&mut c, in_, row);
                    stat(&mut c, row, in_);
                }
                c.rhs_ops.push(RhsOp::Vsrc {
                    row,
                    elem: e_idx,
                    vs: vsrc,
                });
                vsrc += 1;
            }
            Element::ISource { p, n, .. } => {
                c.rhs_ops.push(RhsOp::Isrc {
                    p_row: idx(*p),
                    n_row: idx(*n),
                    elem: e_idx,
                    is_: c.n_isrc,
                });
                c.n_isrc += 1;
            }
            Element::Mosfet { d, g, s, .. } => {
                let (d_row, g_row, s_row) = (idx(*d), idx(*g), idx(*s));
                let dyn_base = c.n_dyn;
                for_each_mos_stamp(d_row, g_row, s_row, |r, col| {
                    c.coords.push((r, col));
                    c.dyn_of.push(Some(c.n_dyn as u32));
                    c.static_src.push(StaticSrc::Dyn);
                    c.n_dyn += 1;
                });
                c.rhs_ops.push(RhsOp::Mos {
                    d_row,
                    s_row,
                    mos: c.mosfets.len(),
                });
                c.mosfets.push(MosInfo {
                    elem: e_idx,
                    d_row,
                    g_row,
                    s_row,
                    dyn_base,
                });
            }
        }
    }
    c
}

/// `true` when lane `net` is structurally identical to `reference`:
/// same node count, same source count, same element kind/terminal
/// sequence. Values (R, C, waveforms, models) are free to differ.
fn same_structure(reference: &Netlist, net: &Netlist) -> bool {
    if reference.num_nodes() != net.num_nodes()
        || reference.num_vsources() != net.num_vsources()
        || reference.elements().len() != net.elements().len()
    {
        return false;
    }
    reference
        .elements()
        .iter()
        .zip(net.elements())
        .all(|(a, b)| match (a, b) {
            (Element::Resistor { a: a1, b: b1, .. }, Element::Resistor { a: a2, b: b2, .. }) => {
                a1 == a2 && b1 == b2
            }
            (Element::Capacitor { a: a1, b: b1, .. }, Element::Capacitor { a: a2, b: b2, .. }) => {
                a1 == a2 && b1 == b2
            }
            (Element::VSource { p: p1, n: n1, .. }, Element::VSource { p: p2, n: n2, .. }) => {
                p1 == p2 && n1 == n2
            }
            (Element::ISource { p: p1, n: n1, .. }, Element::ISource { p: p2, n: n2, .. }) => {
                p1 == p2 && n1 == n2
            }
            (
                Element::Mosfet {
                    d: d1,
                    g: g1,
                    s: s1,
                    ..
                },
                Element::Mosfet {
                    d: d2,
                    g: g2,
                    s: s2,
                    ..
                },
            ) => d1 == d2 && g1 == g2 && s1 == s2,
            _ => false,
        })
}

/// Runs one transient analysis over `nets.len()` structurally identical
/// netlists at once, sharing one stamp program and one symbolic LU
/// analysis across all lanes. Per-lane results are **bit-identical** to
/// the scalar compiled kernel ([`crate::transient::Transient::run`]);
/// lanes the batch cannot carry fall out ([`BatchLaneOutcome::FellOut`])
/// and should be re-run through the scalar path.
///
/// # Errors
///
/// [`SpiceError::InvalidAnalysis`] for an empty batch, an empty
/// reference netlist, non-positive `dt`/`t_stop`, or an absurd step
/// count — conditions shared by every lane. Per-lane failures are
/// reported per lane, never as a batch error.
pub fn run_transient_batch(
    nets: &[&Netlist],
    spec: &BatchTransientSpec<'_>,
    ws: &mut BatchedMnaWorkspace,
) -> Result<BatchTransientResult, SpiceError> {
    if nets.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            message: "batch needs at least one netlist".into(),
        });
    }
    if nets[0].elements().is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            message: "netlist has no elements".into(),
        });
    }
    let (dt, t_stop) = (spec.dt, spec.t_stop);
    if !(dt > 0.0 && t_stop > 0.0) {
        return Err(SpiceError::InvalidAnalysis {
            message: format!("dt ({dt}) and t_stop ({t_stop}) must be positive"),
        });
    }
    let mut steps = (t_stop / dt).ceil() as usize;
    if steps > 20_000_000 {
        return Err(SpiceError::InvalidAnalysis {
            message: format!("{steps} steps requested; raise dt or lower t_stop"),
        });
    }
    if steps > 1 && t_stop - (steps - 1) as f64 * dt <= dt * 1e-9 {
        steps -= 1;
    }

    let _span = mpvar_trace::span!(
        mpvar_trace::names::SPAN_SPICE_BATCH,
        lanes = nets.len(),
        dt = dt,
        t_stop = t_stop,
    );

    let lanes = nets.len();
    let net0 = nets[0];
    let nn = net0.num_nodes();
    let size = system_size(net0);
    let linear = is_linear(net0);
    let uic = !spec.initial.is_empty();

    // --- Lane admission: structural identity with the reference -------
    let mut fallout: Vec<Option<LaneFalloutReason>> = vec![None; lanes];
    for (l, net) in nets.iter().enumerate().skip(1) {
        if !same_structure(net0, net) {
            fallout[l] = Some(LaneFalloutReason::StructureMismatch);
        }
    }

    // --- State buffers (reused across batches) ------------------------
    let caps: Vec<(NodeId, NodeId)> = net0
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let ncaps = caps.len();

    ws.rhs.clear();
    ws.rhs.resize(lanes * size, 0.0);
    ws.x.clear();
    ws.x.resize(lanes * size, 0.0);
    ws.x_new.clear();
    ws.x_new.resize(lanes * size, 0.0);
    ws.node_v.clear();
    ws.node_v.resize(lanes * nn, 0.0);
    ws.cap_i.clear();
    ws.cap_i.resize(lanes * ncaps, 0.0);
    ws.cap_farads.clear();
    ws.cap_farads.resize(ncaps * lanes, 0.0);
    ws.fail_row.clear();
    ws.fail_row.resize(lanes, None);
    // Key images from previous batches are stale (different draws mean
    // different static values); free the tags, keep the capacity.
    ws.resident_key = None;
    for img in &mut ws.key_images {
        img.key = None;
    }

    for (l, net) in nets.iter().enumerate() {
        if fallout[l].is_some() {
            continue;
        }
        let mut ci = 0usize;
        for e in net.elements() {
            if let Element::Capacitor { farads, .. } = e {
                ws.cap_farads[ci * lanes + l] = *farads;
                ci += 1;
            }
        }
    }

    // --- Initial state -------------------------------------------------
    if uic {
        for (l, f) in fallout.iter().enumerate() {
            if f.is_some() {
                continue;
            }
            for &(node, v) in spec.initial {
                ws.node_v[node.index() * lanes + l] = v;
                if !node.is_ground() {
                    ws.x[(node.index() - 1) * lanes + l] = v;
                }
            }
        }
    } else {
        for (l, net) in nets.iter().enumerate() {
            if fallout[l].is_some() {
                continue;
            }
            match crate::mna::OperatingPoint::solve(net) {
                Ok(op) => {
                    for (i, &v) in op.voltages().iter().enumerate() {
                        ws.node_v[i * lanes + l] = v;
                    }
                    for i in 0..nn - 1 {
                        ws.x[i * lanes + l] = ws.node_v[(1 + i) * lanes + l];
                    }
                }
                Err(_) => fallout[l] = Some(LaneFalloutReason::NonConvergence),
            }
        }
    }

    // --- Result storage ------------------------------------------------
    let mut times = Vec::with_capacity(steps + 1);
    times.push(0.0);
    let mut probe_series: Vec<Vec<Vec<f64>>> = (0..lanes)
        .map(|_| {
            (0..spec.probes.len())
                .map(|_| Vec::with_capacity(steps + 1))
                .collect()
        })
        .collect();
    for l in 0..lanes {
        if fallout[l].is_some() {
            continue;
        }
        for (pi, probe) in spec.probes.iter().enumerate() {
            probe_series[l][pi].push(ws.node_v[probe.index() * lanes + l]);
        }
    }

    // --- Batch counters -------------------------------------------------
    let mut n_batch_solves = 0u64;
    let mut n_refactors = 0u64;

    // --- Step loop -------------------------------------------------------
    let mut compiled: Option<CompiledBatch> = None;
    let mut current_key: Option<(bool, f64)> = None;
    let mut live = vec![false; lanes];
    let mut first_step = true;
    let mut t_prev = 0.0f64;

    'steps: for k in 1..=steps {
        let t = if k == steps { t_stop } else { k as f64 * dt };
        let dt_k = t - t_prev;
        let use_be = matches!(spec.method, Method::BackwardEuler) || (first_step && uic);
        let key = (use_be, dt_k);
        let key_changed = current_key != Some(key);

        for l in 0..lanes {
            live[l] = fallout[l].is_none();
        }
        if !live.iter().any(|&a| a) {
            break 'steps;
        }
        n_batch_solves += 1;

        for iter in 0..MAX_ITERS {
            // ---- Assembly -------------------------------------------
            let geom = BatchGeom {
                lanes,
                nn,
                size,
                ncaps,
            };
            if iter == 0 && key_changed {
                let kk = (use_be, dt_k.to_bits());
                if let Some(c) = compiled.as_ref() {
                    // A previously recorded key swaps its static
                    // images back in; a known structure under a
                    // never-seen key rebuilds them analytically — no
                    // scalar recording pass either way.
                    if !switch_key_image(ws, kk) {
                        reseed_key(ws, c, use_be, dt_k, lanes);
                        adopt_key(ws, kk);
                    }
                    stage_step_constants(nets, ws, c, &live, t, dt_k, use_be, geom);
                    assemble_compiled(ws, c, &live, geom);
                } else {
                    record_key(nets, ws, &mut compiled, &mut fallout, t, dt_k, use_be, geom);
                    for l in 0..lanes {
                        if fallout[l].is_some() {
                            live[l] = false;
                        }
                    }
                    if compiled.is_none() || !live.iter().any(|&a| a) {
                        break;
                    }
                    adopt_key(ws, kk);
                    let c = compiled.as_ref().expect("compiled at first key");
                    stage_step_constants(nets, ws, c, &live, t, dt_k, use_be, geom);
                }
                current_key = Some(key);
            } else {
                let c = compiled.as_ref().expect("compiled at first key");
                if iter == 0 {
                    stage_step_constants(nets, ws, c, &live, t, dt_k, use_be, geom);
                }
                assemble_compiled(ws, c, &live, geom);
            }
            let c = compiled.as_ref().expect("compiled at first key");

            // ---- Factor ---------------------------------------------
            // The scalar linear fast path factors only when the
            // companion key changes; the nonlinear path factors every
            // iteration.
            if !linear || key_changed {
                ws.fail_row.fill(None);
                c.sym
                    .refactor_batch(&c.pattern, &ws.vals, &mut ws.lu, &mut ws.fail_row);
                n_refactors += 1;
                for l in 0..lanes {
                    if live[l] && ws.fail_row[l].is_some() {
                        fallout[l] = Some(LaneFalloutReason::PivotDrift);
                        live[l] = false;
                    }
                }
                if !live.iter().any(|&a| a) {
                    break;
                }
            }

            // ---- Solve ----------------------------------------------
            c.sym.solve_batch(&mut ws.lu, &ws.rhs, &mut ws.x_new);

            // ---- Per-lane convergence (mirrors solve_nonlinear_ws) ---
            // Row sweeps over the `[row][lane]` layout: the per-lane
            // max-delta fold visits rows in the same ascending order as
            // the scalar path, so the `f64::max` chain is bit-identical.
            ws.conv_delta.clear();
            ws.conv_delta.resize(lanes, 0.0);
            for k in 0..size {
                let xr = &ws.x[k * lanes..k * lanes + lanes];
                let nr = &ws.x_new[k * lanes..k * lanes + lanes];
                for ((m, &a), &b) in ws.conv_delta.iter_mut().zip(xr).zip(nr) {
                    let d = (a - b).abs();
                    *m = m.max(d);
                }
            }
            let mut any_live = false;
            ws.conv_scale.clear();
            ws.conv_scale.resize(lanes, 0.0);
            ws.conv_copy.clear();
            ws.conv_copy.resize(lanes, 0);
            ws.conv_damp.clear();
            ws.conv_damp.resize(lanes, 0);
            for (l, alive) in live.iter_mut().enumerate() {
                if !*alive {
                    continue;
                }
                let max_delta = ws.conv_delta[l];
                if linear || max_delta <= VTOL {
                    ws.conv_copy[l] = u64::MAX;
                    *alive = false;
                    continue;
                }
                ws.conv_scale[l] = if max_delta > VSTEP_MAX {
                    VSTEP_MAX / max_delta
                } else {
                    1.0
                };
                ws.conv_damp[l] = u64::MAX;
                any_live = true;
            }
            // Converged lanes take the new solution verbatim (exact
            // bits), damped lanes apply the scalar path's damping
            // expression, and dead lanes keep their guess untouched.
            // The bit-select (not scale-zero arithmetic) keeps NaN/-0.0
            // garbage out of the result and compiles to vector blends.
            {
                let BatchedMnaWorkspace {
                    x,
                    x_new,
                    conv_scale,
                    conv_copy,
                    conv_damp,
                    ..
                } = &mut *ws;
                let sc = &conv_scale[..lanes];
                let mc = &conv_copy[..lanes];
                let md = &conv_damp[..lanes];
                for k in 0..size {
                    let xr = &mut x[k * lanes..k * lanes + lanes];
                    let nr = &x_new[k * lanes..k * lanes + lanes];
                    for ((((xv, &nv), &s), &c), &m) in xr.iter_mut().zip(nr).zip(sc).zip(mc).zip(md)
                    {
                        let xi = *xv;
                        let d = xi + s * (nv - xi);
                        let keep = !(c | m);
                        *xv = f64::from_bits(
                            (c & nv.to_bits()) | (m & d.to_bits()) | (keep & xi.to_bits()),
                        );
                    }
                }
            }
            if !any_live {
                break;
            }
        }
        // Lanes still live after MAX_ITERS did not converge.
        for l in 0..lanes {
            if live[l] {
                fallout[l] = Some(LaneFalloutReason::NonConvergence);
                live[l] = false;
            }
        }

        // ---- Accept the step for surviving lanes ---------------------
        // Row sweeps over the interleaved layouts: every lane computes,
        // fallen-out lanes just compute garbage that is never read
        // again (their outcome is re-run through the scalar path).
        for (ci, &(a, b)) in caps.iter().enumerate() {
            let ar = if a.is_ground() {
                None
            } else {
                Some(a.index() - 1)
            };
            let br = if b.is_ground() {
                None
            } else {
                Some(b.index() - 1)
            };
            let x = &ws.x;
            for l in 0..lanes {
                let v_new =
                    ar.map_or(0.0, |r| x[r * lanes + l]) - br.map_or(0.0, |r| x[r * lanes + l]);
                let v_old = ws.node_v[a.index() * lanes + l] - ws.node_v[b.index() * lanes + l];
                let cval = ws.cap_farads[ci * lanes + l];
                let ici = &mut ws.cap_i[ci * lanes + l];
                *ici = if use_be {
                    cval * (v_new - v_old) / dt_k
                } else {
                    2.0 * cval * (v_new - v_old) / dt_k - *ici
                };
            }
        }
        ws.node_v[lanes..nn * lanes].copy_from_slice(&ws.x[..(nn - 1) * lanes]);
        for l in 0..lanes {
            if fallout[l].is_some() {
                continue;
            }
            for (pi, probe) in spec.probes.iter().enumerate() {
                probe_series[l][pi].push(ws.node_v[probe.index() * lanes + l]);
            }
        }
        times.push(t);
        t_prev = t;
        first_step = false;
    }

    // --- Emit telemetry --------------------------------------------------
    if mpvar_trace::enabled() {
        mpvar_trace::counter_add(mpvar_trace::names::SPICE_BATCH_SOLVES, n_batch_solves);
        mpvar_trace::counter_add(mpvar_trace::names::SPICE_BATCH_LANE_TRIALS, lanes as u64);
        mpvar_trace::counter_add(mpvar_trace::names::SPICE_BATCH_REFACTORS, n_refactors);
        let fell = fallout.iter().filter(|f| f.is_some()).count() as u64;
        if fell > 0 {
            mpvar_trace::counter_add(mpvar_trace::names::SPICE_BATCH_FALLOUTS, fell);
        }
        mpvar_trace::gauge_set(
            mpvar_trace::names::SPICE_BATCH_WORKSPACE_BYTES,
            ws.bytes() as f64,
        );
    }

    let lanes_out = fallout
        .iter()
        .zip(probe_series)
        .map(|(f, probes)| match f {
            Some(reason) => BatchLaneOutcome::FellOut { reason: *reason },
            None => BatchLaneOutcome::Completed { probes },
        })
        .collect();
    Ok(BatchTransientResult {
        times,
        lanes: lanes_out,
    })
}

/// Batch dimensions threaded through the assembly helpers.
#[derive(Debug, Clone, Copy)]
struct BatchGeom {
    lanes: usize,
    nn: usize,
    size: usize,
    ncaps: usize,
}

/// Records one full scalar assembly per admitted lane under the current
/// key (this *is* that iteration's assembly — values **and** RHS), then
/// rebuilds the static base image, and — on the first call only —
/// compiles the shared structure: CSR pattern, stamp program,
/// static/dynamic classification, RHS program, and the shared symbolic
/// analysis (evicting lanes whose own analysis fails or disagrees).
#[allow(clippy::too_many_arguments)]
fn record_key(
    nets: &[&Netlist],
    ws: &mut BatchedMnaWorkspace,
    compiled: &mut Option<CompiledBatch>,
    fallout: &mut [Option<LaneFalloutReason>],
    t: f64,
    dt_k: f64,
    use_be: bool,
    geom: BatchGeom,
) {
    let BatchGeom { lanes, size, .. } = geom;
    let net0 = nets[0];

    // ---- First call: compile the shared structure --------------------
    if compiled.is_none() {
        let cls = classify(net0);
        let (pattern, program) = CsrMatrix::from_coords(size, &cls.coords);
        let nnz = pattern.nnz();
        let mut slot_has_dyn = vec![false; nnz];
        for (p, d) in cls.dyn_of.iter().enumerate() {
            if d.is_some() {
                slot_has_dyn[program[p] as usize] = true;
            }
        }
        let mut iter_prog = Vec::new();
        for (p, &slot) in program.iter().enumerate() {
            if slot_has_dyn[slot as usize] {
                iter_prog.push(match cls.dyn_of[p] {
                    Some(k) => IterStamp::Dyn { slot, k },
                    None => IterStamp::Stat { slot, p: p as u32 },
                });
            }
        }
        ws.vals.clear();
        ws.vals.resize(nnz * lanes, 0.0);
        ws.stamp_vals.clear();
        ws.stamp_vals.resize(program.len() * lanes, 0.0);
        ws.dyn_vals.clear();
        ws.dyn_vals.resize(cls.n_dyn * lanes, 0.0);
        ws.mos_ieq.clear();
        ws.mos_ieq.resize(cls.mosfets.len() * lanes, 0.0);

        record_lanes(nets, ws, &cls.coords, fallout, t, dt_k, use_be, geom);
        seed_vals(ws, &program, lanes);

        // Per-lane symbolic analysis: the first surviving lane's pivot
        // order becomes the batch's shared order; lanes that disagree
        // (or cannot be analyzed at all) fall out to the scalar path.
        let mut scratch = pattern.clone();
        let mut shared: Option<SymbolicLu> = None;
        for (l, f) in fallout.iter_mut().enumerate() {
            if f.is_some() {
                continue;
            }
            {
                let vals = scratch.values_mut();
                for (s, v) in vals.iter_mut().enumerate() {
                    *v = ws.vals[s * lanes + l];
                }
            }
            match SymbolicLu::analyze(&scratch) {
                Ok(sym) => match &shared {
                    None => shared = Some(sym),
                    Some(r) if r.perm() == sym.perm() => {}
                    Some(_) => *f = Some(LaneFalloutReason::SymbolicMismatch),
                },
                Err(_) => *f = Some(LaneFalloutReason::SymbolicMismatch),
            }
        }
        let Some(sym) = shared else {
            // Every lane fell out before a shared analysis existed.
            return;
        };
        ws.lu.prepare(&sym, lanes);
        let dyn_slots: Vec<u32> = (0..nnz)
            .filter(|&s| slot_has_dyn[s])
            .map(|s| s as u32)
            .collect();
        let mut models = Vec::with_capacity(cls.mosfets.len() * lanes);
        for info in &cls.mosfets {
            for net in nets {
                match &net.elements()[info.elem] {
                    Element::Mosfet { model, .. } => models.push(*model),
                    _ => unreachable!("lane structure verified at admission"),
                }
            }
        }
        // Capture the key-independent stamp values once; every future
        // key reseeds from these plus the recomputed cap companions —
        // no scalar assembly ever runs again for this batch.
        let mut fixed_vals = vec![0.0; cls.n_fixed * lanes];
        for (p, src) in cls.static_src.iter().enumerate() {
            if let StaticSrc::Fixed(fi) = *src {
                fixed_vals[fi as usize * lanes..(fi as usize + 1) * lanes]
                    .copy_from_slice(&ws.stamp_vals[p * lanes..(p + 1) * lanes]);
            }
        }
        *compiled = Some(CompiledBatch {
            pattern,
            program,
            iter_prog,
            dyn_slots,
            rhs_ops: cls.rhs_ops,
            mosfets: cls.mosfets,
            models,
            static_src: cls.static_src,
            fixed_vals,
            n_vsrc: net0.num_vsources(),
            n_isrc: cls.n_isrc,
            sym,
        });
        return;
    }

    unreachable!("record_key is only called before the structure is compiled");
}

/// Builds the static images (`stamp_vals`, seeded `vals`) for a
/// companion key that has no pooled image, **without scalar assembly**:
/// key-independent stamps copy from the captured `fixed_vals`, cap
/// companions recompute `g` with the scalar path's exact expression
/// (`farads / dt` for backward Euler, `2.0 * farads / dt` for
/// trapezoidal — negated for off-diagonals, both exact), and MOSFET
/// stamps stay zero (every assembly rebuilds them from staging). The
/// caller runs `stage_step_constants` + `assemble_compiled` afterwards,
/// the same proven-bit-identical path a restored key takes.
fn reseed_key(
    ws: &mut BatchedMnaWorkspace,
    c: &CompiledBatch,
    use_be: bool,
    dt_k: f64,
    lanes: usize,
) {
    // The resident buffers may have just been swapped out for a pooled
    // image's (possibly empty) vectors — size them before seeding.
    ws.stamp_vals.clear();
    ws.stamp_vals.resize(c.program.len() * lanes, 0.0);
    ws.vals.clear();
    ws.vals.resize(c.pattern.nnz() * lanes, 0.0);
    {
        let BatchedMnaWorkspace {
            stamp_vals,
            cap_farads,
            ..
        } = ws;
        for (p, src) in c.static_src.iter().enumerate() {
            let dst = &mut stamp_vals[p * lanes..(p + 1) * lanes];
            match *src {
                StaticSrc::Fixed(fi) => {
                    let fi = fi as usize;
                    dst.copy_from_slice(&c.fixed_vals[fi * lanes..(fi + 1) * lanes]);
                }
                StaticSrc::CapDiag(ci) => {
                    let ci = ci as usize;
                    let f = &cap_farads[ci * lanes..(ci + 1) * lanes];
                    for (d, &farads) in dst.iter_mut().zip(f) {
                        *d = if use_be {
                            farads / dt_k
                        } else {
                            2.0 * farads / dt_k
                        };
                    }
                }
                StaticSrc::CapOff(ci) => {
                    let ci = ci as usize;
                    let f = &cap_farads[ci * lanes..(ci + 1) * lanes];
                    for (d, &farads) in dst.iter_mut().zip(f) {
                        let g = if use_be {
                            farads / dt_k
                        } else {
                            2.0 * farads / dt_k
                        };
                        *d = -g;
                    }
                }
                StaticSrc::Dyn => {}
            }
        }
    }
    seed_vals(ws, &c.program, lanes);
}

/// Makes `key`'s static images (`stamp_vals`, seeded `vals`) resident
/// by *swapping* buffers with the key's pooled image — O(1), no copy.
/// The outgoing key's buffers are parked in its own image first (its
/// MOSFET-touched slots are dirty, but every assembly rebuilds those
/// from scratch, so parked images stay valid). Returns `false` when
/// `key` has never been recorded in this batch (or was evicted by the
/// LRU); the caller records it and then claims it via [`adopt_key`].
fn switch_key_image(ws: &mut BatchedMnaWorkspace, key: (bool, u64)) -> bool {
    park_resident(ws);
    let BatchedMnaWorkspace {
        key_images,
        key_clock,
        resident_key,
        stamp_vals,
        vals,
        ..
    } = ws;
    let Some(img) = key_images.iter_mut().find(|i| i.key == Some(key)) else {
        return false;
    };
    *key_clock += 1;
    img.last_used = *key_clock;
    img.key = None;
    std::mem::swap(stamp_vals, &mut img.stamp_vals);
    std::mem::swap(vals, &mut img.vals);
    // The claimed slot inherits whatever the last park left behind —
    // including the one empty buffer set a freshly grown pool rotates
    // through. Sizing it here (a no-op once every set is full) lets the
    // pool's byte footprint converge within the first batch instead of
    // creeping up one image on a later wave.
    img.stamp_vals.resize(stamp_vals.len(), 0.0);
    img.vals.resize(vals.len(), 0.0);
    *resident_key = Some(key);
    true
}

/// Marks the freshly recorded buffers as `key`'s resident image.
fn adopt_key(ws: &mut BatchedMnaWorkspace, key: (bool, u64)) {
    ws.resident_key = Some(key);
}

/// Parks the resident buffers into their key's pooled image, growing
/// the pool up to [`MAX_KEY_IMAGES`] and then evicting the
/// least-recently-hit image (an evicted key re-records on revisit).
fn park_resident(ws: &mut BatchedMnaWorkspace) {
    let BatchedMnaWorkspace {
        key_images,
        key_clock,
        resident_key,
        stamp_vals,
        vals,
        ..
    } = ws;
    let Some(rk) = resident_key.take() else {
        return;
    };
    *key_clock += 1;
    let slot = match key_images.iter().position(|i| i.key.is_none()) {
        Some(p) => p,
        None if key_images.len() < MAX_KEY_IMAGES => {
            key_images.push(KeyImage::default());
            key_images.len() - 1
        }
        None => {
            let (p, _) = key_images
                .iter()
                .enumerate()
                .min_by_key(|(_, i)| i.last_used)
                .expect("MAX_KEY_IMAGES > 0");
            p
        }
    };
    let img = &mut key_images[slot];
    img.key = Some(rk);
    img.last_used = *key_clock;
    std::mem::swap(stamp_vals, &mut img.stamp_vals);
    std::mem::swap(vals, &mut img.vals);
}

/// Runs the scalar recording assembly for every admitted lane: fills
/// that lane's RHS, captures the full stamp-value stream into
/// `stamp_vals`, and asserts the stamp sequence against the shared
/// classification (any desync between [`classify`] and the real
/// [`assemble_into`] walk dies here, loudly, at setup).
#[allow(clippy::too_many_arguments)]
fn record_lanes(
    nets: &[&Netlist],
    ws: &mut BatchedMnaWorkspace,
    coords: &[(usize, usize)],
    fallout: &[Option<LaneFalloutReason>],
    t: f64,
    dt_k: f64,
    use_be: bool,
    geom: BatchGeom,
) {
    let BatchGeom {
        lanes,
        nn,
        size,
        ncaps,
    } = geom;
    for (l, net) in nets.iter().enumerate() {
        if fallout[l].is_some() {
            continue;
        }
        ws.rec.coords.clear();
        ws.rec.vals.clear();
        ws.rec_rhs.clear();
        ws.rec_rhs.resize(size, 0.0);
        ws.rec_nv.clear();
        ws.rec_nv.resize(nn, 0.0);
        for r in 0..nn {
            ws.rec_nv[r] = ws.node_v[r * lanes + l];
        }
        ws.rec_ic.clear();
        ws.rec_ic.resize(ncaps, 0.0);
        for r in 0..ncaps {
            ws.rec_ic[r] = ws.cap_i[r * lanes + l];
        }
        let nv = &ws.rec_nv[..];
        let ic = &ws.rec_ic[..];
        let policy = if use_be {
            ReactivePolicy::BackwardEuler {
                dt: dt_k,
                prev_v: nv,
            }
        } else {
            ReactivePolicy::Trapezoidal {
                dt: dt_k,
                prev_v: nv,
                prev_ic: ic,
            }
        };
        ws.rec_x.clear();
        ws.rec_x.resize(size, 0.0);
        for r in 0..size {
            ws.rec_x[r] = ws.x[r * lanes + l];
        }
        let BatchedMnaWorkspace {
            rec,
            rec_rhs,
            rec_x,
            ..
        } = ws;
        assemble_into(net, t, policy, &rec_x[..], rec, rec_rhs);
        assert_eq!(
            ws.rec.coords, coords,
            "batch stamp classification desynced from assembly (lane {l})"
        );
        for (p, &v) in ws.rec.vals.iter().enumerate() {
            ws.stamp_vals[p * lanes + l] = v;
        }
        for (r, &v) in ws.rec_rhs.iter().enumerate() {
            ws.rhs[r * lanes + l] = v;
        }
    }
}

/// Rebuilds the full value image (`vals`) and the static base image
/// (`base_vals`) from the freshly recorded stamp stream, in program
/// order — the same `+=` accumulation sequence the scalar replayer
/// performs, so per-slot sums are bit-identical. Slots touched by any
/// MOSFET stamp are left out of the base (their whole accumulation runs
/// per iteration instead, preserving mixed static/dynamic ordering).
fn seed_vals(ws: &mut BatchedMnaWorkspace, program: &[u32], lanes: usize) {
    ws.vals.fill(0.0);
    for (p, &slot) in program.iter().enumerate() {
        let s = slot as usize;
        let src = &ws.stamp_vals[p * lanes..p * lanes + lanes];
        let dst = &mut ws.vals[s * lanes..s * lanes + lanes];
        for (d, v) in dst.iter_mut().zip(src) {
            *d += v;
        }
    }
}

/// Compiled per-iteration assembly for all live lanes: `memcpy` the
/// static base, stage MOSFET linearizations, replay the mixed-slot
/// program, rebuild the RHS.
fn assemble_compiled(
    ws: &mut BatchedMnaWorkspace,
    c: &CompiledBatch,
    live: &[bool],
    geom: BatchGeom,
) {
    let BatchGeom { lanes, .. } = geom;
    // Static slots keep their seeded values; only MOSFET-touched slots
    // are rebuilt, so the per-iteration matrix traffic scales with the
    // device count rather than the full nonzero count.
    for &slot in &c.dyn_slots {
        ws.vals[slot as usize * lanes..slot as usize * lanes + lanes].fill(0.0);
    }

    // Stage every MOSFET's linearization for every live lane, in the
    // exact emission order of the scalar assembly.
    for (mi, info) in c.mosfets.iter().enumerate() {
        for l in 0..lanes {
            if !live[l] {
                continue;
            }
            let x = &ws.x;
            let v = |row: Option<usize>| row.map_or(0.0, |r| x[r * lanes + l]);
            let model = &c.models[mi * lanes + l];
            let vgs = v(info.g_row) - v(info.s_row);
            let vds = v(info.d_row) - v(info.s_row);
            let ss = model.evaluate(vgs, vds);
            ws.mos_ieq[mi * lanes + l] = ss.id - ss.gm * vgs - ss.gds * vds;
            let mut di = info.dyn_base;
            let mut push = |buf: &mut [f64], val: f64| {
                buf[di * lanes + l] = val;
                di += 1;
            };
            if info.d_row.is_some() {
                push(&mut ws.dyn_vals, ss.gds);
                if info.g_row.is_some() {
                    push(&mut ws.dyn_vals, ss.gm);
                }
                if info.s_row.is_some() {
                    push(&mut ws.dyn_vals, -(ss.gm + ss.gds));
                }
            }
            if info.s_row.is_some() {
                push(&mut ws.dyn_vals, ss.gm + ss.gds);
                if info.g_row.is_some() {
                    push(&mut ws.dyn_vals, -ss.gm);
                }
                if info.d_row.is_some() {
                    push(&mut ws.dyn_vals, -ss.gds);
                }
            }
        }
    }

    // Replay the mixed-slot program (short: only MOSFET-touched slots),
    // stamp-outer so each stamp is one contiguous lanes-wide add. Lanes
    // that already converged (or fell out) replay stale-but-finite
    // values; their factors and solutions are computed and discarded,
    // exactly as the batched refactor/solve already do.
    for st in &c.iter_prog {
        let (slot, src) = match *st {
            IterStamp::Stat { slot, p } => (
                slot as usize,
                &ws.stamp_vals[p as usize * lanes..p as usize * lanes + lanes],
            ),
            IterStamp::Dyn { slot, k } => (
                slot as usize,
                &ws.dyn_vals[k as usize * lanes..k as usize * lanes + lanes],
            ),
        };
        let dst = &mut ws.vals[slot * lanes..slot * lanes + lanes];
        for (d, &v) in dst.iter_mut().zip(src) {
            *d += v;
        }
    }

    // Rebuild the RHS, ops in element order, from the per-step staged
    // constants (source values and capacitor companion currents change
    // only between steps, not between Newton iterations). Row-major
    // layout makes every op a contiguous lanes-wide add; lanes that are
    // no longer live accumulate stale-but-finite values whose solutions
    // are discarded.
    ws.rhs.fill(0.0);
    let BatchedMnaWorkspace {
        rhs,
        cap_rhs,
        vsrc_vals,
        isrc_vals,
        mos_ieq,
        ..
    } = ws;
    fn row(rhs: &mut [f64], lanes: usize, r: usize) -> &mut [f64] {
        &mut rhs[r * lanes..r * lanes + lanes]
    }
    for op in &c.rhs_ops {
        match *op {
            RhsOp::Cap {
                cap, a_row, b_row, ..
            } => {
                let ieq = &cap_rhs[cap * lanes..cap * lanes + lanes];
                if let Some(r) = a_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(ieq) {
                        *d += v;
                    }
                }
                if let Some(r) = b_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(ieq) {
                        *d += -v;
                    }
                }
            }
            RhsOp::Vsrc { row: r, vs, .. } => {
                row(rhs, lanes, r).copy_from_slice(&vsrc_vals[vs * lanes..vs * lanes + lanes]);
            }
            RhsOp::Isrc {
                p_row, n_row, is_, ..
            } => {
                let iv = &isrc_vals[is_ * lanes..is_ * lanes + lanes];
                if let Some(r) = p_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(iv) {
                        *d += -v;
                    }
                }
                if let Some(r) = n_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(iv) {
                        *d += v;
                    }
                }
            }
            RhsOp::Mos { d_row, s_row, mos } => {
                let ieq = &mos_ieq[mos * lanes..mos * lanes + lanes];
                if let Some(r) = d_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(ieq) {
                        *d -= v;
                    }
                }
                if let Some(r) = s_row {
                    for (d, &v) in row(rhs, lanes, r).iter_mut().zip(ieq) {
                        *d += v;
                    }
                }
            }
        }
    }
}

/// Stages the right-hand-side terms that are constant within a step:
/// source waveform values at `t` and capacitor companion currents from
/// the previous step's state. Every floating-point expression matches
/// the scalar assembly exactly; only *when* it is evaluated moves (once
/// per step instead of once per Newton iteration).
#[allow(clippy::too_many_arguments)]
fn stage_step_constants(
    nets: &[&Netlist],
    ws: &mut BatchedMnaWorkspace,
    c: &CompiledBatch,
    live: &[bool],
    t: f64,
    dt_k: f64,
    use_be: bool,
    geom: BatchGeom,
) {
    let BatchGeom {
        lanes, nn, ncaps, ..
    } = geom;
    let _ = nn;
    ws.vsrc_vals.resize(c.n_vsrc * lanes, 0.0);
    ws.isrc_vals.resize(c.n_isrc * lanes, 0.0);
    ws.cap_rhs.resize(ncaps * lanes, 0.0);
    // Op-outer: capacitor staging sweeps all lanes of one row at a time
    // (the interleaved layouts make every read contiguous); non-live
    // lanes compute garbage that no consumer reads. Waveform evals stay
    // per-lane — each lane owns a distinct waveform object.
    for op in &c.rhs_ops {
        match *op {
            RhsOp::Cap {
                cap, a_nv, b_nv, ..
            } => {
                let BatchedMnaWorkspace {
                    node_v,
                    cap_i,
                    cap_farads,
                    cap_rhs,
                    ..
                } = ws;
                let av = &node_v[a_nv * lanes..a_nv * lanes + lanes];
                let bv = &node_v[b_nv * lanes..b_nv * lanes + lanes];
                let f = &cap_farads[cap * lanes..cap * lanes + lanes];
                let ic = &cap_i[cap * lanes..cap * lanes + lanes];
                let dst = &mut cap_rhs[cap * lanes..cap * lanes + lanes];
                if use_be {
                    for (((d, &a), &b), &farads) in dst.iter_mut().zip(av).zip(bv).zip(f) {
                        let vprev = a - b;
                        let g = farads / dt_k;
                        *d = g * vprev;
                    }
                } else {
                    for ((((d, &a), &b), &farads), &icl) in
                        dst.iter_mut().zip(av).zip(bv).zip(f).zip(ic)
                    {
                        let vprev = a - b;
                        let g = 2.0 * farads / dt_k;
                        *d = g * vprev + icl;
                    }
                }
            }
            RhsOp::Vsrc { elem, vs, .. } => {
                for l in 0..lanes {
                    if !live[l] {
                        continue;
                    }
                    let w = match &nets[l].elements()[elem] {
                        Element::VSource { waveform, .. } => waveform,
                        _ => unreachable!("lane structure verified at admission"),
                    };
                    ws.vsrc_vals[vs * lanes + l] = w.eval(t);
                }
            }
            RhsOp::Isrc { elem, is_, .. } => {
                for l in 0..lanes {
                    if !live[l] {
                        continue;
                    }
                    let w = match &nets[l].elements()[elem] {
                        Element::ISource { waveform, .. } => waveform,
                        _ => unreachable!("lane structure verified at admission"),
                    };
                    ws.isrc_vals[is_ * lanes + l] = w.eval(t);
                }
            }
            RhsOp::Mos { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetModel;
    use crate::transient::Transient;
    use crate::waveform::Waveform;
    use mpvar_tech::preset::n10;

    /// Linear RC ladder driven by a pulse; per-lane R/C values differ.
    fn rc_lane(scale: f64) -> Netlist {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let n1 = net.node("n1");
        let n2 = net.node("n2");
        net.add_vsource(
            "VIN",
            vin,
            Netlist::GROUND,
            Waveform::pulse(0.0, 0.7, 1e-12, 1e-12, 1e-12, 1.0, 0.0).unwrap(),
        )
        .unwrap();
        net.add_resistor("R1", vin, n1, 1e3 * scale).unwrap();
        net.add_capacitor("C1", n1, Netlist::GROUND, 1e-15 / scale)
            .unwrap();
        net.add_resistor("R2", n1, n2, 2e3 * scale).unwrap();
        net.add_capacitor("C2", n2, Netlist::GROUND, 2e-15 / scale)
            .unwrap();
        net
    }

    /// NMOS discharge of a precharged capacitor, gated by a pulse.
    fn nmos_lane(scale: f64, cap_scale: f64) -> Netlist {
        let tech = n10();
        let mut net = Netlist::new();
        let bl = net.node("bl");
        let gate = net.node("gate");
        net.add_vsource(
            "VG",
            gate,
            Netlist::GROUND,
            Waveform::pulse(0.0, 0.7, 2e-12, 1e-12, 1e-12, 1.0, 0.0).unwrap(),
        )
        .unwrap();
        net.add_capacitor("CBL", bl, Netlist::GROUND, 2e-15 * cap_scale)
            .unwrap();
        net.add_mosfet(
            "M1",
            bl,
            gate,
            Netlist::GROUND,
            MosfetModel::new(tech.nmos().scaled(scale).unwrap()),
        )
        .unwrap();
        net
    }

    fn scalar_reference(
        net: &Netlist,
        initial: &[(NodeId, f64)],
        dt: f64,
        t_stop: f64,
    ) -> crate::transient::TransientResult {
        let mut tran = Transient::new(net).unwrap();
        for &(node, v) in initial {
            tran.set_initial_voltage(node, v);
        }
        tran.run(dt, t_stop).unwrap()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn linear_batch_bit_identical_to_scalar() {
        let nets: Vec<Netlist> = [1.0, 1.7, 0.6].iter().map(|&s| rc_lane(s)).collect();
        let refs: Vec<&Netlist> = nets.iter().collect();
        let n1 = nets[0].find_node("n1").unwrap();
        let n2 = nets[0].find_node("n2").unwrap();
        let initial = [(n1, 0.1)];
        // t_stop off the dt grid: exercises the shortened final step
        // (its own companion key) inside the batch.
        let (dt, t_stop) = (1e-12, 9.5e-12);

        let mut ws = BatchedMnaWorkspace::new();
        let spec = BatchTransientSpec {
            method: Method::Trapezoidal,
            dt,
            t_stop,
            initial: &initial,
            probes: &[n1, n2],
        };
        let out = run_transient_batch(&refs, &spec, &mut ws).unwrap();
        let bytes_after_first = ws.bytes();

        for (l, net) in nets.iter().enumerate() {
            let scalar = scalar_reference(net, &initial, dt, t_stop);
            assert_bits_eq(&out.times, scalar.times(), "times");
            match &out.lanes[l] {
                BatchLaneOutcome::Completed { probes } => {
                    assert_bits_eq(&probes[0], scalar.waveform(n1), "n1");
                    assert_bits_eq(&probes[1], scalar.waveform(n2), "n2");
                }
                other => panic!("lane {l} fell out: {other:?}"),
            }
        }

        // Re-running the same structure must not grow the workspace.
        let out2 = run_transient_batch(&refs, &spec, &mut ws).unwrap();
        assert_eq!(ws.bytes(), bytes_after_first, "workspace grew on reuse");
        match (&out.lanes[0], &out2.lanes[0]) {
            (
                BatchLaneOutcome::Completed { probes: a },
                BatchLaneOutcome::Completed { probes: b },
            ) => assert_bits_eq(&a[0], &b[0], "repeat"),
            _ => panic!("lane fell out on repeat"),
        }
    }

    #[test]
    fn nonlinear_batch_bit_identical_to_scalar() {
        let nets: Vec<Netlist> = [(1.0, 1.0), (1.3, 0.8), (0.7, 1.4), (1.05, 1.0)]
            .iter()
            .map(|&(s, c)| nmos_lane(s, c))
            .collect();
        let refs: Vec<&Netlist> = nets.iter().collect();
        let bl = nets[0].find_node("bl").unwrap();
        let gate = nets[0].find_node("gate").unwrap();
        let initial = [(bl, 0.7), (gate, 0.0)];
        let (dt, t_stop) = (2e-13, 2.05e-11);

        let mut ws = BatchedMnaWorkspace::new();
        let spec = BatchTransientSpec {
            method: Method::Trapezoidal,
            dt,
            t_stop,
            initial: &initial,
            probes: &[bl],
        };
        let out = run_transient_batch(&refs, &spec, &mut ws).unwrap();

        for (l, net) in nets.iter().enumerate() {
            let scalar = scalar_reference(net, &initial, dt, t_stop);
            match &out.lanes[l] {
                BatchLaneOutcome::Completed { probes } => {
                    assert_bits_eq(&probes[0], scalar.waveform(bl), "bl");
                }
                other => panic!("lane {l} fell out: {other:?}"),
            }
            // Sanity: the cap actually discharged through the device.
            let last = *scalar.waveform(bl).last().unwrap();
            assert!(last < 0.65, "bl never discharged: {last}");
        }
    }

    #[test]
    fn backward_euler_batch_matches_scalar() {
        let nets: Vec<Netlist> = [1.0, 2.2].iter().map(|&s| rc_lane(s)).collect();
        let refs: Vec<&Netlist> = nets.iter().collect();
        let n2 = nets[0].find_node("n2").unwrap();
        let initial = [(n2, 0.3)];
        let (dt, t_stop) = (1e-12, 8e-12);
        let mut ws = BatchedMnaWorkspace::new();
        let spec = BatchTransientSpec {
            method: Method::BackwardEuler,
            dt,
            t_stop,
            initial: &initial,
            probes: &[n2],
        };
        let out = run_transient_batch(&refs, &spec, &mut ws).unwrap();
        for (l, net) in nets.iter().enumerate() {
            let mut tran = Transient::new(net).unwrap();
            tran.set_method(Method::BackwardEuler);
            tran.set_initial_voltage(n2, 0.3);
            let scalar = tran.run(dt, t_stop).unwrap();
            match &out.lanes[l] {
                BatchLaneOutcome::Completed { probes } => {
                    assert_bits_eq(&probes[0], scalar.waveform(n2), "n2");
                }
                other => panic!("lane {l} fell out: {other:?}"),
            }
        }
    }

    #[test]
    fn structure_mismatch_lane_falls_out() {
        let a = rc_lane(1.0);
        let mut b = rc_lane(1.2);
        let n1 = b.find_node("n1").unwrap();
        b.add_resistor("REXTRA", n1, Netlist::GROUND, 5e3).unwrap();
        let c = rc_lane(0.9);
        let nets = [&a, &b, &c];
        let n1a = a.find_node("n1").unwrap();
        let initial = [(n1a, 0.0)];
        let mut ws = BatchedMnaWorkspace::new();
        let spec = BatchTransientSpec {
            method: Method::Trapezoidal,
            dt: 1e-12,
            t_stop: 5e-12,
            initial: &initial,
            probes: &[n1a],
        };
        let out = run_transient_batch(&nets, &spec, &mut ws).unwrap();
        assert!(matches!(
            out.lanes[1],
            BatchLaneOutcome::FellOut {
                reason: LaneFalloutReason::StructureMismatch
            }
        ));
        for l in [0usize, 2] {
            let scalar = scalar_reference(nets[l], &initial, 1e-12, 5e-12);
            match &out.lanes[l] {
                BatchLaneOutcome::Completed { probes } => {
                    assert_bits_eq(&probes[0], scalar.waveform(n1a), "n1");
                }
                other => panic!("lane {l} fell out: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_spec_validation() {
        let net = rc_lane(1.0);
        let n1 = net.find_node("n1").unwrap();
        let mut ws = BatchedMnaWorkspace::new();
        let initial = [(n1, 0.0)];
        let mut spec = BatchTransientSpec {
            method: Method::Trapezoidal,
            dt: 0.0,
            t_stop: 1e-9,
            initial: &initial,
            probes: &[],
        };
        assert!(matches!(
            run_transient_batch(&[&net], &spec, &mut ws),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        spec.dt = 1e-12;
        assert!(matches!(
            run_transient_batch(&[], &spec, &mut ws),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
    }

    #[test]
    fn single_lane_batch_matches_scalar() {
        let net = nmos_lane(1.0, 1.0);
        let bl = net.find_node("bl").unwrap();
        let gate = net.find_node("gate").unwrap();
        let initial = [(bl, 0.7), (gate, 0.0)];
        let (dt, t_stop) = (5e-13, 1e-11);
        let mut ws = BatchedMnaWorkspace::new();
        let spec = BatchTransientSpec {
            method: Method::Trapezoidal,
            dt,
            t_stop,
            initial: &initial,
            probes: &[bl],
        };
        let out = run_transient_batch(&[&net], &spec, &mut ws).unwrap();
        let scalar = scalar_reference(&net, &initial, dt, t_stop);
        match &out.lanes[0] {
            BatchLaneOutcome::Completed { probes } => {
                assert_bits_eq(&probes[0], scalar.waveform(bl), "bl");
            }
            other => panic!("lane fell out: {other:?}"),
        }
    }
}
