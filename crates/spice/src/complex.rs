//! Minimal complex arithmetic for AC analysis.
//!
//! A tiny dependency-free complex type: AC analysis solves the complex
//! MNA system through its real-equivalent 2n x 2n form, so only phasor
//! post-processing (magnitude, phase, arithmetic) is needed here.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + j im`.
///
/// # Example
///
/// ```
/// use mpvar_spice::complex::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// let w = z * Complex::J;
/// assert_eq!(w, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + j im`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase in radians, `atan2(im, re)`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Phase in degrees.
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude in decibels, `20 log10 |z|`.
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.abs_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+j{}", self.re, self.im)
        } else {
            write!(f, "{}-j{}", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn polar_quantities() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.abs(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((z.arg_deg() - 90.0).abs() < 1e-9);
        assert_eq!(z.conj(), Complex::new(0.0, -2.0));
        assert!((Complex::real(10.0).db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert_eq!(Complex::J * Complex::J, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn scalar_multiplication_and_from() {
        let z: Complex = 2.5.into();
        assert_eq!(z * 2.0, Complex::new(5.0, 0.0));
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-j2");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+j2");
    }
}
