//! DC sweep analysis: operating points across a swept source value.
//!
//! Sweeps one independent voltage source through a list of values,
//! solving the nonlinear DC operating point at each step with
//! warm-starting (the previous solution seeds the next Newton solve) —
//! the standard way to trace transfer curves such as the 6T cell's
//! butterfly plot.

use crate::error::SpiceError;
use crate::mna::{solve_nonlinear_ws, system_size, MnaWorkspace, OperatingPoint, ReactivePolicy};
use crate::netlist::{Element, Netlist, NodeId};
use crate::transient::SolverKernel;
use crate::waveform::Waveform;

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    values: Vec<f64>,
    points: Vec<OperatingPoint>,
}

impl DcSweepResult {
    /// The swept source values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The operating point at sweep index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn point(&self, i: usize) -> &OperatingPoint {
        &self.points[i]
    }

    /// The voltage of `node` across the sweep (the transfer curve).
    pub fn transfer(&self, node: NodeId) -> Vec<f64> {
        self.points.iter().map(|op| op.voltage(node)).collect()
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sweep is empty (never for a successful run).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Sweeps the voltage source named `source` through `values`, returning
/// the operating point at each value.
///
/// The source's waveform is overridden per point; the rest of the
/// circuit keeps its `t = 0` source values.
///
/// # Errors
///
/// * [`SpiceError::InvalidValue`] when `source` is not a voltage source;
/// * [`SpiceError::InvalidAnalysis`] for an empty or non-finite value
///   list;
/// * Newton/solver failures at any sweep point.
///
/// # Example
///
/// ```
/// use mpvar_spice::prelude::*;
/// use mpvar_spice::dcsweep::dc_sweep;
///
/// // A resistive divider: out = vin / 2 at every sweep point.
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))?;
/// net.add_resistor("R1", vin, out, 10e3)?;
/// net.add_resistor("R2", out, Netlist::GROUND, 10e3)?;
/// let sweep = dc_sweep(&net, "VIN", &[0.0, 0.35, 0.7])?;
/// let curve = sweep.transfer(out);
/// assert!((curve[2] - 0.35).abs() < 1e-6);
/// # Ok::<(), mpvar_spice::SpiceError>(())
/// ```
pub fn dc_sweep(net: &Netlist, source: &str, values: &[f64]) -> Result<DcSweepResult, SpiceError> {
    match net.element(source) {
        Some(Element::VSource { .. }) => {}
        Some(_) => {
            return Err(SpiceError::InvalidValue {
                element: source.to_string(),
                message: "dc sweep requires an independent voltage source".into(),
            })
        }
        None => {
            return Err(SpiceError::InvalidValue {
                element: source.to_string(),
                message: "no such element".into(),
            })
        }
    }
    if values.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            message: "sweep value list is empty".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SpiceError::InvalidAnalysis {
            message: "sweep values must be finite".into(),
        });
    }

    // Clone the netlist so the swept source can be rewritten per point.
    let mut working = net.clone();
    let mut x = vec![0.0; system_size(net)];
    let mut points = Vec::with_capacity(values.len());
    let mut stats = crate::mna::NewtonStats::default();
    // One compiled workspace across the whole sweep: rewriting the
    // source only changes stamp *values*, never the matrix structure,
    // so the symbolic analysis from the first point is reused by all
    // later points.
    let mut ws = MnaWorkspace::new(&working, SolverKernel::Compiled);

    for &v in values {
        set_vsource_dc(&mut working, source, v);
        let solved = solve_nonlinear_ws(&working, 0.0, ReactivePolicy::Dc, x, &mut stats, &mut ws);
        x = match solved {
            Ok(x) => x,
            Err(e) => {
                stats.emit();
                return Err(e);
            }
        };
        points.push(OperatingPoint::from_solution(&working, &x));
    }
    stats.emit();

    Ok(DcSweepResult {
        values: values.to_vec(),
        points,
    })
}

fn set_vsource_dc(net: &mut Netlist, name: &str, value: f64) {
    if let Some(Element::VSource { waveform, .. }) = net.element_mut(name) {
        *waveform = Waveform::dc(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetModel;
    use mpvar_tech::preset::n10;

    #[test]
    fn divider_transfer_is_linear() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("R1", vin, out, 1e3).unwrap();
        net.add_resistor("R2", out, Netlist::GROUND, 3e3).unwrap();
        let values: Vec<f64> = (0..8).map(|k| 0.1 * k as f64).collect();
        let sweep = dc_sweep(&net, "VIN", &values).unwrap();
        assert_eq!(sweep.len(), 8);
        for (i, &v) in values.iter().enumerate() {
            assert!((sweep.point(i).voltage(out) - 0.75 * v).abs() < 1e-6);
        }
    }

    #[test]
    fn nmos_inverter_vtc_is_monotone_decreasing() {
        let tech = n10();
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let gate = net.node("gate");
        let out = net.node("out");
        net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_vsource("VG", gate, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_resistor("RL", vdd, out, 100e3).unwrap();
        net.add_mosfet(
            "M1",
            out,
            gate,
            Netlist::GROUND,
            MosfetModel::new(*tech.nmos()),
        )
        .unwrap();
        let values: Vec<f64> = (0..=14).map(|k| 0.05 * k as f64).collect();
        let sweep = dc_sweep(&net, "VG", &values).unwrap();
        let vtc = sweep.transfer(out);
        for w in vtc.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "VTC must fall: {w:?}");
        }
        assert!(vtc[0] > 0.65, "off: {}", vtc[0]);
        assert!(*vtc.last().unwrap() < 0.2, "on: {}", vtc.last().unwrap());
    }

    #[test]
    fn warm_start_survives_sharp_transitions() {
        // CMOS-style inverter with a PMOS: the sharpest DC transition we
        // can build; every sweep point must converge.
        let tech = n10();
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let gate = net.node("gate");
        let out = net.node("out");
        net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_vsource("VG", gate, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net.add_mosfet("MP", out, gate, vdd, MosfetModel::new(*tech.pmos()))
            .unwrap();
        net.add_mosfet(
            "MN",
            out,
            gate,
            Netlist::GROUND,
            MosfetModel::new(*tech.nmos()),
        )
        .unwrap();
        let values: Vec<f64> = (0..=70).map(|k| 0.01 * k as f64).collect();
        let sweep = dc_sweep(&net, "VG", &values).unwrap();
        let vtc = sweep.transfer(out);
        assert!(vtc[0] > 0.65);
        assert!(*vtc.last().unwrap() < 0.05);
        // Transition happens somewhere in the middle.
        let mid = vtc.iter().position(|&v| v < 0.35).unwrap();
        assert!(mid > 20 && mid < 60, "switch at index {mid}");
    }

    #[test]
    fn validation() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        assert!(dc_sweep(&net, "R1", &[0.0]).is_err());
        assert!(dc_sweep(&net, "VX", &[0.0]).is_err());
        net.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        assert!(dc_sweep(&net, "V1", &[]).is_err());
        assert!(dc_sweep(&net, "V1", &[f64::NAN]).is_err());
        assert!(dc_sweep(&net, "V1", &[0.1, 0.2]).is_ok());
    }
}
