//! Error type for the circuit simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction, analysis, and deck parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// An element value was outside its physical range.
    InvalidValue {
        /// Element name.
        element: String,
        /// What was wrong.
        message: String,
    },
    /// An element name was reused.
    DuplicateElement {
        /// The duplicated name.
        name: String,
    },
    /// A node id did not belong to the netlist it was used with.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// The MNA matrix was singular (floating node, loop of ideal sources).
    SingularMatrix {
        /// Row at which elimination failed.
        row: usize,
    },
    /// Newton–Raphson failed to converge.
    NoConvergence {
        /// Iterations attempted.
        iterations: usize,
        /// Largest voltage update in the last iteration, V.
        last_delta_v: f64,
    },
    /// Transient configuration was invalid (non-positive step/stop, etc.).
    InvalidAnalysis {
        /// Human-readable reason.
        message: String,
    },
    /// A measurement target was never reached within the simulated window.
    MeasurementNotFound {
        /// Human-readable description of the measurement.
        message: String,
    },
    /// SPICE-deck parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::InvalidValue { element, message } => {
                write!(f, "invalid value for `{element}`: {message}")
            }
            SpiceError::DuplicateElement { name } => {
                write!(f, "duplicate element name `{name}`")
            }
            SpiceError::UnknownNode { index } => {
                write!(f, "node index {index} does not belong to this netlist")
            }
            SpiceError::SingularMatrix { row } => {
                write!(
                    f,
                    "singular MNA matrix at row {row} (floating node or ideal-source loop)"
                )
            }
            SpiceError::NoConvergence {
                iterations,
                last_delta_v,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations \
                 (last |dV| = {last_delta_v:.3e} V)"
            ),
            SpiceError::InvalidAnalysis { message } => {
                write!(f, "invalid analysis configuration: {message}")
            }
            SpiceError::MeasurementNotFound { message } => {
                write!(f, "measurement not found: {message}")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "deck parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpiceError::NoConvergence {
            iterations: 100,
            last_delta_v: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("dV"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
