//! A from-scratch SPICE-class circuit simulator for the `mpvar` workspace.
//!
//! The paper's SRAM read-time analysis is "based on SPICE-level
//! simulations of the SRAM cell array including the N10 transistor compact
//! models" (§II.A). This crate is that simulation engine, built without
//! external numerical dependencies:
//!
//! * [`netlist`] — circuit description: nodes, R/C elements, independent
//!   sources, MOSFETs;
//! * [`waveform`] — DC / PULSE / PWL source waveforms;
//! * [`mosfet`] — the Sakurai–Newton alpha-power-law compact model
//!   (saturation exponent `alpha`, channel-length modulation, smooth
//!   subthreshold turn-on for Newton robustness);
//! * [`sparse`] — a sparse row-map matrix with partial-pivoting LU-style
//!   elimination, plus a dense reference solver for cross-checks;
//! * [`mna`] — modified nodal analysis assembly and the Newton–Raphson
//!   DC operating-point solver;
//! * [`transient`] — backward-Euler / trapezoidal transient analysis with
//!   per-step Newton iteration;
//! * [`measure`] — waveform measurements (threshold crossings,
//!   differential crossings — the sense-amp criterion `|Vbl - Vblb| >=
//!   70mV` is a differential crossing);
//! * [`parser`] — a SPICE-deck subset reader/writer, standing in for the
//!   "LPE deck" files the paper's tool generates;
//! * [`value`] — engineering-notation number parsing (`10f`, `4.7k`).
//!
//! # Example: RC discharge matches the analytic exponential
//!
//! ```
//! use mpvar_spice::prelude::*;
//!
//! let mut net = Netlist::new();
//! let n1 = net.node("n1");
//! net.add_resistor("R1", n1, Netlist::GROUND, 1_000.0)?;
//! net.add_capacitor("C1", n1, Netlist::GROUND, 1e-12)?;
//!
//! let mut tran = Transient::new(&net)?;
//! tran.set_initial_voltage(n1, 1.0);
//! let result = tran.run(1e-11, 5e-9)?;
//! let v_at_tau = result.sample(n1, 1e-9)?; // one RC constant
//! assert!((v_at_tau - (-1.0f64).exp()).abs() < 0.01);
//! # Ok::<(), mpvar_spice::SpiceError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ac;
pub mod batch;
pub mod complex;
pub mod dcsweep;
pub mod error;
pub mod measure;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod parser;
pub mod sparse;
pub mod transient;
pub mod value;
pub mod waveform;

pub use ac::{AcAnalysis, AcResult};
pub use batch::{
    run_transient_batch, BatchLaneOutcome, BatchTransientResult, BatchTransientSpec,
    BatchedMnaWorkspace, LaneFalloutReason,
};
pub use complex::Complex;
pub use dcsweep::{dc_sweep, DcSweepResult};
pub use error::SpiceError;
pub use measure::{
    cross_differential, cross_differential_series, cross_threshold, cross_threshold_series,
    CrossDirection,
};
pub use mna::OperatingPoint;
pub use mosfet::{MosfetModel, SmallSignal};
pub use netlist::{Element, Netlist, NodeId};
pub use sparse::{CsrMatrix, DenseMatrix, LuWorkspace, SparseMatrix, SymbolicLu};
pub use transient::{Method, SolverKernel, Transient, TransientResult};
pub use waveform::Waveform;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::batch::{
        run_transient_batch, BatchLaneOutcome, BatchTransientResult, BatchTransientSpec,
        BatchedMnaWorkspace, LaneFalloutReason,
    };
    pub use crate::error::SpiceError;
    pub use crate::measure::{
        cross_differential, cross_differential_series, cross_threshold, cross_threshold_series,
        CrossDirection,
    };
    pub use crate::mna::OperatingPoint;
    pub use crate::mosfet::MosfetModel;
    pub use crate::netlist::{Element, Netlist, NodeId};
    pub use crate::transient::{Transient, TransientResult};
    pub use crate::waveform::Waveform;
}
