//! Waveform measurements.
//!
//! The paper's figure of merit is the time-to-discharge `td`: the moment
//! the sense-amp input differential reaches 70mV (`|Vbl - Vblb| >=
//! 0.07V`, §II.C). That is a *differential threshold crossing*, provided
//! here along with plain single-signal crossings and edge-to-edge delay.

use crate::error::SpiceError;
use crate::netlist::NodeId;
use crate::transient::TransientResult;

/// Which way a signal must cross the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossDirection {
    /// Crossing from below to at-or-above the threshold.
    Rising,
    /// Crossing from above to at-or-below the threshold.
    Falling,
    /// Either direction.
    Either,
}

fn crossing_time(
    times: &[f64],
    values: &[f64],
    threshold: f64,
    direction: CrossDirection,
    t_start: f64,
) -> Option<f64> {
    for i in 1..times.len() {
        if times[i] < t_start {
            continue;
        }
        let (v0, v1) = (values[i - 1], values[i]);
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match direction {
            CrossDirection::Rising => rising,
            CrossDirection::Falling => falling,
            CrossDirection::Either => rising || falling,
        };
        if hit {
            let (t0, t1) = (times[i - 1], times[i]);
            // Exact-sample hit: the sample time IS the crossing; the
            // interpolation below could perturb it by an ulp.
            if v1 == threshold || v1 == v0 {
                return Some(t1);
            }
            let t = t0 + (threshold - v0) * (t1 - t0) / (v1 - v0);
            if t >= t_start {
                return Some(t);
            }
        }
    }
    None
}

/// Time at which a raw sample series first crosses `threshold` in
/// `direction`, at or after `t_start` — the slice-level primitive behind
/// [`cross_threshold`], for callers (the batched trial solver) that hold
/// probe waveforms outside a [`TransientResult`].
///
/// Returns `None` when the series never crosses; the crossing arithmetic
/// is bit-identical to [`cross_threshold`] on the same samples.
pub fn cross_threshold_series(
    times: &[f64],
    values: &[f64],
    threshold: f64,
    direction: CrossDirection,
    t_start: f64,
) -> Option<f64> {
    crossing_time(times, values, threshold, direction, t_start)
}

/// Time at which the differential `a - b` of two raw sample series first
/// crosses `threshold` in `direction`, at or after `t_start`.
///
/// The differential is staged into `diff` (cleared and refilled), so a
/// caller measuring many trials can reuse one buffer and allocate
/// nothing in steady state. Bit-identical to [`cross_differential`] on
/// the same samples.
pub fn cross_differential_series(
    times: &[f64],
    a: &[f64],
    b: &[f64],
    threshold: f64,
    direction: CrossDirection,
    t_start: f64,
    diff: &mut Vec<f64>,
) -> Option<f64> {
    diff.clear();
    diff.extend(a.iter().zip(b).map(|(x, y)| x - y));
    crossing_time(times, diff, threshold, direction, t_start)
}

/// Time at which `node` first crosses `threshold` in `direction`, at or
/// after `t_start`, with linear interpolation between samples.
///
/// # Errors
///
/// [`SpiceError::MeasurementNotFound`] when the signal never crosses
/// within the simulated window.
///
/// # Example
///
/// ```
/// use mpvar_spice::prelude::*;
/// use mpvar_spice::measure::{cross_threshold, CrossDirection};
///
/// let mut net = Netlist::new();
/// let n1 = net.node("n1");
/// net.add_resistor("R1", n1, Netlist::GROUND, 1_000.0)?;
/// net.add_capacitor("C1", n1, Netlist::GROUND, 1e-12)?;
/// let mut tran = Transient::new(&net)?;
/// tran.set_initial_voltage(n1, 1.0);
/// let result = tran.run(1e-12, 5e-9)?;
/// // 10% discharge of an RC: t = -ln(0.9) * tau = 0.105ns.
/// let t = cross_threshold(&result, n1, 0.9, CrossDirection::Falling, 0.0)?;
/// assert!((t - 0.10536e-9).abs() < 2e-12);
/// # Ok::<(), mpvar_spice::SpiceError>(())
/// ```
pub fn cross_threshold(
    result: &TransientResult,
    node: NodeId,
    threshold: f64,
    direction: CrossDirection,
    t_start: f64,
) -> Result<f64, SpiceError> {
    crossing_time(
        result.times(),
        result.waveform(node),
        threshold,
        direction,
        t_start,
    )
    .ok_or_else(|| SpiceError::MeasurementNotFound {
        message: format!(
            "node `{}` never crossed {threshold} after t = {t_start}",
            result.node_name(node)
        ),
    })
}

/// Time at which the differential `v(a) - v(b)` first crosses `threshold`
/// in `direction`, at or after `t_start`.
///
/// The sense-amp criterion of the paper is
/// `cross_differential(&r, blb, bl, 0.07, Rising, t_wl)`: BLB stays
/// precharged while BL discharges, so the differential rises through
/// +70mV.
///
/// # Errors
///
/// [`SpiceError::MeasurementNotFound`] when the differential never
/// crosses within the simulated window.
pub fn cross_differential(
    result: &TransientResult,
    a: NodeId,
    b: NodeId,
    threshold: f64,
    direction: CrossDirection,
    t_start: f64,
) -> Result<f64, SpiceError> {
    let mut diff = Vec::new();
    cross_differential_series(
        result.times(),
        result.waveform(a),
        result.waveform(b),
        threshold,
        direction,
        t_start,
        &mut diff,
    )
    .ok_or_else(|| SpiceError::MeasurementNotFound {
        message: format!(
            "differential `{}` - `{}` never crossed {threshold} after t = {t_start}",
            result.node_name(a),
            result.node_name(b)
        ),
    })
}

/// Delay between a crossing on `from` and the next crossing on `to`.
///
/// # Errors
///
/// [`SpiceError::MeasurementNotFound`] if either crossing is missing.
pub fn delay(
    result: &TransientResult,
    from: NodeId,
    from_threshold: f64,
    from_direction: CrossDirection,
    to: NodeId,
    to_threshold: f64,
    to_direction: CrossDirection,
) -> Result<f64, SpiceError> {
    let t0 = cross_threshold(result, from, from_threshold, from_direction, 0.0)?;
    let t1 = cross_threshold(result, to, to_threshold, to_direction, t0)?;
    Ok(t1 - t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::transient::Transient;
    use crate::waveform::Waveform;

    fn rc_result() -> (TransientResult, NodeId) {
        let mut net = Netlist::new();
        let n1 = net.node("n1");
        net.add_resistor("R1", n1, Netlist::GROUND, 1e3).unwrap();
        net.add_capacitor("C1", n1, Netlist::GROUND, 1e-12).unwrap();
        let mut tran = Transient::new(&net).unwrap();
        tran.set_initial_voltage(n1, 1.0);
        (tran.run(1e-12, 5e-9).unwrap(), n1)
    }

    #[test]
    fn falling_crossing_interpolates() {
        let (r, n1) = rc_result();
        // v = exp(-t/tau): 50% at t = ln(2) * 1ns.
        let t = cross_threshold(&r, n1, 0.5, CrossDirection::Falling, 0.0).unwrap();
        assert!((t - 0.6931e-9).abs() < 2e-12, "t = {t}");
    }

    #[test]
    fn rising_direction_not_found_on_decay() {
        let (r, n1) = rc_result();
        assert!(matches!(
            cross_threshold(&r, n1, 0.5, CrossDirection::Rising, 0.0),
            Err(SpiceError::MeasurementNotFound { .. })
        ));
        // Either direction finds the falling edge.
        assert!(cross_threshold(&r, n1, 0.5, CrossDirection::Either, 0.0).is_ok());
    }

    #[test]
    fn t_start_skips_early_crossings() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::pulse(0.0, 1.0, 0.1e-9, 0.1e-9, 0.1e-9, 0.3e-9, 1e-9).unwrap(),
        )
        .unwrap();
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        let tran = Transient::new(&net).unwrap();
        let r = tran.run(1e-12, 2.5e-9).unwrap();
        let first = cross_threshold(&r, a, 0.5, CrossDirection::Rising, 0.0).unwrap();
        let second = cross_threshold(&r, a, 0.5, CrossDirection::Rising, first + 0.1e-9).unwrap();
        assert!(second > first + 0.5e-9, "{first} then {second}");
    }

    #[test]
    fn differential_crossing_bl_blb_style() {
        // a discharges, b holds: differential b - a rises through 70mV.
        let mut net = Netlist::new();
        let a = net.node("bl");
        let b = net.node("blb");
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        net.add_capacitor("Ca", a, Netlist::GROUND, 1e-12).unwrap();
        net.add_capacitor("Cb", b, Netlist::GROUND, 1e-12).unwrap();
        net.add_resistor("Rhold", b, Netlist::GROUND, 1e12).unwrap();
        let mut tran = Transient::new(&net).unwrap();
        tran.set_initial_voltage(a, 0.7);
        tran.set_initial_voltage(b, 0.7);
        let r = tran.run(1e-12, 2e-9).unwrap();
        let t = cross_differential(&r, b, a, 0.07, CrossDirection::Rising, 0.0).unwrap();
        // 0.07/0.7 = 10% discharge: t = -ln(0.9) * tau.
        assert!((t - 0.10536e-9).abs() < 2e-12, "t = {t}");
    }

    #[test]
    fn delay_between_edges() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.add_vsource(
            "VA",
            a,
            Netlist::GROUND,
            Waveform::pwl(vec![(0.0, 0.0), (1e-10, 1.0)]).unwrap(),
        )
        .unwrap();
        net.add_resistor("RA", a, Netlist::GROUND, 1e3).unwrap();
        net.add_resistor("RB", a, b, 1e3).unwrap();
        net.add_capacitor("CB", b, Netlist::GROUND, 1e-12).unwrap();
        let tran = Transient::new(&net).unwrap();
        let r = tran.run(1e-12, 5e-9).unwrap();
        let d = delay(
            &r,
            a,
            0.5,
            CrossDirection::Rising,
            b,
            0.5,
            CrossDirection::Rising,
        )
        .unwrap();
        assert!(d > 0.0, "b lags a: {d}");
    }

    #[test]
    fn exact_sample_hit_returns_that_time() {
        let times = [0.0, 1.0, 2.0];
        let vals = [0.0, 0.5, 1.0];
        let t = crossing_time(&times, &vals, 0.5, CrossDirection::Rising, 0.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// A sample landing exactly on the threshold IS the crossing:
        /// `crossing_time` returns that sample time bit-for-bit, with no
        /// interpolation rounding.
        #[test]
        fn exact_threshold_sample_is_returned_verbatim(
            threshold in -2.0f64..2.0,
            below in 0.01f64..1.0,
            above in 0.01f64..1.0,
            steps in prop::collection::vec(1e-12f64..1e-9, 3..20),
            hit_at in 1usize..19,
        ) {
            let hit = hit_at.min(steps.len() - 1);
            let times: Vec<f64> = steps
                .iter()
                .scan(0.0, |acc, dt| {
                    *acc += dt;
                    Some(*acc)
                })
                .collect();
            let values: Vec<f64> = (0..times.len())
                .map(|i| match i.cmp(&hit) {
                    std::cmp::Ordering::Less => threshold - below,
                    std::cmp::Ordering::Equal => threshold,
                    std::cmp::Ordering::Greater => threshold + above,
                })
                .collect();
            let t = crossing_time(&times, &values, threshold, CrossDirection::Rising, 0.0);
            prop_assert_eq!(t, Some(times[hit]));
        }

        /// A plateau that *touches* the threshold from below yields
        /// exactly one rising crossing (the first touch) and never a
        /// falling one: leaving an at-threshold plateau downward is not
        /// a fall from above.
        #[test]
        fn plateau_touching_threshold_rises_once_never_falls(
            threshold in -2.0f64..2.0,
            depth in 0.01f64..1.0,
            pre in 1usize..5,
            plateau in 1usize..5,
            post in 1usize..5,
            dt in 1e-12f64..1e-9,
        ) {
            let n = pre + plateau + post;
            let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
            let values: Vec<f64> = (0..n)
                .map(|i| {
                    if i >= pre && i < pre + plateau {
                        threshold
                    } else {
                        threshold - depth
                    }
                })
                .collect();
            let rising = crossing_time(&times, &values, threshold, CrossDirection::Rising, 0.0);
            prop_assert_eq!(rising, Some(times[pre]));
            let falling = crossing_time(&times, &values, threshold, CrossDirection::Falling, 0.0);
            prop_assert_eq!(falling, None);
            let either = crossing_time(&times, &values, threshold, CrossDirection::Either, 0.0);
            prop_assert_eq!(either, rising);
            // Restarting the search after the plateau finds nothing:
            // the single touch was the only crossing.
            let after = times[pre + plateau - 1] + dt / 2.0;
            let again = crossing_time(&times, &values, threshold, CrossDirection::Either, after);
            prop_assert_eq!(again, None);
        }
    }
}
