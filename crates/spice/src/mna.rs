//! Modified nodal analysis: assembly and the Newton–Raphson solver.
//!
//! The unknown vector is `[v(1) .. v(N-1), i(V1) .. i(Vm)]`: every
//! non-ground node voltage followed by one branch current per independent
//! voltage source. Nonlinear devices (MOSFETs) are stamped as their
//! Norton-equivalent linearization around the current guess and iterated
//! to convergence.

use std::collections::HashMap;

use crate::error::SpiceError;
use crate::netlist::{Element, Netlist, NodeId};
use crate::sparse::{CsrMatrix, LuFactors, LuWorkspace, SparseMatrix, SymbolicLu};
use crate::transient::SolverKernel;

/// Conductance added from every node to ground for numerical robustness
/// (keeps gates and capacitor-only nodes from making the matrix singular).
pub const GMIN: f64 = 1e-12;

/// Absolute Newton convergence tolerance on voltage updates, V.
pub(crate) const VTOL: f64 = 1e-9;

/// Maximum voltage change applied per Newton iteration, V (damping).
pub(crate) const VSTEP_MAX: f64 = 0.3;

/// Maximum Newton iterations before reporting non-convergence.
pub(crate) const MAX_ITERS: usize = 200;

/// Newton-solver statistics accumulated locally by one analysis and
/// emitted to the trace layer in a single batch ([`NewtonStats::emit`])
/// — per-iteration counter calls would put a lock on the hot path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NewtonStats {
    /// Nonlinear MNA systems solved.
    pub solves: u64,
    /// Newton–Raphson iterations across all solves.
    pub iterations: u64,
    /// Solves that failed to converge within [`MAX_ITERS`].
    pub failures: u64,
    /// Symbolic LU analyses performed (first factor or pivot-drift rebuild).
    pub lu_symbolic_builds: u64,
    /// Factorizations that reused an existing symbolic analysis.
    pub lu_symbolic_reuses: u64,
    /// Numeric-only refactorizations into a preallocated workspace.
    pub lu_refactors: u64,
    /// Adaptive-transient steps accepted by the LTE controller.
    pub step_accepts: u64,
    /// Adaptive-transient steps rejected (halved and retried).
    pub step_rejects: u64,
}

impl NewtonStats {
    /// Flushes the batch into the trace counters (no-op when tracing
    /// is disabled or nothing happened). Zero-valued counters are
    /// skipped so e.g. a legacy-kernel run emits no symbolic metrics.
    pub(crate) fn emit(&self) {
        if *self == Self::default() || !mpvar_trace::enabled() {
            return;
        }
        if self.solves > 0 {
            mpvar_trace::counter_add(mpvar_trace::names::SPICE_SOLVES, self.solves);
            mpvar_trace::counter_add(mpvar_trace::names::SPICE_NR_ITERATIONS, self.iterations);
            mpvar_trace::counter_add(mpvar_trace::names::SPICE_NR_FAILURES, self.failures);
        }
        for (name, value) in [
            (
                mpvar_trace::names::SPICE_LU_SYMBOLIC_BUILDS,
                self.lu_symbolic_builds,
            ),
            (
                mpvar_trace::names::SPICE_LU_SYMBOLIC_REUSES,
                self.lu_symbolic_reuses,
            ),
            (mpvar_trace::names::SPICE_LU_REFACTORS, self.lu_refactors),
            (mpvar_trace::names::SPICE_STEP_ACCEPTS, self.step_accepts),
            (mpvar_trace::names::SPICE_STEP_REJECTS, self.step_rejects),
        ] {
            if value > 0 {
                mpvar_trace::counter_add(name, value);
            }
        }
    }
}

/// How reactive elements (capacitors) are treated during assembly.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReactivePolicy<'a> {
    /// DC: capacitors are open circuits.
    Dc,
    /// Backward-Euler companion: `G = C/dt`, `Ieq = (C/dt) v_prev`.
    BackwardEuler {
        /// Time step, s.
        dt: f64,
        /// Node voltages at the previous step (indexed by node, incl. ground).
        prev_v: &'a [f64],
    },
    /// Trapezoidal companion: `G = 2C/dt`,
    /// `Ieq = (2C/dt) v_prev + i_prev`.
    Trapezoidal {
        /// Time step, s.
        dt: f64,
        /// Node voltages at the previous step.
        prev_v: &'a [f64],
        /// Capacitor currents at the previous step, in capacitor order.
        prev_ic: &'a [f64],
    },
}

/// A solved DC operating point.
///
/// # Example
///
/// ```
/// use mpvar_spice::prelude::*;
///
/// // Resistive divider: 0.7V across two equal 10k resistors.
/// let mut net = Netlist::new();
/// let vdd = net.node("vdd");
/// let mid = net.node("mid");
/// net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))?;
/// net.add_resistor("R1", vdd, mid, 10e3)?;
/// net.add_resistor("R2", mid, Netlist::GROUND, 10e3)?;
/// let op = OperatingPoint::solve(&net)?;
/// assert!((op.voltage(mid) - 0.35).abs() < 1e-6);
/// # Ok::<(), mpvar_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    source_currents: HashMap<String, f64>,
}

impl OperatingPoint {
    /// Solves the DC operating point of `net` (sources at their `t = 0`
    /// values, capacitors open).
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] or [`SpiceError::NoConvergence`].
    pub fn solve(net: &Netlist) -> Result<OperatingPoint, SpiceError> {
        let x0 = vec![0.0; system_size(net)];
        let mut stats = NewtonStats::default();
        let result = solve_nonlinear(net, 0.0, ReactivePolicy::Dc, x0, &mut stats);
        stats.emit();
        Ok(Self::from_solution(net, &result?))
    }

    pub(crate) fn from_solution(net: &Netlist, x: &[f64]) -> OperatingPoint {
        let nn = net.num_nodes();
        let mut voltages = vec![0.0; nn];
        voltages[1..nn].copy_from_slice(&x[..nn - 1]);
        let mut source_currents = HashMap::new();
        let mut j = 0;
        for e in net.elements() {
            if let Element::VSource { name, .. } = e {
                source_currents.insert(name.clone(), x[nn - 1 + j]);
                j += 1;
            }
        }
        OperatingPoint {
            voltages,
            source_currents,
        }
    }

    /// Voltage at a node, V.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved netlist.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages, indexed by node id (ground included as 0.0).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current through a named voltage source, A (positive from + to −
    /// through the source, SPICE convention).
    pub fn source_current(&self, name: &str) -> Option<f64> {
        self.source_currents.get(name).copied()
    }
}

/// Size of the MNA unknown vector for `net`.
pub(crate) fn system_size(net: &Netlist) -> usize {
    net.num_nodes() - 1 + net.num_vsources()
}

/// Solves the (possibly nonlinear) MNA system at time `t` under the given
/// reactive policy, starting from `x0`. Iteration counts accumulate into
/// `stats` (plain local integers; the caller batches them to the trace
/// layer once per analysis).
pub(crate) fn solve_nonlinear(
    net: &Netlist,
    t: f64,
    policy: ReactivePolicy<'_>,
    x: Vec<f64>,
    stats: &mut NewtonStats,
) -> Result<Vec<f64>, SpiceError> {
    let mut ws = MnaWorkspace::new(net, SolverKernel::Compiled);
    solve_nonlinear_ws(net, t, policy, x, stats, &mut ws)
}

/// [`solve_nonlinear`] with an explicit, reusable [`MnaWorkspace`]:
/// repeated calls against the same netlist structure (Newton iterations,
/// timesteps, sweep points, MC trials) pay for assembly-pattern
/// compilation and symbolic factorization exactly once.
pub(crate) fn solve_nonlinear_ws(
    net: &Netlist,
    t: f64,
    policy: ReactivePolicy<'_>,
    mut x: Vec<f64>,
    stats: &mut NewtonStats,
    ws: &mut MnaWorkspace,
) -> Result<Vec<f64>, SpiceError> {
    debug_assert_eq!(x.len(), ws.size);
    let linear = is_linear(net);
    let mut last_delta = f64::INFINITY;
    stats.solves += 1;

    let mut x_new = Vec::new();
    for _iter in 0..MAX_ITERS {
        stats.iterations += 1;
        ws.assemble(net, t, policy, &x);
        ws.factor(stats)?;
        ws.solve_into(&mut x_new);

        let mut max_delta = 0.0f64;
        for (a, b) in x.iter().zip(&x_new) {
            max_delta = max_delta.max((a - b).abs());
        }

        if linear {
            return Ok(x_new);
        }

        if max_delta <= VTOL {
            return Ok(x_new);
        }

        // Damped update: limit the largest component change to VSTEP_MAX.
        let scale = if max_delta > VSTEP_MAX {
            VSTEP_MAX / max_delta
        } else {
            1.0
        };
        for (xi, xn) in x.iter_mut().zip(&x_new) {
            *xi += scale * (xn - *xi);
        }
        last_delta = max_delta;
    }
    stats.failures += 1;
    Err(SpiceError::NoConvergence {
        iterations: MAX_ITERS,
        last_delta_v: last_delta,
    })
}

/// Per-analysis solver state for one netlist structure: the compiled
/// stamp program, the frozen CSR matrix, the symbolic LU analysis, and
/// the preallocated numeric buffers. Everything is plain owned data —
/// one workspace per analysis (and hence per `mpvar-exec` worker
/// closure), so parallel trials never alias buffers.
pub(crate) struct MnaWorkspace {
    size: usize,
    rhs: Vec<f64>,
    kernel: KernelState,
}

/// Kernel-specific storage behind [`MnaWorkspace`].
enum KernelState {
    /// Reference path: per-factor map-based assembly + pivoted
    /// elimination, exactly the pre-compiled-kernel behavior.
    Legacy {
        m: SparseMatrix,
        factors: Option<LuFactors>,
    },
    /// Compiled path; `None` until the first assembly records the
    /// stamp program. Boxed so the idle variant stays pointer-sized.
    Compiled(Option<Box<CompiledMna>>),
}

/// The compiled assembly + factorization state (built on first use).
struct CompiledMna {
    csr: CsrMatrix,
    /// Value-slot per recorded `add` call, in call order.
    program: Vec<u32>,
    /// Coordinate per recorded call, for debug-build desync checks.
    #[cfg(debug_assertions)]
    coords: Vec<(usize, usize)>,
    /// `None` until the first [`MnaWorkspace::factor`] runs the
    /// analysis (so a failed assembly never pays for it).
    symbolic: Option<(SymbolicLu, LuWorkspace)>,
}

impl MnaWorkspace {
    /// Creates an empty workspace for `net`'s system size.
    pub(crate) fn new(net: &Netlist, kernel: SolverKernel) -> Self {
        let size = system_size(net);
        Self {
            size,
            rhs: vec![0.0; size],
            kernel: match kernel {
                SolverKernel::Legacy => KernelState::Legacy {
                    m: SparseMatrix::new(size),
                    factors: None,
                },
                SolverKernel::Compiled => KernelState::Compiled(None),
            },
        }
    }

    /// Assembles the linearized system around `x` at time `t` into this
    /// workspace's matrix storage and right-hand side. On the compiled
    /// path the first call records the stamp program and runs the
    /// symbolic analysis lazily in [`MnaWorkspace::factor`]; subsequent
    /// calls replay slots into the frozen CSR values.
    pub(crate) fn assemble(
        &mut self,
        net: &Netlist,
        t: f64,
        policy: ReactivePolicy<'_>,
        x: &[f64],
    ) {
        self.rhs.fill(0.0);
        match &mut self.kernel {
            KernelState::Legacy { m, factors: _ } => {
                // Existing factors are kept: the linear fast path
                // re-assembles an identical matrix per step and decides
                // itself when a refactor is due.
                m.clear();
                assemble_into(net, t, policy, x, m, &mut self.rhs);
            }
            KernelState::Compiled(state @ None) => {
                let mut rec = StampRecorder {
                    coords: Vec::new(),
                    vals: Vec::new(),
                };
                assemble_into(net, t, policy, x, &mut rec, &mut self.rhs);
                let (mut csr, program) = CsrMatrix::from_coords(self.size, &rec.coords);
                {
                    let vals = csr.values_mut();
                    for (&slot, &v) in program.iter().zip(&rec.vals) {
                        vals[slot as usize] += v;
                    }
                }
                *state = Some(Box::new(CompiledMna {
                    csr,
                    program,
                    #[cfg(debug_assertions)]
                    coords: rec.coords,
                    symbolic: None,
                }));
            }
            KernelState::Compiled(Some(c)) => {
                c.csr.zero_values();
                let mut rep = StampReplayer {
                    slots: &c.program,
                    #[cfg(debug_assertions)]
                    coords: &c.coords,
                    vals: c.csr.values_mut(),
                    cursor: 0,
                };
                assemble_into(net, t, policy, x, &mut rep, &mut self.rhs);
                assert_eq!(
                    rep.cursor,
                    c.program.len(),
                    "stamp program desync: assembly is not structural"
                );
            }
        }
    }

    /// Factors the assembled matrix. Compiled path: numeric-only
    /// refactor under the frozen symbolic analysis; when a pivot has
    /// drifted below tolerance the analysis is rebuilt once with the
    /// current values (counted as a symbolic build) before giving up.
    pub(crate) fn factor(&mut self, stats: &mut NewtonStats) -> Result<(), SpiceError> {
        match &mut self.kernel {
            KernelState::Legacy { m, factors } => {
                *factors = Some(m.factor()?);
                Ok(())
            }
            KernelState::Compiled(None) => unreachable!("assemble() before factor()"),
            KernelState::Compiled(Some(c)) => {
                if c.symbolic.is_none() {
                    let sym = SymbolicLu::analyze(&c.csr)?;
                    let ws = sym.workspace();
                    c.symbolic = Some((sym, ws));
                    stats.lu_symbolic_builds += 1;
                } else {
                    stats.lu_symbolic_reuses += 1;
                }
                stats.lu_refactors += 1;
                {
                    let (sym, lu) = c.symbolic.as_mut().expect("just ensured");
                    if sym.refactor(&c.csr, lu).is_ok() {
                        return Ok(());
                    }
                }
                // Pivot drift under the frozen order: one re-analysis
                // with the current values, then hard failure.
                let sym = SymbolicLu::analyze(&c.csr)?;
                let mut lu = sym.workspace();
                stats.lu_symbolic_builds += 1;
                stats.lu_refactors += 1;
                let result = sym.refactor(&c.csr, &mut lu);
                c.symbolic = Some((sym, lu));
                result
            }
        }
    }

    /// Back-substitutes the workspace right-hand side through the last
    /// computed factors into `out`.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`MnaWorkspace::factor`].
    pub(crate) fn solve_into(&self, out: &mut Vec<f64>) {
        match &self.kernel {
            KernelState::Legacy { factors, .. } => {
                *out = factors
                    .as_ref()
                    .expect("factor() before solve")
                    .solve(&self.rhs);
            }
            KernelState::Compiled(Some(c)) => {
                let (sym, lu) = c.symbolic.as_ref().expect("factor() before solve");
                sym.solve_into(lu, &self.rhs, out);
            }
            KernelState::Compiled(None) => unreachable!("assemble() before solve"),
        }
    }
}

/// `true` when the netlist has no nonlinear elements.
pub(crate) fn is_linear(net: &Netlist) -> bool {
    !net.elements()
        .iter()
        .any(|e| matches!(e, Element::Mosfet { .. }))
}

/// Where assembled matrix entries go: the discovery pass targets a
/// [`SparseMatrix`] (or a pattern recorder), the hot path replays into
/// frozen CSR slots. The *sequence* of `add` calls for a given netlist
/// is structural — every branch in [`assemble_into`] depends only on
/// topology (ground-ness of nodes, element order), never on values or
/// time — which is what makes the recorded stamp program replayable.
pub(crate) trait MatrixSink {
    /// Accumulates `v` into entry `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl MatrixSink for SparseMatrix {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        SparseMatrix::add(self, r, c, v);
    }
}

/// Discovery-pass sink: records the structural coordinate sequence and
/// the values of one assembly, from which the frozen [`CsrMatrix`] and
/// the replayable slot program are compiled.
#[derive(Debug, Default)]
pub(crate) struct StampRecorder {
    pub(crate) coords: Vec<(usize, usize)>,
    pub(crate) vals: Vec<f64>,
}

impl MatrixSink for StampRecorder {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        // Zero values are recorded too: the program must have one slot
        // per structural stamp or later replays would desynchronize.
        self.coords.push((r, c));
        self.vals.push(v);
    }
}

/// Hot-path sink: replays a recorded stamp program into the frozen CSR
/// value array by cursor — no maps, no search, no allocation.
struct StampReplayer<'a> {
    slots: &'a [u32],
    #[cfg(debug_assertions)]
    coords: &'a [(usize, usize)],
    vals: &'a mut [f64],
    cursor: usize,
}

impl MatrixSink for StampReplayer<'_> {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.coords[self.cursor],
            (r, c),
            "stamp program desync at call {}",
            self.cursor
        );
        #[cfg(not(debug_assertions))]
        let _ = (r, c);
        self.vals[self.slots[self.cursor] as usize] += v;
        self.cursor += 1;
    }
}

/// Assembles the linearized MNA system around guess `x` at time `t`
/// into any [`MatrixSink`] and a caller-zeroed right-hand side.
pub(crate) fn assemble_into<S: MatrixSink>(
    net: &Netlist,
    t: f64,
    policy: ReactivePolicy<'_>,
    x: &[f64],
    m: &mut S,
    rhs: &mut [f64],
) {
    let nn = net.num_nodes();

    // Node voltage lookup from the current guess (ground = 0).
    let v_of = |node: NodeId| -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    };
    // Matrix row/col of a node (None for ground).
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };

    let stamp_conductance = |m: &mut S, a: NodeId, b: NodeId, g: f64| {
        if let Some(ia) = idx(a) {
            m.add(ia, ia, g);
        }
        if let Some(ib) = idx(b) {
            m.add(ib, ib, g);
        }
        if let (Some(ia), Some(ib)) = (idx(a), idx(b)) {
            m.add(ia, ib, -g);
            m.add(ib, ia, -g);
        }
    };
    // Current `i` injected INTO node `into` (from node `from`).
    let stamp_current = |rhs: &mut [f64], into: NodeId, i: f64| {
        if let Some(ii) = idx(into) {
            rhs[ii] += i;
        }
    };

    // GMIN to ground on every node keeps floating subcircuits solvable.
    for node in 1..nn {
        m.add(node - 1, node - 1, GMIN);
    }

    let mut vsrc = 0usize;
    let mut cap_index = 0usize;
    for e in net.elements() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                stamp_conductance(m, *a, *b, 1.0 / ohms);
            }
            Element::Capacitor { a, b, farads, .. } => {
                match policy {
                    ReactivePolicy::Dc => {}
                    ReactivePolicy::BackwardEuler { dt, prev_v } => {
                        let g = farads / dt;
                        let vprev = prev_v[a.index()] - prev_v[b.index()];
                        stamp_conductance(m, *a, *b, g);
                        stamp_current(rhs, *a, g * vprev);
                        stamp_current(rhs, *b, -g * vprev);
                    }
                    ReactivePolicy::Trapezoidal {
                        dt,
                        prev_v,
                        prev_ic,
                    } => {
                        let g = 2.0 * farads / dt;
                        let vprev = prev_v[a.index()] - prev_v[b.index()];
                        let ieq = g * vprev + prev_ic[cap_index];
                        stamp_conductance(m, *a, *b, g);
                        stamp_current(rhs, *a, ieq);
                        stamp_current(rhs, *b, -ieq);
                    }
                }
                cap_index += 1;
            }
            Element::VSource { p, n, waveform, .. } => {
                let row = nn - 1 + vsrc;
                if let Some(ip) = idx(*p) {
                    m.add(ip, row, 1.0);
                    m.add(row, ip, 1.0);
                }
                if let Some(in_) = idx(*n) {
                    m.add(in_, row, -1.0);
                    m.add(row, in_, -1.0);
                }
                rhs[row] = waveform.eval(t);
                vsrc += 1;
            }
            Element::ISource { p, n, waveform, .. } => {
                let i = waveform.eval(t);
                // Positive source current flows p -> n through the source,
                // i.e. it is pulled out of p and injected into n.
                stamp_current(rhs, *p, -i);
                stamp_current(rhs, *n, i);
            }
            Element::Mosfet { d, g, s, model, .. } => {
                let vgs = v_of(*g) - v_of(*s);
                let vds = v_of(*d) - v_of(*s);
                let ss = model.evaluate(vgs, vds);
                // Norton linearization: id ≈ Ieq + gm*vgs + gds*vds.
                let ieq = ss.id - ss.gm * vgs - ss.gds * vds;

                if let Some(id_) = idx(*d) {
                    m.add(id_, id_, ss.gds);
                    if let Some(ig) = idx(*g) {
                        m.add(id_, ig, ss.gm);
                    }
                    if let Some(is_) = idx(*s) {
                        m.add(id_, is_, -(ss.gm + ss.gds));
                    }
                    rhs[id_] -= ieq;
                }
                if let Some(is_) = idx(*s) {
                    m.add(is_, is_, ss.gm + ss.gds);
                    if let Some(ig) = idx(*g) {
                        m.add(is_, ig, -ss.gm);
                    }
                    if let Some(id_) = idx(*d) {
                        m.add(is_, id_, -ss.gds);
                    }
                    rhs[is_] += ieq;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetModel;
    use crate::waveform::Waveform;
    use mpvar_tech::preset::n10;

    #[test]
    fn resistive_divider() {
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let mid = net.node("mid");
        net.add_vsource("V1", vdd, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        net.add_resistor("R1", vdd, mid, 1e3).unwrap();
        net.add_resistor("R2", mid, Netlist::GROUND, 3e3).unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        assert!((op.voltage(mid) - 0.75).abs() < 1e-9);
        assert!((op.voltage(vdd) - 1.0).abs() < 1e-12);
        // Source current: 1V across 4k, flowing out of + terminal = -0.25mA
        // by SPICE convention (current into the + node is negative).
        let i = op.source_current("V1").unwrap();
        assert!((i + 0.25e-3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let a = net.node("a");
        // 1mA pulled from ground into node a (p=ground, n=a).
        net.add_isource("I1", Netlist::GROUND, a, Waveform::dc(1e-3))
            .unwrap();
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn capacitor_open_at_dc() {
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let mid = net.node("mid");
        net.add_vsource("V1", vdd, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        net.add_resistor("R1", vdd, mid, 1e3).unwrap();
        net.add_capacitor("C1", mid, Netlist::GROUND, 1e-12)
            .unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        // No DC path through the cap: mid floats up to vdd.
        assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_vsources() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.add_vsource("VA", a, Netlist::GROUND, Waveform::dc(2.0))
            .unwrap();
        net.add_vsource("VB", b, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        net.add_resistor("R1", a, b, 1e3).unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        assert!((op.voltage(a) - 2.0).abs() < 1e-9);
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        // 1mA flows a -> b; into VB's + terminal: +1mA.
        assert!((op.source_current("VB").unwrap() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // Resistor-loaded NMOS inverter: vdd -R- out -M- gnd.
        let tech = n10();
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let out = net.node("out");
        let gate = net.node("gate");
        net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_vsource("VG", gate, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_resistor("RL", vdd, out, 100e3).unwrap();
        net.add_mosfet(
            "M1",
            out,
            gate,
            Netlist::GROUND,
            MosfetModel::new(*tech.nmos()),
        )
        .unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        // Gate high with a load much weaker than the device: output low.
        assert!(op.voltage(out) < 0.25, "out = {}", op.voltage(out));

        // Gate low: output near vdd.
        let mut net2 = Netlist::new();
        let vdd2 = net2.node("vdd");
        let out2 = net2.node("out");
        let gate2 = net2.node("gate");
        net2.add_vsource("VDD", vdd2, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net2.add_vsource("VG", gate2, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        net2.add_resistor("RL", vdd2, out2, 100e3).unwrap();
        net2.add_mosfet(
            "M1",
            out2,
            gate2,
            Netlist::GROUND,
            MosfetModel::new(*n10().nmos()),
        )
        .unwrap();
        let op2 = OperatingPoint::solve(&net2).unwrap();
        assert!(op2.voltage(out2) > 0.65, "out = {}", op2.voltage(out2));
    }

    #[test]
    fn kcl_holds_at_op() {
        // Current through R1 equals current through R2 at the midpoint.
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let mid = net.node("mid");
        net.add_vsource("V1", vdd, Netlist::GROUND, Waveform::dc(0.7))
            .unwrap();
        net.add_resistor("R1", vdd, mid, 7e3).unwrap();
        net.add_resistor("R2", mid, Netlist::GROUND, 3e3).unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        let i1 = (op.voltage(vdd) - op.voltage(mid)) / 7e3;
        let i2 = op.voltage(mid) / 3e3;
        assert!((i1 - i2).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_capacitor("C1", a, Netlist::GROUND, 1e-15).unwrap();
        let op = OperatingPoint::solve(&net).unwrap();
        assert!(op.voltage(a).abs() < 1e-6);
    }

    #[test]
    fn ideal_source_loop_is_singular() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        net.add_vsource("V2", a, Netlist::GROUND, Waveform::dc(2.0))
            .unwrap();
        assert!(matches!(
            OperatingPoint::solve(&net),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn is_linear_detection() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        assert!(is_linear(&net));
        net.add_mosfet(
            "M1",
            a,
            Netlist::GROUND,
            Netlist::GROUND,
            MosfetModel::new(*n10().nmos()),
        )
        .unwrap();
        assert!(!is_linear(&net));
    }
}
