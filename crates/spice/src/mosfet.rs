//! The alpha-power-law MOSFET compact model.
//!
//! Sakurai & Newton's alpha-power law captures velocity saturation in
//! short-channel devices with three regions:
//!
//! * cutoff (`Vgs < Vth`) — here smoothed into a soft turn-on so Newton
//!   iteration never sees a derivative discontinuity;
//! * triode (`Vds < Vdsat`) — a parabolic interpolation that meets the
//!   saturation curve with matching value and slope;
//! * saturation — `Id = k (Vgs - Vth)^alpha (1 + lambda Vds)`.
//!
//! `Vdsat = vd0 (Vgs - Vth)^(alpha/2)` per the original paper. PMOS
//! devices are evaluated by mirroring all voltages; source/drain are
//! swapped automatically for negative `Vds` (the channel is symmetric).

use mpvar_tech::transistor::{Polarity, TransistorParams};

/// Smoothing half-width for the soft threshold turn-on, V.
///
/// Below `Vth` the overdrive is smoothly clamped to ~`SOFT_VOV/2 * exp(..)`
/// rather than 0, which keeps the Jacobian nonsingular when devices are
/// off. 2mV is far below any voltage of interest at a 0.7V rail.
const SOFT_VOV: f64 = 2e-3;

/// Operating-point small-signal parameters returned by
/// [`MosfetModel::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SmallSignal {
    /// Drain current, A (positive into the drain for NMOS orientation).
    pub id: f64,
    /// Transconductance `dId/dVgs`, S.
    pub gm: f64,
    /// Output conductance `dId/dVds`, S.
    pub gds: f64,
}

/// An evaluable MOSFET bound to tech-file parameters.
///
/// # Example
///
/// ```
/// use mpvar_spice::MosfetModel;
/// use mpvar_tech::preset::n10;
///
/// let nmos = MosfetModel::new(*n10().nmos());
/// // Fully on: Vgs = Vds = 0.7V.
/// let on = nmos.evaluate(0.7, 0.7);
/// // Off: Vgs = 0.
/// let off = nmos.evaluate(0.0, 0.7);
/// assert!(on.id > 1e-6);
/// assert!(off.id < 1e-8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    params: TransistorParams,
}

impl MosfetModel {
    /// Wraps tech-file parameters into an evaluable model.
    pub fn new(params: TransistorParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &TransistorParams {
        &self.params
    }

    /// Evaluates drain current and small-signal conductances at the given
    /// terminal voltages (`vgs`, `vds` as seen from the source, true sign
    /// conventions; PMOS takes negative values when on).
    ///
    /// The returned `id` is the current flowing drain→source through the
    /// channel (negative for PMOS in normal operation).
    pub fn evaluate(&self, vgs: f64, vds: f64) -> SmallSignal {
        match self.params.polarity() {
            Polarity::Nmos => self.evaluate_canonical(vgs, vds),
            Polarity::Pmos => {
                // Mirror: a PMOS with (vgs, vds) behaves like an NMOS with
                // (-vgs, -vds), with the current direction reversed.
                let m = self.evaluate_canonical(-vgs, -vds);
                SmallSignal {
                    id: -m.id,
                    gm: m.gm,
                    gds: m.gds,
                }
            }
        }
    }

    /// Canonical NMOS-orientation evaluation with source/drain swap for
    /// negative `vds`.
    fn evaluate_canonical(&self, vgs: f64, vds: f64) -> SmallSignal {
        if vds < 0.0 {
            // Swap source and drain: vgs' = vgd = vgs - vds, vds' = -vds.
            let m = self.forward(vgs - vds, -vds);
            // id reverses; derivatives transform by the chain rule:
            // id(vgs,vds) = -id'(vgs - vds, -vds)
            // d/dvgs = -gm'
            // d/dvds = gm' + gds'
            SmallSignal {
                id: -m.id,
                gm: -m.gm,
                gds: m.gm + m.gds,
            }
        } else {
            self.forward(vgs, vds)
        }
    }

    /// Forward-region evaluation (`vds >= 0`), analytic derivatives.
    fn forward(&self, vgs: f64, vds: f64) -> SmallSignal {
        let p = &self.params;
        let vov_raw = vgs - p.vth_v();

        // Smooth overdrive: vov_eff = softplus-like blend, always > 0.
        let (vov, dvov) = soft_overdrive(vov_raw);

        let alpha = p.alpha();
        let idsat0 = p.k_sat_a() * vov.powf(alpha);
        let didsat0_dvov = p.k_sat_a() * alpha * vov.powf(alpha - 1.0);

        let vdsat = p.vd0_v() * vov.powf(alpha / 2.0);
        let dvdsat_dvov = p.vd0_v() * (alpha / 2.0) * vov.powf(alpha / 2.0 - 1.0);

        let clm = 1.0 + p.lambda_per_v() * vds;

        if vds >= vdsat {
            // Saturation.
            let id = idsat0 * clm;
            let gm = didsat0_dvov * dvov * clm;
            let gds = idsat0 * p.lambda_per_v();
            SmallSignal { id, gm, gds }
        } else {
            // Triode: parabolic interpolation u(2-u), u = vds/vdsat.
            let u = vds / vdsat;
            let shape = u * (2.0 - u);
            let id = idsat0 * shape * clm;

            // d(shape)/dvds = (2 - 2u)/vdsat
            let dshape_dvds = (2.0 - 2.0 * u) / vdsat;
            // d(shape)/dvdsat = -vds*(2 - 2u)/vdsat^2 = -u * dshape_dvds
            let dshape_dvdsat = -u * (2.0 - 2.0 * u) / vdsat;

            let gm = (didsat0_dvov * shape + idsat0 * dshape_dvdsat * dvdsat_dvov) * dvov * clm;
            let gds = idsat0 * (dshape_dvds * clm + shape * p.lambda_per_v());
            SmallSignal { id, gm, gds }
        }
    }
}

/// Smoothly clamps the overdrive to positive values.
///
/// Returns `(vov_eff, d vov_eff / d vov_raw)`. For `vov_raw >> SOFT_VOV`
/// this is the identity; for `vov_raw << -SOFT_VOV` it decays to a tiny
/// positive floor, emulating (very steep) subthreshold conduction.
fn soft_overdrive(vov_raw: f64) -> (f64, f64) {
    // softplus with scale s: s*ln(1 + exp(x/s)) — smooth, monotone,
    // derivative in (0,1).
    let s = SOFT_VOV;
    let x = vov_raw / s;
    if x > 30.0 {
        (vov_raw, 1.0)
    } else if x < -30.0 {
        // Deep subthreshold: ln(1 + e^x) -> e^x, still strictly monotone.
        let e = x.exp().max(1e-290);
        (s * e, e)
    } else {
        let e = x.exp();
        let v = s * e.ln_1p();
        let d = e / (1.0 + e);
        (v.max(1e-30), d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn nmos() -> MosfetModel {
        MosfetModel::new(*n10().nmos())
    }

    fn pmos() -> MosfetModel {
        MosfetModel::new(*n10().pmos())
    }

    #[test]
    fn off_device_conducts_negligibly() {
        let m = nmos();
        let s = m.evaluate(0.0, 0.7);
        assert!(s.id.abs() < 1e-8, "off current {}", s.id);
        assert!(s.id > 0.0, "soft model keeps a positive floor");
    }

    #[test]
    fn on_current_magnitude() {
        // SRAM-class device at full gate drive: tens of uA.
        let s = nmos().evaluate(0.7, 0.7);
        assert!(s.id > 5e-6 && s.id < 100e-6, "Ion {}", s.id);
    }

    #[test]
    fn saturation_region_flatness() {
        let m = nmos();
        let a = m.evaluate(0.7, 0.5);
        let b = m.evaluate(0.7, 0.7);
        // Only lambda-slope difference.
        let ratio = b.id / a.id;
        assert!(ratio > 1.0 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn triode_region_resistive() {
        let m = nmos();
        let a = m.evaluate(0.7, 0.01);
        let b = m.evaluate(0.7, 0.02);
        // Near-linear: doubling vds nearly doubles current.
        let ratio = b.id / a.id;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn id_continuous_across_vdsat() {
        let m = nmos();
        let p = m.params();
        let vov: f64 = 0.45;
        let vdsat = p.vd0_v() * vov.powf(p.alpha() / 2.0);
        let below = m.evaluate(p.vth_v() + vov, vdsat - 1e-9);
        let above = m.evaluate(p.vth_v() + vov, vdsat + 1e-9);
        assert!(((below.id - above.id) / above.id).abs() < 1e-6);
        // Slope also continuous (both ~ lambda-limited).
        assert!((below.gds - above.gds).abs() / above.gds.max(1e-12) < 0.05);
    }

    #[test]
    fn analytic_derivatives_match_finite_differences() {
        let m = nmos();
        let h = 1e-7;
        for (vgs, vds) in [
            (0.7, 0.7),
            (0.7, 0.05),
            (0.4, 0.3),
            (0.3, 0.01),
            (0.2, 0.5), // near threshold
            (0.7, 0.0),
        ] {
            let s = m.evaluate(vgs, vds);
            let gm_fd = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
            let gds_fd = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
            let scale = s.gm.abs().max(1e-9);
            assert!(
                (s.gm - gm_fd).abs() / scale < 1e-3,
                "gm mismatch at ({vgs},{vds}): {} vs {}",
                s.gm,
                gm_fd
            );
            let scale = s.gds.abs().max(1e-9);
            assert!(
                (s.gds - gds_fd).abs() / scale < 1e-3,
                "gds mismatch at ({vgs},{vds}): {} vs {}",
                s.gds,
                gds_fd
            );
        }
    }

    #[test]
    fn source_drain_swap_antisymmetric() {
        let m = nmos();
        // A symmetric channel: id(vg; vd, vs) = -id(vg; vs, vd).
        // With vs as reference: evaluate(vgs, vds) vs swapped device.
        let fwd = m.evaluate(0.7, 0.3);
        // Swapped: gate-to-"new source" voltage = 0.7 - 0.3 = 0.4, vds = -0.3.
        let rev = m.evaluate(0.4, -0.3);
        assert!(
            ((fwd.id + rev.id) / fwd.id).abs() < 1e-9,
            "fwd {} rev {}",
            fwd.id,
            rev.id
        );
    }

    #[test]
    fn reverse_derivatives_match_finite_differences() {
        let m = nmos();
        let h = 1e-7;
        let (vgs, vds) = (0.4, -0.3);
        let s = m.evaluate(vgs, vds);
        let gm_fd = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
        let gds_fd = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
        assert!((s.gm - gm_fd).abs() / gm_fd.abs().max(1e-9) < 1e-3);
        assert!((s.gds - gds_fd).abs() / gds_fd.abs().max(1e-9) < 1e-3);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let m = pmos();
        // PMOS on: vgs = -0.7, vds = -0.7 -> current flows source->drain,
        // i.e. negative id in NMOS orientation.
        let on = m.evaluate(-0.7, -0.7);
        assert!(on.id < -1e-6, "pmos on current {}", on.id);
        let off = m.evaluate(0.0, -0.7);
        assert!(off.id.abs() < 1e-8);
        // Conductances stay positive.
        assert!(on.gm > 0.0);
        assert!(on.gds > 0.0);
    }

    #[test]
    fn monotone_in_vgs() {
        let m = nmos();
        let mut last = -1.0;
        for k in 0..20 {
            let vgs = 0.1 + 0.03 * k as f64;
            let id = m.evaluate(vgs, 0.7).id;
            assert!(id > last, "id must rise with vgs");
            last = id;
        }
    }

    #[test]
    fn soft_overdrive_is_smooth_and_monotone() {
        let mut last_v = 0.0;
        for k in -100..100 {
            let x = k as f64 * 1e-3;
            let (v, d) = soft_overdrive(x);
            assert!(v > 0.0);
            assert!((0.0..=1.0).contains(&d));
            if k > -100 {
                assert!(v >= last_v);
            }
            last_v = v;
        }
        // Far above threshold: identity.
        let (v, d) = soft_overdrive(0.5);
        assert!((v - 0.5).abs() < 1e-6);
        assert!((d - 1.0).abs() < 1e-6);
    }
}
