//! Circuit netlist: nodes and elements.

use std::collections::HashMap;
use std::fmt;

use crate::error::SpiceError;
use crate::mosfet::MosfetModel;
use crate::waveform::Waveform;

/// An interned circuit node.
///
/// `NodeId(0)` is always ground. Ids are only meaningful within the
/// netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A circuit element.
#[derive(Debug, Clone)]
pub enum Element {
    /// A linear resistor.
    Resistor {
        /// Element name (unique within the netlist).
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance, Ω (strictly positive).
        ohms: f64,
    },
    /// A linear capacitor.
    Capacitor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, F (strictly positive).
        farads: f64,
    },
    /// An independent voltage source (`p` is the + terminal).
    VSource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// An independent current source; positive current flows from `p`
    /// through the source to `n` (i.e. it *pulls* current out of `p`).
    ISource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// A MOSFET (drain, gate, source; bulk tied to source).
    Mosfet {
        /// Element name.
        name: String,
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Compact model to evaluate.
        model: MosfetModel,
    },
}

impl Element {
    /// The element's unique name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }

    /// The nodes this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![*a, *b],
            Element::VSource { p, n, .. } | Element::ISource { p, n, .. } => vec![*p, *n],
            Element::Mosfet { d, g, s, .. } => vec![*d, *g, *s],
        }
    }
}

/// A circuit netlist.
///
/// Nodes are created by name via [`Netlist::node`]; ground is the
/// reserved name `"0"` (aliases `"gnd"`, `"GND"`). Element names must be
/// unique, mirroring SPICE semantics.
///
/// # Example
///
/// ```
/// use mpvar_spice::{Netlist, Waveform};
///
/// let mut net = Netlist::new();
/// let vdd = net.node("vdd");
/// let out = net.node("out");
/// net.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(0.7))?;
/// net.add_resistor("R1", vdd, out, 10_000.0)?;
/// net.add_capacitor("C1", out, Netlist::GROUND, 1e-15)?;
/// assert_eq!(net.num_nodes(), 3); // ground + vdd + out
/// assert_eq!(net.elements().len(), 3);
/// # Ok::<(), mpvar_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_names: HashMap<String, usize>,
}

impl Netlist {
    /// The ground node, present in every netlist.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist (containing only ground).
    pub fn new() -> Self {
        let mut n = Self {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
        };
        n.node_index.insert("0".to_string(), NodeId(0));
        n.node_index.insert("gnd".to_string(), NodeId(0));
        n
    }

    /// Returns the node with the given name, creating it if needed.
    /// `"0"` and `"gnd"` (any case) map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = if name.eq_ignore_ascii_case("gnd") || name == "0" {
            "0".to_string()
        } else {
            name.to_string()
        };
        if let Some(&id) = self.node_index.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.clone());
        self.node_index.insert(key, id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        self.node_index.get(key).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total node count including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.element_names.get(name).map(|&i| &self.elements[i])
    }

    /// Mutable lookup by name (e.g. to retarget a source for a DC
    /// sweep). Topology (the element's nodes) must not be changed
    /// through this reference in ways that violate netlist invariants;
    /// value/waveform edits are the intended use.
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.element_names
            .get(name)
            .copied()
            .map(move |i| &mut self.elements[i])
    }

    /// Number of independent voltage sources (each adds one MNA branch
    /// unknown).
    pub fn num_vsources(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    fn check_node(&self, id: NodeId) -> Result<(), SpiceError> {
        if id.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode { index: id.0 })
        }
    }

    fn register(&mut self, element: Element) -> Result<(), SpiceError> {
        for node in element.nodes() {
            self.check_node(node)?;
        }
        let name = element.name().to_string();
        if self.element_names.contains_key(&name) {
            return Err(SpiceError::DuplicateElement { name });
        }
        self.element_names.insert(name, self.elements.len());
        self.elements.push(element);
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] for a non-positive or non-finite
    /// resistance; [`SpiceError::DuplicateElement`] for a reused name;
    /// [`SpiceError::UnknownNode`] for foreign node ids.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), SpiceError> {
        if !ohms.is_finite() || ohms <= 0.0 {
            return Err(SpiceError::InvalidValue {
                element: name.to_string(),
                message: format!("resistance must be positive, got {ohms}"),
            });
        }
        self.register(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Same classes as [`Netlist::add_resistor`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), SpiceError> {
        if !farads.is_finite() || farads <= 0.0 {
            return Err(SpiceError::InvalidValue {
                element: name.to_string(),
                message: format!("capacitance must be positive, got {farads}"),
            });
        }
        self.register(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        })
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// [`SpiceError::DuplicateElement`] / [`SpiceError::UnknownNode`].
    pub fn add_vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        waveform: Waveform,
    ) -> Result<(), SpiceError> {
        self.register(Element::VSource {
            name: name.to_string(),
            p,
            n,
            waveform,
        })
    }

    /// Adds an independent current source.
    ///
    /// # Errors
    ///
    /// [`SpiceError::DuplicateElement`] / [`SpiceError::UnknownNode`].
    pub fn add_isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        waveform: Waveform,
    ) -> Result<(), SpiceError> {
        self.register(Element::ISource {
            name: name.to_string(),
            p,
            n,
            waveform,
        })
    }

    /// Adds a MOSFET (bulk tied to source).
    ///
    /// # Errors
    ///
    /// [`SpiceError::DuplicateElement`] / [`SpiceError::UnknownNode`].
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosfetModel,
    ) -> Result<(), SpiceError> {
        self.register(Element::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            model,
        })
    }

    /// Nodes with no path to ground through R / V / M elements produce a
    /// singular matrix; this helper reports nodes touched by capacitors
    /// only, which is the common authoring mistake.
    pub fn floating_nodes(&self) -> Vec<NodeId> {
        let mut has_dc_path = vec![false; self.num_nodes()];
        has_dc_path[0] = true;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, .. } => {
                    has_dc_path[a.0] = true;
                    has_dc_path[b.0] = true;
                }
                Element::VSource { p, n, .. } => {
                    has_dc_path[p.0] = true;
                    has_dc_path[n.0] = true;
                }
                Element::Mosfet { d, g: _, s, .. } => {
                    has_dc_path[d.0] = true;
                    has_dc_path[s.0] = true;
                }
                _ => {}
            }
        }
        (0..self.num_nodes())
            .filter(|&i| !has_dc_path[i])
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut n = Netlist::new();
        assert_eq!(n.node("0"), Netlist::GROUND);
        assert_eq!(n.node("gnd"), Netlist::GROUND);
        assert_eq!(n.node("GND"), Netlist::GROUND);
        assert_eq!(n.find_node("GnD"), Some(Netlist::GROUND));
        assert!(Netlist::GROUND.is_ground());
    }

    #[test]
    fn node_interning() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let a2 = n.node("a");
        let b = n.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(n.num_nodes(), 3);
        assert_eq!(n.node_name(a), "a");
        assert_eq!(n.find_node("b"), Some(b));
        assert_eq!(n.find_node("zzz"), None);
    }

    #[test]
    fn element_validation() {
        let mut n = Netlist::new();
        let a = n.node("a");
        assert!(n.add_resistor("R1", a, Netlist::GROUND, 0.0).is_err());
        assert!(n.add_resistor("R1", a, Netlist::GROUND, -5.0).is_err());
        assert!(n
            .add_resistor("R1", a, Netlist::GROUND, f64::INFINITY)
            .is_err());
        assert!(n.add_capacitor("C1", a, Netlist::GROUND, 0.0).is_err());
        n.add_resistor("R1", a, Netlist::GROUND, 100.0).unwrap();
        assert!(matches!(
            n.add_resistor("R1", a, Netlist::GROUND, 200.0),
            Err(SpiceError::DuplicateElement { .. })
        ));
    }

    #[test]
    fn foreign_node_rejected() {
        let mut n1 = Netlist::new();
        let mut n2 = Netlist::new();
        let a1 = n1.node("a");
        let _ = n2.node("x");
        // Node from n1 with a larger index than n2 has.
        let b1 = n1.node("b");
        let _ = b1;
        let far = NodeId(99);
        assert!(matches!(
            n2.add_resistor("R1", far, Netlist::GROUND, 1.0),
            Err(SpiceError::UnknownNode { .. })
        ));
        let _ = a1;
    }

    #[test]
    fn element_lookup_and_counts() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        n.add_resistor("R1", a, Netlist::GROUND, 50.0).unwrap();
        assert_eq!(n.num_vsources(), 1);
        assert!(n.element("V1").is_some());
        assert!(n.element("R9").is_none());
        assert_eq!(n.elements().len(), 2);
    }

    #[test]
    fn floating_node_detection() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        n.add_capacitor("C1", b, Netlist::GROUND, 1e-15).unwrap();
        let floating = n.floating_nodes();
        assert_eq!(floating, vec![b]);
    }

    #[test]
    fn mosfet_nodes_give_dc_path() {
        use mpvar_tech::preset::n10;
        let mut n = Netlist::new();
        let d = n.node("d");
        let g = n.node("g");
        let s = n.node("s");
        n.add_mosfet("M1", d, g, s, MosfetModel::new(*n10().nmos()))
            .unwrap();
        // Gate is capacitive only -> floating unless driven.
        let floating = n.floating_nodes();
        assert_eq!(floating, vec![g]);
    }
}
