//! SPICE-deck subset reader and writer.
//!
//! The paper's LPE tool "generates the LPE deck" consumed by the circuit
//! simulator; `mpvar` keeps that file interface. Supported card types:
//!
//! ```text
//! * comment                      ; also "; comment"
//! Rname n1 n2 value
//! Cname n1 n2 value
//! Vname p  n  DC 0.7
//! Vname p  n  PULSE(v0 v1 delay rise fall width period)
//! Vname p  n  PWL(t1 v1 t2 v2 ...)
//! Iname p  n  DC 1u
//! Mname d g s modelname          ; bulk tied to source
//! + continuation of the previous card
//! .tran step stop
//! .ic v(node)=value [v(node)=value ...]
//! .end
//! ```
//!
//! MOSFET model names are resolved against a caller-supplied model map
//! (the tech file is the source of truth; decks reference by name).

use std::collections::HashMap;

use crate::error::SpiceError;
use crate::mosfet::MosfetModel;
use crate::netlist::{Element, Netlist};
use crate::value::{format_value, parse_value};
use crate::waveform::Waveform;

/// A `.dc source start stop step` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct DcDirective {
    /// Source to sweep.
    pub source: String,
    /// Sweep start value.
    pub start: f64,
    /// Sweep stop value (inclusive within rounding).
    pub stop: f64,
    /// Sweep increment (sign-corrected to the sweep direction).
    pub step: f64,
}

impl DcDirective {
    /// Expands the directive into the concrete sweep values.
    pub fn values(&self) -> Vec<f64> {
        let step = if (self.stop - self.start).signum() == self.step.signum() {
            self.step
        } else {
            -self.step
        };
        let n = ((self.stop - self.start) / step).round() as usize;
        (0..=n).map(|k| self.start + step * k as f64).collect()
    }
}

/// An `.ac dec points fstart fstop` directive (decade sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct AcDirective {
    /// Points per decade.
    pub points_per_decade: usize,
    /// Start frequency, Hz.
    pub f_start: f64,
    /// Stop frequency, Hz.
    pub f_stop: f64,
}

impl AcDirective {
    /// Expands the directive into the concrete frequency list.
    pub fn frequencies(&self) -> Vec<f64> {
        let decades = (self.f_stop / self.f_start).log10();
        let count = ((decades * self.points_per_decade as f64).ceil() as usize).max(1) + 1;
        let (l0, l1) = (self.f_start.ln(), self.f_stop.ln());
        (0..count)
            .map(|i| (l0 + (l1 - l0) * i as f64 / (count - 1) as f64).exp())
            .collect()
    }
}

/// A parsed deck: the netlist plus analysis directives.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The circuit.
    pub netlist: Netlist,
    /// `.tran step stop`, if present.
    pub tran: Option<(f64, f64)>,
    /// `.dc` sweep directive, if present.
    pub dc: Option<DcDirective>,
    /// `.ac` sweep directive, if present.
    pub ac: Option<AcDirective>,
    /// `.ic` initial conditions as `(node_name, volts)` pairs.
    pub initial_conditions: Vec<(String, f64)>,
    /// Title from the first line when it is a comment.
    pub title: Option<String>,
}

/// Parses a deck, resolving MOSFET model names through `models`.
///
/// # Errors
///
/// [`SpiceError::Parse`] with a 1-based line number for syntax errors or
/// unknown model names, plus the usual netlist validation errors.
pub fn parse_deck(text: &str, models: &HashMap<String, MosfetModel>) -> Result<Deck, SpiceError> {
    // Join continuation lines first, remembering original line numbers.
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            match cards.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest.trim());
                }
                None => {
                    return Err(SpiceError::Parse {
                        line: lineno,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            cards.push((lineno, line.to_string()));
        }
    }

    let mut deck = Deck {
        netlist: Netlist::new(),
        tran: None,
        dc: None,
        ac: None,
        initial_conditions: Vec::new(),
        title: None,
    };

    let perr = |line: usize, message: String| SpiceError::Parse { line, message };

    for (i, (lineno, card)) in cards.iter().enumerate() {
        let lineno = *lineno;
        let trimmed = card.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('*') || trimmed.starts_with(';') {
            if i == 0 {
                deck.title = Some(trimmed[1..].trim().to_string());
            }
            continue;
        }

        let upper = trimmed.to_ascii_uppercase();
        if upper.starts_with(".END") {
            break;
        }
        if upper.starts_with(".TRAN") {
            let toks: Vec<&str> = trimmed.split_whitespace().collect();
            if toks.len() < 3 {
                return Err(perr(lineno, ".tran needs <step> <stop>".into()));
            }
            let step = parse_value(toks[1])
                .map_err(|_| perr(lineno, format!("bad .tran step `{}`", toks[1])))?;
            let stop = parse_value(toks[2])
                .map_err(|_| perr(lineno, format!("bad .tran stop `{}`", toks[2])))?;
            deck.tran = Some((step, stop));
            continue;
        }
        if upper.starts_with(".DC") {
            let toks: Vec<&str> = trimmed.split_whitespace().collect();
            if toks.len() < 5 {
                return Err(perr(
                    lineno,
                    ".dc needs <source> <start> <stop> <step>".into(),
                ));
            }
            let mut nums = [0.0f64; 3];
            for (slot, t) in nums.iter_mut().zip(&toks[2..5]) {
                *slot = parse_value(t).map_err(|_| perr(lineno, format!("bad .dc value `{t}`")))?;
            }
            if nums[2] == 0.0 {
                return Err(perr(lineno, ".dc step must be nonzero".into()));
            }
            deck.dc = Some(DcDirective {
                source: toks[1].to_string(),
                start: nums[0],
                stop: nums[1],
                step: nums[2],
            });
            continue;
        }
        if upper.starts_with(".AC") {
            let toks: Vec<&str> = trimmed.split_whitespace().collect();
            // Accept ".ac dec N fstart fstop" and ".ac N fstart fstop".
            let args: Vec<&str> = if toks.len() >= 5 && toks[1].eq_ignore_ascii_case("dec") {
                toks[2..5].to_vec()
            } else if toks.len() >= 4 {
                toks[1..4].to_vec()
            } else {
                return Err(perr(
                    lineno,
                    ".ac needs [dec] <points> <fstart> <fstop>".into(),
                ));
            };
            let points: usize = args[0]
                .parse()
                .map_err(|_| perr(lineno, format!("bad .ac point count `{}`", args[0])))?;
            let f_start = parse_value(args[1])
                .map_err(|_| perr(lineno, format!("bad .ac fstart `{}`", args[1])))?;
            let f_stop = parse_value(args[2])
                .map_err(|_| perr(lineno, format!("bad .ac fstop `{}`", args[2])))?;
            let valid = points >= 1 && f_start > 0.0 && f_stop > f_start;
            if !valid {
                return Err(perr(
                    lineno,
                    ".ac needs points >= 1 and 0 < fstart < fstop".into(),
                ));
            }
            deck.ac = Some(AcDirective {
                points_per_decade: points,
                f_start,
                f_stop,
            });
            continue;
        }
        if upper.starts_with(".IC") {
            for assignment in trimmed.split_whitespace().skip(1) {
                let (lhs, rhs) = assignment
                    .split_once('=')
                    .ok_or_else(|| perr(lineno, format!("bad .ic assignment `{assignment}`")))?;
                let node = lhs
                    .trim()
                    .strip_prefix("v(")
                    .or_else(|| lhs.trim().strip_prefix("V("))
                    .and_then(|s| s.strip_suffix(')'))
                    .ok_or_else(|| {
                        perr(
                            lineno,
                            format!("expected v(node)=value, got `{assignment}`"),
                        )
                    })?;
                let volts =
                    parse_value(rhs).map_err(|_| perr(lineno, format!("bad .ic value `{rhs}`")))?;
                deck.initial_conditions.push((node.to_string(), volts));
            }
            continue;
        }
        if upper.starts_with('.') {
            return Err(perr(lineno, format!("unsupported directive `{trimmed}`")));
        }

        // Element card. Split but keep parenthesized groups together.
        let toks = tokenize_card(trimmed);
        if toks.len() < 3 {
            return Err(perr(lineno, format!("short element card `{trimmed}`")));
        }
        let name = toks[0].clone();
        let kind = name
            .chars()
            .next()
            .expect("nonempty token")
            .to_ascii_uppercase();
        match kind {
            'R' | 'C' => {
                if toks.len() < 4 {
                    return Err(perr(lineno, format!("`{name}` needs 2 nodes and a value")));
                }
                let a = deck.netlist.node(&toks[1]);
                let b = deck.netlist.node(&toks[2]);
                let v = parse_value(&toks[3])
                    .map_err(|_| perr(lineno, format!("bad value `{}`", toks[3])))?;
                if kind == 'R' {
                    deck.netlist.add_resistor(&name, a, b, v)?;
                } else {
                    deck.netlist.add_capacitor(&name, a, b, v)?;
                }
            }
            'V' | 'I' => {
                if toks.len() < 4 {
                    return Err(perr(lineno, format!("`{name}` needs 2 nodes and a source")));
                }
                let p = deck.netlist.node(&toks[1]);
                let n = deck.netlist.node(&toks[2]);
                let wf = parse_waveform(&toks[3..], lineno)?;
                if kind == 'V' {
                    deck.netlist.add_vsource(&name, p, n, wf)?;
                } else {
                    deck.netlist.add_isource(&name, p, n, wf)?;
                }
            }
            'M' => {
                if toks.len() < 5 {
                    return Err(perr(
                        lineno,
                        format!("`{name}` needs d g s and a model name"),
                    ));
                }
                let d = deck.netlist.node(&toks[1]);
                let g = deck.netlist.node(&toks[2]);
                let s = deck.netlist.node(&toks[3]);
                let model = models
                    .get(toks[4].as_str())
                    .ok_or_else(|| perr(lineno, format!("unknown mosfet model `{}`", toks[4])))?;
                deck.netlist.add_mosfet(&name, d, g, s, *model)?;
            }
            other => {
                return Err(perr(lineno, format!("unsupported element type `{other}`")));
            }
        }
    }

    Ok(deck)
}

/// Splits an element card into tokens, keeping `PULSE(...)` / `PWL(...)`
/// groups as single tokens followed by their arguments.
fn tokenize_card(card: &str) -> Vec<String> {
    // Normalize parentheses to spaces inside function-style groups but
    // remember the function keyword.
    let mut out = Vec::new();
    let normalized = card.replace('(', " ( ").replace(')', " ) ");
    for t in normalized.split_whitespace() {
        out.push(t.to_string());
    }
    out
}

fn parse_waveform(toks: &[String], lineno: usize) -> Result<Waveform, SpiceError> {
    let perr = |message: String| SpiceError::Parse {
        line: lineno,
        message,
    };
    let head = toks[0].to_ascii_uppercase();
    match head.as_str() {
        "DC" => {
            let v = toks.get(1).ok_or_else(|| perr("DC needs a value".into()))?;
            Ok(Waveform::dc(
                parse_value(v).map_err(|_| perr(format!("bad DC value `{v}`")))?,
            ))
        }
        "PULSE" => {
            let args = paren_args(&toks[1..], lineno)?;
            if args.len() != 7 {
                return Err(perr(format!(
                    "PULSE needs 7 arguments (v0 v1 delay rise fall width period), got {}",
                    args.len()
                )));
            }
            Waveform::pulse(
                args[0], args[1], args[2], args[3], args[4], args[5], args[6],
            )
        }
        "PWL" => {
            let args = paren_args(&toks[1..], lineno)?;
            if args.is_empty() || args.len() % 2 != 0 {
                return Err(perr("PWL needs an even, nonzero argument count".into()));
            }
            let pts = args.chunks(2).map(|c| (c[0], c[1])).collect();
            Waveform::pwl(pts)
        }
        _ => {
            // Bare value means DC.
            Ok(Waveform::dc(parse_value(&toks[0]).map_err(|_| {
                perr(format!("bad source value `{}`", toks[0]))
            })?))
        }
    }
}

fn paren_args(toks: &[String], lineno: usize) -> Result<Vec<f64>, SpiceError> {
    let perr = |message: String| SpiceError::Parse {
        line: lineno,
        message,
    };
    let mut args = Vec::new();
    let mut iter = toks.iter();
    match iter.next().map(String::as_str) {
        Some("(") => {}
        other => return Err(perr(format!("expected `(`, got {other:?}"))),
    }
    for t in iter {
        if t == ")" {
            return Ok(args);
        }
        args.push(parse_value(t).map_err(|_| perr(format!("bad argument `{t}`")))?);
    }
    Err(perr("missing `)`".into()))
}

/// Renders a netlist (plus optional `.tran` and `.ic`) back to deck text.
///
/// The output parses back to an equivalent circuit with [`parse_deck`]
/// (MOSFET model names are emitted as `nmos` / `pmos` by polarity).
pub fn write_deck(
    net: &Netlist,
    title: &str,
    tran: Option<(f64, f64)>,
    initial_conditions: &[(String, f64)],
) -> String {
    let mut out = format!("* {title}\n");
    for e in net.elements() {
        match e {
            Element::Resistor { name, a, b, ohms } => {
                out.push_str(&format!(
                    "{name} {} {} {}\n",
                    net.node_name(*a),
                    net.node_name(*b),
                    format_value(*ohms)
                ));
            }
            Element::Capacitor { name, a, b, farads } => {
                out.push_str(&format!(
                    "{name} {} {} {}\n",
                    net.node_name(*a),
                    net.node_name(*b),
                    format_value(*farads)
                ));
            }
            Element::VSource {
                name,
                p,
                n,
                waveform,
            }
            | Element::ISource {
                name,
                p,
                n,
                waveform,
            } => {
                out.push_str(&format!(
                    "{name} {} {} {}\n",
                    net.node_name(*p),
                    net.node_name(*n),
                    format_waveform(waveform)
                ));
            }
            Element::Mosfet {
                name,
                d,
                g,
                s,
                model,
            } => {
                out.push_str(&format!(
                    "{name} {} {} {} {}\n",
                    net.node_name(*d),
                    net.node_name(*g),
                    net.node_name(*s),
                    model.params().polarity()
                ));
            }
        }
    }
    for (node, v) in initial_conditions {
        out.push_str(&format!(".ic v({node})={}\n", format_value(*v)));
    }
    if let Some((step, stop)) = tran {
        out.push_str(&format!(
            ".tran {} {}\n",
            format_value(step),
            format_value(stop)
        ));
    }
    out.push_str(".end\n");
    out
}

fn format_waveform(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {}", format_value(*v)),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            format_value(*v0),
            format_value(*v1),
            format_value(*delay),
            format_value(*rise),
            format_value(*fall),
            format_value(*width),
            format_value(*period)
        ),
        Waveform::Pwl(pts) => {
            let body: Vec<String> = pts
                .iter()
                .flat_map(|(t, v)| [format_value(*t), format_value(*v)])
                .collect();
            format!("PWL({})", body.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvar_tech::preset::n10;

    fn models() -> HashMap<String, MosfetModel> {
        let tech = n10();
        let mut m = HashMap::new();
        m.insert("nmos".to_string(), MosfetModel::new(*tech.nmos()));
        m.insert("pmos".to_string(), MosfetModel::new(*tech.pmos()));
        m
    }

    #[test]
    fn parses_basic_deck() {
        let deck =
            "* rc divider\nR1 vdd mid 10k\nC1 mid 0 100f\nVDD vdd 0 DC 0.7\n.tran 1p 2n\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        assert_eq!(d.title.as_deref(), Some("rc divider"));
        assert_eq!(d.netlist.elements().len(), 3);
        assert_eq!(d.tran, Some((1e-12, 2e-9)));
    }

    #[test]
    fn parses_pulse_and_pwl() {
        let deck = "* sources\nVWL wl 0 PULSE(0 0.7 100p 10p 10p 5n 10n)\nVP x 0 PWL(0 0 1n 1 2n 0.5)\nR1 wl 0 1k\nR2 x 0 1k\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        match d.netlist.element("VWL").unwrap() {
            Element::VSource { waveform, .. } => {
                assert!((waveform.eval(3e-9) - 0.7).abs() < 1e-12);
            }
            _ => panic!("wrong element"),
        }
        match d.netlist.element("VP").unwrap() {
            Element::VSource { waveform, .. } => {
                assert!((waveform.eval(1.5e-9) - 0.75).abs() < 1e-12);
            }
            _ => panic!("wrong element"),
        }
    }

    #[test]
    fn parses_mosfet_with_model() {
        let deck = "* m\nM1 bl wl 0 nmos\nR1 bl 0 1k\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        assert!(matches!(
            d.netlist.element("M1"),
            Some(Element::Mosfet { .. })
        ));
    }

    #[test]
    fn unknown_model_reports_line() {
        let deck = "* m\nM1 bl wl 0 exotic\n.end\n";
        match parse_deck(deck, &models()) {
            Err(SpiceError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("exotic"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "* c\nVWL wl 0 PULSE(0 0.7\n+ 100p 10p 10p 5n 10n)\nR1 wl 0 1k\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        assert_eq!(d.netlist.elements().len(), 2);
    }

    #[test]
    fn bare_value_source_is_dc() {
        let deck = "* d\nV1 a 0 0.7\nR1 a 0 1k\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        match d.netlist.element("V1").unwrap() {
            Element::VSource { waveform, .. } => assert_eq!(waveform.eval(1.0), 0.7),
            _ => panic!(),
        }
    }

    #[test]
    fn ic_directive() {
        let deck = "* ic\nR1 bl 0 1k\nC1 bl 0 1f\n.ic v(bl)=0.7 v(blb)=0.7\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        assert_eq!(d.initial_conditions.len(), 2);
        assert_eq!(d.initial_conditions[0], ("bl".to_string(), 0.7));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("* t\nR1 a 0\n.end\n", 2),
            ("* t\nR1 a 0 xyz\n.end\n", 2),
            ("* t\nQ1 a b c\n.end\n", 2),
            ("* t\n.noise foo\n.end\n", 2),
            ("* t\nV1 a 0 PULSE(1 2 3)\n.end\n", 2),
            ("+ orphan\n", 1),
        ];
        for (deck, want_line) in cases {
            match parse_deck(deck, &models()) {
                Err(SpiceError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "deck: {deck:?}")
                }
                other => panic!("expected parse error for {deck:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cards_after_end_are_ignored() {
        let deck = "* t\nR1 a 0 1k\n.end\nR2 b 0 broken\n";
        assert!(parse_deck(deck, &models()).is_ok());
    }

    #[test]
    fn dc_directive_parses_and_expands() {
        let deck = "* dc\nV1 a 0 DC 0\nR1 a 0 1k\n.dc V1 0 0.7 0.1\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        let dc = d.dc.expect("dc parsed");
        assert_eq!(dc.source, "V1");
        let vals = dc.values();
        assert_eq!(vals.len(), 8);
        assert!((vals[7] - 0.7).abs() < 1e-12);
        // Reverse sweep corrects the step sign.
        let rev = DcDirective {
            source: "V1".into(),
            start: 0.7,
            stop: 0.0,
            step: 0.1,
        };
        let vals = rev.values();
        assert!((vals[0] - 0.7).abs() < 1e-12);
        assert!(vals[7].abs() < 1e-12);
        // It drives a real sweep.
        let sweep = crate::dcsweep::dc_sweep(&d.netlist, &dc.source, &dc.values()).unwrap();
        assert_eq!(sweep.len(), 8);
    }

    #[test]
    fn ac_directive_parses_and_expands() {
        let deck = "* ac\nV1 a 0 DC 0\nR1 a b 1k\nC1 b 0 100f\n.ac dec 10 1meg 1g\n.end\n";
        let d = parse_deck(deck, &models()).unwrap();
        let ac = d.ac.expect("ac parsed");
        assert_eq!(ac.points_per_decade, 10);
        let freqs = ac.frequencies();
        assert!(freqs.len() >= 31);
        assert!((freqs[0] - 1e6).abs() < 1.0);
        assert!((freqs.last().unwrap() - 1e9).abs() < 1e3);
        // Geometric spacing.
        let r1 = freqs[1] / freqs[0];
        let r2 = freqs[2] / freqs[1];
        assert!((r1 - r2).abs() < 1e-9);
        // Shorthand without `dec`.
        let d2 = parse_deck("* ac\nR1 a 0 1k\n.ac 5 1k 1meg\n.end\n", &models()).unwrap();
        assert_eq!(d2.ac.unwrap().points_per_decade, 5);
    }

    #[test]
    fn bad_directives_rejected() {
        for deck in [
            "* x\n.dc V1 0 1\n.end\n",
            "* x\n.dc V1 0 1 0\n.end\n",
            "* x\n.ac dec 0 1k 1meg\n.end\n",
            "* x\n.ac dec 10 1meg 1k\n.end\n",
            "* x\n.ac\n.end\n",
        ] {
            assert!(parse_deck(deck, &models()).is_err(), "{deck}");
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let deck_text = "* roundtrip\nR1 vdd mid 10k\nC1 mid 0 100f\nVDD vdd 0 DC 0.7\nVWL wl 0 PULSE(0 0.7 100p 10p 10p 5n 10n)\nM1 mid wl 0 nmos\n.ic v(mid)=0.7\n.tran 1p 2n\n.end\n";
        let d = parse_deck(deck_text, &models()).unwrap();
        let emitted = write_deck(&d.netlist, "roundtrip", d.tran, &d.initial_conditions);
        let d2 = parse_deck(&emitted, &models()).unwrap();
        assert_eq!(d.netlist.elements().len(), d2.netlist.elements().len());
        assert_eq!(d.tran, d2.tran);
        assert_eq!(d.initial_conditions.len(), d2.initial_conditions.len());
        for (a, b) in d.initial_conditions.iter().zip(&d2.initial_conditions) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12, "{} vs {}", a.1, b.1);
        }
        // Waveform survives the roundtrip.
        match (
            d.netlist.element("VWL").unwrap(),
            d2.netlist.element("VWL").unwrap(),
        ) {
            (Element::VSource { waveform: w1, .. }, Element::VSource { waveform: w2, .. }) => {
                for t in [0.0, 105e-12, 1e-9, 6e-9] {
                    assert!((w1.eval(t) - w2.eval(t)).abs() < 1e-9);
                }
            }
            _ => panic!(),
        }
    }
}
